#include "telemetry/sampler.h"

#include "common/logging.h"
#include "obs/timeseries.h"  // harmonia-lint: allow(LAYER-002) attachStore feeds the obs store

namespace harmonia {

Sampler::Sampler(std::string name, MetricsRegistry &registry,
                 Tick period, std::size_t history)
    : Component(std::move(name)), registry_(registry), period_(period),
      capacity_(history)
{
    if (period == 0)
        fatal("sampler '%s': period must be non-zero",
              this->name().c_str());
    if (history == 0)
        fatal("sampler '%s': history must be non-zero",
              this->name().c_str());
}

void
Sampler::setPeriod(Tick period)
{
    if (period == 0)
        fatal("sampler '%s': period must be non-zero",
              name().c_str());
    period_ = period;
}

void
Sampler::tick()
{
    if (now() < nextDue_)
        return;
    history_.push_back({now(), registry_.snapshot()});
    if (store_ != nullptr)
        store_->ingest(now(), history_.back().samples);
    while (history_.size() > capacity_)
        history_.pop_front();
    // Next scrape one full period from this one. When the sampling
    // clock is slower than the period the schedule degrades to "every
    // edge", never to a burst of catch-up scrapes.
    nextDue_ = now() + period_;
}

const Sampler::TimedSnapshot &
Sampler::latest() const
{
    if (history_.empty())
        fatal("sampler '%s': no snapshot taken yet", name().c_str());
    return history_.back();
}

} // namespace harmonia
