/**
 * @file
 * Command-plane access to the telemetry registry: a CommandTarget the
 * shell registers at (kRbbTelemetry, 0) so hosts, BMCs and standalone
 * tools read the whole metrics registry through the same packetized
 * command interface the paper uses for sensors (§3.3.3).
 *
 * Wire protocol (all values 32-bit words):
 *
 *   TelemetryList  data[0] = start index (optional, default 0)
 *     -> [ total, k, then k records of
 *          { index, kind, name[kNameWords] (NUL-padded ASCII) } ]
 *
 *   TelemetrySnapshot  data[0] = metric index (from the List order)
 *     -> counters:            [ kind, value_hi, value_lo ]
 *        gauges/rates:        [ kind, milli_hi, milli_lo ]   (x1000)
 *        histograms:          [ kind, count_hi, count_lo,
 *                               min_hi, min_lo, max_hi, max_lo,
 *                               mean_milli_hi, mean_milli_lo,
 *                               p50_milli_hi, p50_milli_lo,
 *                               p99_milli_hi, p99_milli_lo ]
 *
 *   ProfileSnapshot  data[0] = start index (optional, default 0)
 *     -> [ total, k, then k records of
 *          { index, spans_hi, spans_lo, total_ticks_hi/lo,
 *            self_ticks_hi/lo, name[kNameWords] = "who|cat" } ]
 *        (folds the trace first; kCmdInternalError when no profiler
 *         is attached)
 *
 *   ProfileReset     -> drops aggregates, skips recorded spans
 *
 *   SloStatus  data[0] = spec index (omit for the count query)
 *     -> count query:  [ total ]
 *        full status:  [ total, index, kind, state,
 *                        objective_milli_hi/lo, window_hi/lo,
 *                        burn_milli_hi/lo, budget_milli_hi/lo,
 *                        pending_events, fire_events, resolve_events,
 *                        name[kNameWords] ]
 *        (kCmdInternalError when no SLO engine is attached)
 *
 *   AlertSnapshot  data[0] = start index (optional, default 0)
 *     -> [ total, k, then k records of
 *          { index, state, since_hi/lo, burn_milli_hi/lo,
 *            name[kNameWords] } ]
 *
 *   FlightDump  -> asks the flight recorder for a post-mortem dump;
 *     [ pending, dumps_hi, dumps_lo ] after the request (pending is 0
 *     when an auto-dump path wrote the bundle synchronously).
 *
 *   ObsSubscribe  (streaming-subscription control; DESIGN.md §15)
 *     open:      data = [ 0 ] or [ 0, prefix[kNameWords] ]
 *       -> [ subId, epoch, seriesCount, mapHash_hi, mapHash_lo ]
 *       The card freezes a name-sorted *index map* of flattened
 *       scalar series (counters and gauges one entry; a histogram
 *       explodes into `name` (count), `name/p50`, `name/p99`) whose
 *       names start with the optional prefix filter.
 *     map page:  data = [ subId, start ]
 *       -> [ seriesCount, k, then k records of
 *            { mapIndex, enc, name[kNameWords] } ]
 *       enc 0 = exact u64, enc 1 = milli-scaled u64 (x1000).
 *     close:     data = [ subId ]  -> []
 *
 *   ObsDelta  data = [ subId ] or [ subId, flags ]
 *     request flags bit0: full resync — forget the shadow so every
 *     series is re-sent as if never transmitted.
 *     -> [ epoch, seq, flags, k, then k records of
 *          { mapIndex, value_hi, value_lo } ]
 *     Response flags bit0: the flattened series set changed; the card
 *     re-froze the map under a new epoch and cleared its shadow —
 *     re-read the map pages, then poll again for the full re-send.
 *     Response flags bit1: more changed series than one batch holds;
 *     poll again immediately. seq increments on every produced delta
 *     response, so a subscriber that sees seq jump by more than one
 *     knows a response was lost and must request a full resync.
 *
 * Indices are positions in the registry's name-sorted snapshot, so a
 * List immediately followed by Snapshots observes a consistent view
 * as long as no module registers or unregisters in between.
 */

#ifndef HARMONIA_TELEMETRY_TELEMETRY_TARGET_H_
#define HARMONIA_TELEMETRY_TELEMETRY_TARGET_H_

#include <map>

#include "cmd/command.h"  // harmonia-lint: allow(LAYER-002) speaks the command wire format
#include "telemetry/metrics_registry.h"

namespace harmonia {

class Profiler;
class SloEngine;
class FlightRecorder;

/** One flattened scalar series a subscription streams. */
struct ObsMapEntry {
    std::string name;
    /** 0 = exact u64, 1 = milli-scaled u64 (x1000, clamped at 0). */
    std::uint32_t enc = 0;
};

class TelemetryTarget : public CommandTarget {
  public:
    /** Words of packed metric name per List record (4 chars each). */
    static constexpr std::size_t kNameWords = 12;

    /** List records per response (bounded by PayloadLen's 8 bits). */
    static constexpr std::size_t kListBatch = 8;

    /** Profile records per response (wider records, smaller batch). */
    static constexpr std::size_t kProfileBatch = 4;

    /** Alert records per AlertSnapshot response. */
    static constexpr std::size_t kAlertBatch = 4;

    /** Index-map records per ObsSubscribe map-page response. */
    static constexpr std::size_t kMapBatch = 8;

    /** Delta records per ObsDelta response (3 words each; the whole
     *  response must fit PayloadLen's 8-bit word count). */
    static constexpr std::size_t kDeltaBatch = 60;

    /** Concurrent subscriptions one card serves. */
    static constexpr std::size_t kMaxSubscriptions = 8;

    explicit TelemetryTarget(MetricsRegistry &registry =
                                 MetricsRegistry::instance())
        : registry_(registry)
    {
    }

    CommandResult
    executeCommand(std::uint16_t code,
                   const std::vector<std::uint32_t> &data) override;

    /**
     * Wire the causal profiler in; ProfileSnapshot / ProfileReset
     * answer kCmdInternalError until one is attached. Not owned.
     */
    void attachProfiler(Profiler *profiler) { profiler_ = profiler; }

    /**
     * Wire the SLO engine in; SloStatus / AlertSnapshot answer
     * kCmdInternalError until one is attached. Not owned.
     */
    void attachSloEngine(SloEngine *slo) { slo_ = slo; }

    /**
     * Wire the flight recorder in; FlightDump answers
     * kCmdInternalError until one is attached. Not owned.
     */
    void attachRecorder(FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /** Decode a List record's packed name (tests, host tooling). */
    static std::string unpackName(const std::uint32_t *words,
                                  std::size_t n = kNameWords);

    /** Append a name packed the way List records carry it (host
     *  tooling builds ObsSubscribe prefixes with this). */
    static void packNameTo(std::vector<std::uint32_t> &out,
                           const std::string &name);

    /**
     * Flatten the registry into the scalar series a subscription
     * streams: counters/gauges/rates keep their name, histograms
     * explode into `name` (count) plus milli-scaled `name/p50` and
     * `name/p99`. Name-sorted; filtered to names starting with
     * `prefix` when non-empty. Exposed for host tooling that needs
     * the same flattening (ObsHub snapshot-cost accounting, tests).
     */
    static std::vector<ObsMapEntry>
    flattenSeries(const MetricsRegistry &registry,
                  const std::string &prefix);

    /** Live subscriptions (tests). */
    std::size_t subscriptionCount() const { return subs_.size(); }

    /**
     * Produce and discard the next delta for `subId`, advancing the
     * shadow and sequence number exactly as if the response had been
     * generated and then lost on the wire. Test hook for exercising
     * the subscriber's gap-detection / full-resync path. Returns
     * false when the subscription does not exist.
     */
    bool dropOneDelta(std::uint32_t sub_id);

  private:
    struct Subscription {
        std::string prefix;  ///< name filter ("" = everything)
        std::vector<ObsMapEntry> map;  ///< frozen name-sorted index map
        std::uint64_t map_hash = 0;  ///< FNV-1a over map names+enc
        /** Last value sent per map index; entries in `sent` are
         *  false until the series has been transmitted once. */
        std::vector<std::uint64_t> shadow;
        std::vector<bool> sent;
        std::uint32_t epoch = 0;  ///< bumps when the map re-freezes
        std::uint32_t seq = 0;  ///< increments per produced delta
    };

    CommandResult list(const std::vector<std::uint32_t> &data);
    CommandResult snapshotOne(const std::vector<std::uint32_t> &data);
    CommandResult
    profileSnapshot(const std::vector<std::uint32_t> &data);
    CommandResult profileReset();
    CommandResult sloStatus(const std::vector<std::uint32_t> &data);
    CommandResult
    alertSnapshot(const std::vector<std::uint32_t> &data);
    CommandResult flightDump();
    CommandResult obsSubscribe(const std::vector<std::uint32_t> &data);
    CommandResult obsDelta(const std::vector<std::uint32_t> &data);

    /** Freeze (or re-freeze) sub's map from the live registry. */
    void freezeMap(Subscription &sub);

    /** Encode one delta response for `sub` into `out`. */
    void produceDelta(Subscription &sub,
                      std::vector<std::uint32_t> &out);

    MetricsRegistry &registry_;
    Profiler *profiler_ = nullptr;
    SloEngine *slo_ = nullptr;
    FlightRecorder *recorder_ = nullptr;
    std::map<std::uint32_t, Subscription> subs_;
    std::uint32_t next_sub_id_ = 1;
};

} // namespace harmonia

#endif // HARMONIA_TELEMETRY_TELEMETRY_TARGET_H_
