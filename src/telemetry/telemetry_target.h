/**
 * @file
 * Command-plane access to the telemetry registry: a CommandTarget the
 * shell registers at (kRbbTelemetry, 0) so hosts, BMCs and standalone
 * tools read the whole metrics registry through the same packetized
 * command interface the paper uses for sensors (§3.3.3).
 *
 * Wire protocol (all values 32-bit words):
 *
 *   TelemetryList  data[0] = start index (optional, default 0)
 *     -> [ total, k, then k records of
 *          { index, kind, name[kNameWords] (NUL-padded ASCII) } ]
 *
 *   TelemetrySnapshot  data[0] = metric index (from the List order)
 *     -> counters:            [ kind, value_hi, value_lo ]
 *        gauges/rates:        [ kind, milli_hi, milli_lo ]   (x1000)
 *        histograms:          [ kind, count_hi, count_lo,
 *                               min_hi, min_lo, max_hi, max_lo,
 *                               mean_milli_hi, mean_milli_lo,
 *                               p50_milli_hi, p50_milli_lo,
 *                               p99_milli_hi, p99_milli_lo ]
 *
 *   ProfileSnapshot  data[0] = start index (optional, default 0)
 *     -> [ total, k, then k records of
 *          { index, spans_hi, spans_lo, total_ticks_hi/lo,
 *            self_ticks_hi/lo, name[kNameWords] = "who|cat" } ]
 *        (folds the trace first; kCmdInternalError when no profiler
 *         is attached)
 *
 *   ProfileReset     -> drops aggregates, skips recorded spans
 *
 *   SloStatus  data[0] = spec index (omit for the count query)
 *     -> count query:  [ total ]
 *        full status:  [ total, index, kind, state,
 *                        objective_milli_hi/lo, window_hi/lo,
 *                        burn_milli_hi/lo, budget_milli_hi/lo,
 *                        pending_events, fire_events, resolve_events,
 *                        name[kNameWords] ]
 *        (kCmdInternalError when no SLO engine is attached)
 *
 *   AlertSnapshot  data[0] = start index (optional, default 0)
 *     -> [ total, k, then k records of
 *          { index, state, since_hi/lo, burn_milli_hi/lo,
 *            name[kNameWords] } ]
 *
 *   FlightDump  -> asks the flight recorder for a post-mortem dump;
 *     [ pending, dumps_hi, dumps_lo ] after the request (pending is 0
 *     when an auto-dump path wrote the bundle synchronously).
 *
 * Indices are positions in the registry's name-sorted snapshot, so a
 * List immediately followed by Snapshots observes a consistent view
 * as long as no module registers or unregisters in between.
 */

#ifndef HARMONIA_TELEMETRY_TELEMETRY_TARGET_H_
#define HARMONIA_TELEMETRY_TELEMETRY_TARGET_H_

#include "cmd/command.h"  // harmonia-lint: allow(LAYER-002) speaks the command wire format
#include "telemetry/metrics_registry.h"

namespace harmonia {

class Profiler;
class SloEngine;
class FlightRecorder;

class TelemetryTarget : public CommandTarget {
  public:
    /** Words of packed metric name per List record (4 chars each). */
    static constexpr std::size_t kNameWords = 12;

    /** List records per response (bounded by PayloadLen's 8 bits). */
    static constexpr std::size_t kListBatch = 8;

    /** Profile records per response (wider records, smaller batch). */
    static constexpr std::size_t kProfileBatch = 4;

    /** Alert records per AlertSnapshot response. */
    static constexpr std::size_t kAlertBatch = 4;

    explicit TelemetryTarget(MetricsRegistry &registry =
                                 MetricsRegistry::instance())
        : registry_(registry)
    {
    }

    CommandResult
    executeCommand(std::uint16_t code,
                   const std::vector<std::uint32_t> &data) override;

    /**
     * Wire the causal profiler in; ProfileSnapshot / ProfileReset
     * answer kCmdInternalError until one is attached. Not owned.
     */
    void attachProfiler(Profiler *profiler) { profiler_ = profiler; }

    /**
     * Wire the SLO engine in; SloStatus / AlertSnapshot answer
     * kCmdInternalError until one is attached. Not owned.
     */
    void attachSloEngine(SloEngine *slo) { slo_ = slo; }

    /**
     * Wire the flight recorder in; FlightDump answers
     * kCmdInternalError until one is attached. Not owned.
     */
    void attachRecorder(FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /** Decode a List record's packed name (tests, host tooling). */
    static std::string unpackName(const std::uint32_t *words,
                                  std::size_t n = kNameWords);

  private:
    CommandResult list(const std::vector<std::uint32_t> &data);
    CommandResult snapshotOne(const std::vector<std::uint32_t> &data);
    CommandResult
    profileSnapshot(const std::vector<std::uint32_t> &data);
    CommandResult profileReset();
    CommandResult sloStatus(const std::vector<std::uint32_t> &data);
    CommandResult
    alertSnapshot(const std::vector<std::uint32_t> &data);
    CommandResult flightDump();

    MetricsRegistry &registry_;
    Profiler *profiler_ = nullptr;
    SloEngine *slo_ = nullptr;
    FlightRecorder *recorder_ = nullptr;
};

} // namespace harmonia

#endif // HARMONIA_TELEMETRY_TELEMETRY_TARGET_H_
