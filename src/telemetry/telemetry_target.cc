#include "telemetry/telemetry_target.h"

#include <cmath>

#include "obs/flight_recorder.h"  // harmonia-lint: allow(LAYER-002) snapshots ride the command plane
#include "obs/slo.h"  // harmonia-lint: allow(LAYER-002) snapshots ride the command plane
#include "telemetry/profiler.h"

namespace harmonia {

namespace {

void
pushU64(std::vector<std::uint32_t> &out, std::uint64_t v)
{
    out.push_back(static_cast<std::uint32_t>(v >> 32));
    out.push_back(static_cast<std::uint32_t>(v));
}

std::uint64_t
milli(double v)
{
    if (!(v > 0.0))
        return 0;
    return static_cast<std::uint64_t>(std::llround(v * 1000.0));
}

void
packName(std::vector<std::uint32_t> &out, const std::string &name)
{
    for (std::size_t w = 0; w < TelemetryTarget::kNameWords; ++w) {
        std::uint32_t word = 0;
        for (std::size_t b = 0; b < 4; ++b) {
            const std::size_t i = w * 4 + b;
            const std::uint32_t c =
                i < name.size()
                    ? static_cast<unsigned char>(name[i])
                    : 0;
            word |= c << (24 - 8 * b);
        }
        out.push_back(word);
    }
}

} // namespace

std::string
TelemetryTarget::unpackName(const std::uint32_t *words, std::size_t n)
{
    std::string out;
    for (std::size_t w = 0; w < n; ++w)
        for (std::size_t b = 0; b < 4; ++b) {
            const char c = static_cast<char>(
                (words[w] >> (24 - 8 * b)) & 0xff);
            if (c == '\0')
                return out;
            out += c;
        }
    return out;
}

CommandResult
TelemetryTarget::list(const std::vector<std::uint32_t> &data)
{
    const std::vector<MetricSample> snap = registry_.snapshot();
    const std::size_t start = data.empty() ? 0 : data[0];

    CommandResult res;
    res.data.push_back(static_cast<std::uint32_t>(snap.size()));
    res.data.push_back(0);  // record count, patched below
    std::uint32_t k = 0;
    for (std::size_t i = start;
         i < snap.size() && k < kListBatch; ++i, ++k) {
        res.data.push_back(static_cast<std::uint32_t>(i));
        res.data.push_back(static_cast<std::uint32_t>(snap[i].kind));
        packName(res.data, snap[i].name);
    }
    res.data[1] = k;
    return res;
}

CommandResult
TelemetryTarget::snapshotOne(const std::vector<std::uint32_t> &data)
{
    if (data.empty())
        return {kCmdBadArgument, {}};
    const std::vector<MetricSample> snap = registry_.snapshot();
    if (data[0] >= snap.size())
        return {kCmdBadArgument, {}};
    const MetricSample &s = snap[data[0]];

    CommandResult res;
    res.data.push_back(static_cast<std::uint32_t>(s.kind));
    switch (s.kind) {
      case MetricKind::Counter:
        pushU64(res.data, static_cast<std::uint64_t>(s.value));
        break;
      case MetricKind::Gauge:
      case MetricKind::Rate:
        pushU64(res.data, milli(s.value));
        break;
      case MetricKind::Histogram:
        pushU64(res.data, s.count);
        pushU64(res.data, s.min);
        pushU64(res.data, s.max);
        pushU64(res.data, milli(s.mean));
        pushU64(res.data, milli(s.p50));
        pushU64(res.data, milli(s.p99));
        break;
    }
    return res;
}

CommandResult
TelemetryTarget::profileSnapshot(const std::vector<std::uint32_t> &data)
{
    if (profiler_ == nullptr)
        return {kCmdInternalError, {}};
    profiler_->fold();
    const std::vector<ProfileEntry> snap = profiler_->snapshot();
    const std::size_t start = data.empty() ? 0 : data[0];

    CommandResult res;
    res.data.push_back(static_cast<std::uint32_t>(snap.size()));
    res.data.push_back(0);  // record count, patched below
    std::uint32_t k = 0;
    for (std::size_t i = start;
         i < snap.size() && k < kProfileBatch; ++i, ++k) {
        const ProfileEntry &e = snap[i];
        res.data.push_back(static_cast<std::uint32_t>(i));
        pushU64(res.data, e.spans);
        pushU64(res.data, e.totalTicks);
        pushU64(res.data, e.selfTicks);
        packName(res.data, e.who + "|" + e.cat);
    }
    res.data[1] = k;
    return res;
}

CommandResult
TelemetryTarget::profileReset()
{
    if (profiler_ == nullptr)
        return {kCmdInternalError, {}};
    profiler_->reset();
    return {};
}

CommandResult
TelemetryTarget::sloStatus(const std::vector<std::uint32_t> &data)
{
    if (slo_ == nullptr)
        return {kCmdInternalError, {}};
    const std::uint32_t total =
        static_cast<std::uint32_t>(slo_->specCount());

    CommandResult res;
    res.data.push_back(total);
    if (data.empty())
        return res;  // count query
    if (data[0] >= total)
        return {kCmdBadArgument, {}};

    const SloSpec &spec = slo_->spec(data[0]);
    const AlertStatus &st = slo_->status(data[0]);
    res.data.push_back(data[0]);
    res.data.push_back(static_cast<std::uint32_t>(spec.kind));
    res.data.push_back(static_cast<std::uint32_t>(st.state));
    pushU64(res.data, milli(spec.objective));
    pushU64(res.data, static_cast<std::uint64_t>(spec.window));
    pushU64(res.data, milli(st.burnRate));
    pushU64(res.data, milli(st.budgetConsumed));
    res.data.push_back(static_cast<std::uint32_t>(st.pendingEvents));
    res.data.push_back(static_cast<std::uint32_t>(st.fireEvents));
    res.data.push_back(static_cast<std::uint32_t>(st.resolveEvents));
    packName(res.data, spec.name);
    return res;
}

CommandResult
TelemetryTarget::alertSnapshot(const std::vector<std::uint32_t> &data)
{
    if (slo_ == nullptr)
        return {kCmdInternalError, {}};
    const std::uint32_t total =
        static_cast<std::uint32_t>(slo_->specCount());
    const std::size_t start = data.empty() ? 0 : data[0];

    CommandResult res;
    res.data.push_back(total);
    res.data.push_back(0);  // record count, patched below
    std::uint32_t k = 0;
    for (std::size_t i = start; i < total && k < kAlertBatch;
         ++i, ++k) {
        const AlertStatus &st = slo_->status(i);
        res.data.push_back(static_cast<std::uint32_t>(i));
        res.data.push_back(static_cast<std::uint32_t>(st.state));
        pushU64(res.data, static_cast<std::uint64_t>(st.since));
        pushU64(res.data, milli(st.burnRate));
        packName(res.data, st.name);
    }
    res.data[1] = k;
    return res;
}

CommandResult
TelemetryTarget::flightDump()
{
    if (recorder_ == nullptr)
        return {kCmdInternalError, {}};
    const Tick now = slo_ != nullptr ? slo_->now() : 0;
    recorder_->requestDump("command-plane request", now);

    CommandResult res;
    res.data.push_back(recorder_->dumpPending() ? 1 : 0);
    pushU64(res.data, recorder_->dumps());
    return res;
}

CommandResult
TelemetryTarget::executeCommand(std::uint16_t code,
                                const std::vector<std::uint32_t> &data)
{
    switch (code) {
      case kCmdTelemetryList:
        return list(data);
      case kCmdTelemetrySnapshot:
        return snapshotOne(data);
      case kCmdProfileSnapshot:
        return profileSnapshot(data);
      case kCmdProfileReset:
        return profileReset();
      case kCmdSloStatus:
        return sloStatus(data);
      case kCmdAlertSnapshot:
        return alertSnapshot(data);
      case kCmdFlightDump:
        return flightDump();
      case kCmdModuleStatusRead:
        // Alive probe: number of registered entries.
        return {kCmdOk,
                {static_cast<std::uint32_t>(registry_.size())}};
      default:
        return {kCmdUnknownCode, {}};
    }
}

} // namespace harmonia
