#include "telemetry/telemetry_target.h"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.h"  // harmonia-lint: allow(LAYER-002) snapshots ride the command plane
#include "obs/slo.h"  // harmonia-lint: allow(LAYER-002) snapshots ride the command plane
#include "telemetry/profiler.h"

namespace harmonia {

namespace {

void
pushU64(std::vector<std::uint32_t> &out, std::uint64_t v)
{
    out.push_back(static_cast<std::uint32_t>(v >> 32));
    out.push_back(static_cast<std::uint32_t>(v));
}

std::uint64_t
milli(double v)
{
    if (!(v > 0.0))
        return 0;
    return static_cast<std::uint64_t>(std::llround(v * 1000.0));
}

/** A flattened scalar series plus its current encoded value. */
struct FlatSample {
    ObsMapEntry entry;
    std::uint64_t value = 0;
};

/**
 * Flatten the registry snapshot into the scalar series a subscription
 * streams, with current encoded values. Name-sorted; filtered to
 * names starting with @p prefix when non-empty.
 */
std::vector<FlatSample>
flattenValues(const MetricsRegistry &registry,
              const std::string &prefix)
{
    std::vector<FlatSample> out;
    for (const MetricSample &s : registry.snapshot()) {
        if (!prefix.empty() &&
            s.name.compare(0, prefix.size(), prefix) != 0)
            continue;
        switch (s.kind) {
          case MetricKind::Counter:
            out.push_back(
                {{s.name, 0}, static_cast<std::uint64_t>(s.value)});
            break;
          case MetricKind::Gauge:
          case MetricKind::Rate:
            out.push_back({{s.name, 1}, milli(s.value)});
            break;
          case MetricKind::Histogram:
            out.push_back({{s.name, 0}, s.count});
            out.push_back({{s.name + "/p50", 1}, milli(s.p50)});
            out.push_back({{s.name + "/p99", 1}, milli(s.p99)});
            break;
        }
    }
    // The registry snapshot is name-sorted, but the synthesized /p50
    // and /p99 entries can interleave with sibling metric names.
    std::sort(out.begin(), out.end(),
              [](const FlatSample &a, const FlatSample &b) {
                  return a.entry.name < b.entry.name;
              });
    return out;
}

/** FNV-1a over the map's names and encodings: the map identity. */
std::uint64_t
mapHash(const std::vector<FlatSample> &flat)
{
    std::uint64_t h = 14695981039346656037ULL;
    const auto mix = [&h](std::uint8_t byte) {
        h ^= byte;
        h *= 1099511628211ULL;
    };
    for (const FlatSample &f : flat) {
        for (char c : f.entry.name)
            mix(static_cast<std::uint8_t>(c));
        mix(0);
        mix(static_cast<std::uint8_t>(f.entry.enc));
    }
    return h;
}

void
packName(std::vector<std::uint32_t> &out, const std::string &name)
{
    for (std::size_t w = 0; w < TelemetryTarget::kNameWords; ++w) {
        std::uint32_t word = 0;
        for (std::size_t b = 0; b < 4; ++b) {
            const std::size_t i = w * 4 + b;
            const std::uint32_t c =
                i < name.size()
                    ? static_cast<unsigned char>(name[i])
                    : 0;
            word |= c << (24 - 8 * b);
        }
        out.push_back(word);
    }
}

} // namespace

void
TelemetryTarget::packNameTo(std::vector<std::uint32_t> &out,
                            const std::string &name)
{
    packName(out, name);
}

std::string
TelemetryTarget::unpackName(const std::uint32_t *words, std::size_t n)
{
    std::string out;
    for (std::size_t w = 0; w < n; ++w)
        for (std::size_t b = 0; b < 4; ++b) {
            const char c = static_cast<char>(
                (words[w] >> (24 - 8 * b)) & 0xff);
            if (c == '\0')
                return out;
            out += c;
        }
    return out;
}

CommandResult
TelemetryTarget::list(const std::vector<std::uint32_t> &data)
{
    const std::vector<MetricSample> snap = registry_.snapshot();
    const std::size_t start = data.empty() ? 0 : data[0];

    CommandResult res;
    res.data.push_back(static_cast<std::uint32_t>(snap.size()));
    res.data.push_back(0);  // record count, patched below
    std::uint32_t k = 0;
    for (std::size_t i = start;
         i < snap.size() && k < kListBatch; ++i, ++k) {
        res.data.push_back(static_cast<std::uint32_t>(i));
        res.data.push_back(static_cast<std::uint32_t>(snap[i].kind));
        packName(res.data, snap[i].name);
    }
    res.data[1] = k;
    return res;
}

CommandResult
TelemetryTarget::snapshotOne(const std::vector<std::uint32_t> &data)
{
    if (data.empty())
        return {kCmdBadArgument, {}};
    const std::vector<MetricSample> snap = registry_.snapshot();
    if (data[0] >= snap.size())
        return {kCmdBadArgument, {}};
    const MetricSample &s = snap[data[0]];

    CommandResult res;
    res.data.push_back(static_cast<std::uint32_t>(s.kind));
    switch (s.kind) {
      case MetricKind::Counter:
        pushU64(res.data, static_cast<std::uint64_t>(s.value));
        break;
      case MetricKind::Gauge:
      case MetricKind::Rate:
        pushU64(res.data, milli(s.value));
        break;
      case MetricKind::Histogram:
        pushU64(res.data, s.count);
        pushU64(res.data, s.min);
        pushU64(res.data, s.max);
        pushU64(res.data, milli(s.mean));
        pushU64(res.data, milli(s.p50));
        pushU64(res.data, milli(s.p99));
        break;
    }
    return res;
}

CommandResult
TelemetryTarget::profileSnapshot(const std::vector<std::uint32_t> &data)
{
    if (profiler_ == nullptr)
        return {kCmdInternalError, {}};
    profiler_->fold();
    const std::vector<ProfileEntry> snap = profiler_->snapshot();
    const std::size_t start = data.empty() ? 0 : data[0];

    CommandResult res;
    res.data.push_back(static_cast<std::uint32_t>(snap.size()));
    res.data.push_back(0);  // record count, patched below
    std::uint32_t k = 0;
    for (std::size_t i = start;
         i < snap.size() && k < kProfileBatch; ++i, ++k) {
        const ProfileEntry &e = snap[i];
        res.data.push_back(static_cast<std::uint32_t>(i));
        pushU64(res.data, e.spans);
        pushU64(res.data, e.totalTicks);
        pushU64(res.data, e.selfTicks);
        packName(res.data, e.who + "|" + e.cat);
    }
    res.data[1] = k;
    return res;
}

CommandResult
TelemetryTarget::profileReset()
{
    if (profiler_ == nullptr)
        return {kCmdInternalError, {}};
    profiler_->reset();
    return {};
}

CommandResult
TelemetryTarget::sloStatus(const std::vector<std::uint32_t> &data)
{
    if (slo_ == nullptr)
        return {kCmdInternalError, {}};
    const std::uint32_t total =
        static_cast<std::uint32_t>(slo_->specCount());

    CommandResult res;
    res.data.push_back(total);
    if (data.empty())
        return res;  // count query
    if (data[0] >= total)
        return {kCmdBadArgument, {}};

    const SloSpec &spec = slo_->spec(data[0]);
    const AlertStatus &st = slo_->status(data[0]);
    res.data.push_back(data[0]);
    res.data.push_back(static_cast<std::uint32_t>(spec.kind));
    res.data.push_back(static_cast<std::uint32_t>(st.state));
    pushU64(res.data, milli(spec.objective));
    pushU64(res.data, static_cast<std::uint64_t>(spec.window));
    pushU64(res.data, milli(st.burnRate));
    pushU64(res.data, milli(st.budgetConsumed));
    res.data.push_back(static_cast<std::uint32_t>(st.pendingEvents));
    res.data.push_back(static_cast<std::uint32_t>(st.fireEvents));
    res.data.push_back(static_cast<std::uint32_t>(st.resolveEvents));
    packName(res.data, spec.name);
    return res;
}

CommandResult
TelemetryTarget::alertSnapshot(const std::vector<std::uint32_t> &data)
{
    if (slo_ == nullptr)
        return {kCmdInternalError, {}};
    const std::uint32_t total =
        static_cast<std::uint32_t>(slo_->specCount());
    const std::size_t start = data.empty() ? 0 : data[0];

    CommandResult res;
    res.data.push_back(total);
    res.data.push_back(0);  // record count, patched below
    std::uint32_t k = 0;
    for (std::size_t i = start; i < total && k < kAlertBatch;
         ++i, ++k) {
        const AlertStatus &st = slo_->status(i);
        res.data.push_back(static_cast<std::uint32_t>(i));
        res.data.push_back(static_cast<std::uint32_t>(st.state));
        pushU64(res.data, static_cast<std::uint64_t>(st.since));
        pushU64(res.data, milli(st.burnRate));
        packName(res.data, st.name);
    }
    res.data[1] = k;
    return res;
}

CommandResult
TelemetryTarget::flightDump()
{
    if (recorder_ == nullptr)
        return {kCmdInternalError, {}};
    const Tick now = slo_ != nullptr ? slo_->now() : 0;
    recorder_->requestDump("command-plane request", now);

    CommandResult res;
    res.data.push_back(recorder_->dumpPending() ? 1 : 0);
    pushU64(res.data, recorder_->dumps());
    return res;
}

std::vector<ObsMapEntry>
TelemetryTarget::flattenSeries(const MetricsRegistry &registry,
                               const std::string &prefix)
{
    std::vector<ObsMapEntry> out;
    for (const FlatSample &f : flattenValues(registry, prefix))
        out.push_back(f.entry);
    return out;
}

void
TelemetryTarget::freezeMap(Subscription &sub)
{
    const std::vector<FlatSample> flat =
        flattenValues(registry_, sub.prefix);
    sub.map.clear();
    for (const FlatSample &f : flat)
        sub.map.push_back(f.entry);
    sub.map_hash = mapHash(flat);
    sub.shadow.assign(sub.map.size(), 0);
    sub.sent.assign(sub.map.size(), false);
    ++sub.epoch;
}

void
TelemetryTarget::produceDelta(Subscription &sub,
                              std::vector<std::uint32_t> &out)
{
    const std::vector<FlatSample> flat =
        flattenValues(registry_, sub.prefix);

    ++sub.seq;
    out.clear();
    if (mapHash(flat) != sub.map_hash) {
        // The flattened series set changed under the subscriber:
        // re-freeze, clear the shadow, and let the response carry
        // only the new epoch; the subscriber re-reads the map pages
        // and the next poll re-sends everything.
        freezeMap(sub);
        out.push_back(sub.epoch);
        out.push_back(sub.seq);
        out.push_back(0x1);  // flags: map changed
        out.push_back(0);  // k
        return;
    }

    out.push_back(sub.epoch);
    out.push_back(sub.seq);
    out.push_back(0);  // flags, patched below
    out.push_back(0);  // k, patched below
    std::uint32_t k = 0;
    std::uint32_t flags = 0;
    for (std::size_t i = 0; i < flat.size(); ++i) {
        const std::uint64_t v = flat[i].value;
        if (sub.sent[i] && sub.shadow[i] == v)
            continue;
        if (k == kDeltaBatch) {
            flags |= 0x2;  // more changed series than one batch
            break;
        }
        out.push_back(static_cast<std::uint32_t>(i));
        pushU64(out, v);
        sub.shadow[i] = v;
        sub.sent[i] = true;
        ++k;
    }
    out[2] = flags;
    out[3] = k;
}

CommandResult
TelemetryTarget::obsSubscribe(const std::vector<std::uint32_t> &data)
{
    if (data.empty())
        return {kCmdBadArgument, {}};

    if (data[0] == 0) {
        // Open a subscription, optionally prefix-filtered.
        std::string prefix;
        if (data.size() > 1) {
            if (data.size() < 1 + kNameWords)
                return {kCmdBadArgument, {}};
            prefix = unpackName(data.data() + 1, kNameWords);
        }
        if (subs_.size() >= kMaxSubscriptions)
            return {kCmdInternalError, {}};

        const std::uint32_t id = next_sub_id_++;
        Subscription &sub = subs_[id];
        sub.prefix = prefix;
        freezeMap(sub);

        CommandResult res;
        res.data.push_back(id);
        res.data.push_back(sub.epoch);
        res.data.push_back(static_cast<std::uint32_t>(sub.map.size()));
        pushU64(res.data, sub.map_hash);
        return res;
    }

    const auto it = subs_.find(data[0]);
    if (it == subs_.end())
        return {kCmdBadArgument, {}};
    Subscription &sub = it->second;

    if (data.size() == 1) {
        // Close.
        subs_.erase(it);
        return {};
    }

    // Map page.
    const std::size_t start = data[1];
    CommandResult res;
    res.data.push_back(static_cast<std::uint32_t>(sub.map.size()));
    res.data.push_back(0);  // record count, patched below
    std::uint32_t k = 0;
    for (std::size_t i = start;
         i < sub.map.size() && k < kMapBatch; ++i, ++k) {
        res.data.push_back(static_cast<std::uint32_t>(i));
        res.data.push_back(sub.map[i].enc);
        packName(res.data, sub.map[i].name);
    }
    res.data[1] = k;
    return res;
}

CommandResult
TelemetryTarget::obsDelta(const std::vector<std::uint32_t> &data)
{
    if (data.empty())
        return {kCmdBadArgument, {}};
    const auto it = subs_.find(data[0]);
    if (it == subs_.end())
        return {kCmdBadArgument, {}};
    Subscription &sub = it->second;

    const std::uint32_t flags = data.size() > 1 ? data[1] : 0;
    if (flags & 0x1) {
        // Full resync: forget the shadow so every series is re-sent
        // as if never transmitted.
        sub.sent.assign(sub.map.size(), false);
    }

    CommandResult res;
    produceDelta(sub, res.data);
    return res;
}

bool
TelemetryTarget::dropOneDelta(std::uint32_t sub_id)
{
    const auto it = subs_.find(sub_id);
    if (it == subs_.end())
        return false;
    std::vector<std::uint32_t> discarded;
    produceDelta(it->second, discarded);
    return true;
}

CommandResult
TelemetryTarget::executeCommand(std::uint16_t code,
                                const std::vector<std::uint32_t> &data)
{
    switch (code) {
      case kCmdTelemetryList:
        return list(data);
      case kCmdTelemetrySnapshot:
        return snapshotOne(data);
      case kCmdProfileSnapshot:
        return profileSnapshot(data);
      case kCmdProfileReset:
        return profileReset();
      case kCmdSloStatus:
        return sloStatus(data);
      case kCmdAlertSnapshot:
        return alertSnapshot(data);
      case kCmdFlightDump:
        return flightDump();
      case kCmdObsSubscribe:
        return obsSubscribe(data);
      case kCmdObsDelta:
        return obsDelta(data);
      case kCmdModuleStatusRead:
        // Alive probe: number of registered entries.
        return {kCmdOk,
                {static_cast<std::uint32_t>(registry_.size())}};
      default:
        return {kCmdUnknownCode, {}};
    }
}

} // namespace harmonia
