#include "telemetry/exporter.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <set>

#include "common/json.h"
#include "common/logging.h"

namespace harmonia {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            out += format("\\u%04x", c);
            continue;
        }
        out += c;
    }
    return out;
}

namespace {

/** Prometheus metric-name charset: [a-zA-Z0-9_:]. */
std::string
promName(const std::string &name)
{
    std::string out = "harmonia_";
    for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    return out;
}

std::string
ticksToUs(Tick t)
{
    return format("%.6f", static_cast<double>(t) / 1e6);
}

/** A sample name split into its device scope and base series. */
struct DeviceScope {
    std::string device;  ///< empty when the name has no shell prefix
    std::string base;
};

/**
 * Shell-registered series are named `unified_<Device>/rest...`; the
 * instance prefix peels off into a label so one fleet scrape keeps a
 * single metric family per series. Names without a well-formed
 * prefix pass through untouched.
 */
DeviceScope
splitDevice(const std::string &name)
{
    constexpr char kShellPrefix[] = "unified_";
    constexpr std::size_t kLen = sizeof kShellPrefix - 1;
    if (name.compare(0, kLen, kShellPrefix) == 0) {
        const std::size_t slash = name.find('/', kLen);
        if (slash != std::string::npos && slash > kLen &&
            slash + 1 < name.size())
            return {name.substr(kLen, slash - kLen),
                    name.substr(slash + 1)};
    }
    return {"", name};
}

/** Prometheus label-value escaping: backslash, quote, newline. */
std::string
labelEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

std::string
toChromeTraceJson(const Trace &trace)
{
    // Stable tid per track so the viewer groups spans by component.
    std::map<std::string, int> tids;
    auto tidFor = [&](const std::string &who) {
        auto it = tids.find(who);
        if (it == tids.end())
            it = tids.emplace(who, static_cast<int>(tids.size()) + 1)
                     .first;
        return it->second;
    };

    std::string events;
    auto append = [&](const std::string &obj) {
        if (!events.empty())
            events += ",\n";
        events += "  " + obj;
    };

    for (const Trace::Span &s : trace.spans()) {
        append(format(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,"
            "\"args\":{\"span_id\":%llu,\"parent\":%llu,"
            "\"corr\":%llu}}",
            jsonEscape(s.what).c_str(), jsonEscape(s.cat).c_str(),
            ticksToUs(s.begin).c_str(),
            ticksToUs(s.end - s.begin).c_str(), tidFor(s.who),
            static_cast<unsigned long long>(s.id),
            static_cast<unsigned long long>(s.parent),
            static_cast<unsigned long long>(s.corr)));
    }
    for (const Trace::Entry &e : trace.entries()) {
        append(format("{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\","
                      "\"ts\":%s,\"s\":\"t\",\"pid\":1,\"tid\":%d}",
                      jsonEscape(e.what).c_str(),
                      ticksToUs(e.tick).c_str(), tidFor(e.who)));
    }
    // Thread-name metadata renders the component names as track names.
    for (const auto &[who, tid] : tids) {
        append(format("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                      tid, jsonEscape(who).c_str()));
    }

    return "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n" + events +
           "\n]}\n";
}

std::string
toSpanJsonLines(const Trace &trace)
{
    std::string out;
    for (const Trace::Span &s : trace.spans()) {
        out += format(
            "{\"id\":%llu,\"parent\":%llu,\"corr\":%llu,"
            "\"begin\":%llu,\"end\":%llu,\"who\":\"%s\","
            "\"what\":\"%s\",\"cat\":\"%s\"}\n",
            static_cast<unsigned long long>(s.id),
            static_cast<unsigned long long>(s.parent),
            static_cast<unsigned long long>(s.corr),
            static_cast<unsigned long long>(s.begin),
            static_cast<unsigned long long>(s.end),
            jsonEscape(s.who).c_str(), jsonEscape(s.what).c_str(),
            jsonEscape(s.cat).c_str());
    }
    return out;
}

std::vector<Trace::Span>
spansFromJsonLines(const std::string &text)
{
    std::vector<Trace::Span> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        std::string err;
        const JsonValue v = JsonValue::parse(line, &err);
        if (!err.empty() || !v.isObject()) {
            warn("spansFromJsonLines: skipping malformed line: %s",
                 err.c_str());
            continue;
        }
        Trace::Span s;
        s.id = v.get("id").asU64();
        s.parent = v.get("parent").asU64();
        s.corr = v.get("corr").asU64();
        s.begin = v.get("begin").asU64();
        s.end = v.get("end").asU64();
        s.who = v.get("who").asString();
        s.what = v.get("what").asString();
        s.cat = v.get("cat").asString();
        out.push_back(std::move(s));
    }
    return out;
}

std::string
toMetricsText(const std::vector<MetricSample> &samples,
              const MetricsTextOptions &opts)
{
    std::string out;
    std::set<std::string> typed;  // one TYPE line per family
    for (const MetricSample &s : samples) {
        const DeviceScope scope = opts.flatNames
                                      ? DeviceScope{"", s.name}
                                      : splitDevice(s.name);
        const std::string name = promName(scope.base);
        const std::string dev =
            scope.device.empty()
                ? std::string()
                : "device=\"" + labelEscape(scope.device) + "\"";

        // A family's series line: base labels plus any extra label,
        // brace-wrapped only when at least one label exists.
        const auto series = [&dev](const std::string &family,
                                   const char *extra) {
            std::string labels = dev;
            if (extra != nullptr) {
                if (!labels.empty())
                    labels += ',';
                labels += extra;
            }
            return labels.empty() ? family
                                  : family + "{" + labels + "}";
        };
        const auto typeLine = [&](const std::string &family,
                                  const char *type) {
            if (typed.insert(family).second)
                out += format("# TYPE %s %s\n", family.c_str(), type);
        };

        switch (s.kind) {
          case MetricKind::Counter:
            typeLine(name, "counter");
            out += format("%s %.0f\n",
                          series(name, nullptr).c_str(), s.value);
            break;
          case MetricKind::Gauge:
          case MetricKind::Rate:
            typeLine(name, "gauge");
            out += format("%s %g\n", series(name, nullptr).c_str(),
                          s.value);
            break;
          case MetricKind::Histogram:
            typeLine(name, "summary");
            out += format("%s %llu\n",
                          series(name + "_count", nullptr).c_str(),
                          static_cast<unsigned long long>(s.count));
            out += format("%s %llu\n",
                          series(name + "_min", nullptr).c_str(),
                          static_cast<unsigned long long>(s.min));
            out += format("%s %llu\n",
                          series(name + "_max", nullptr).c_str(),
                          static_cast<unsigned long long>(s.max));
            out += format("%s %g\n",
                          series(name + "_mean", nullptr).c_str(),
                          s.mean);
            out += format("%s %g\n",
                          series(name, "quantile=\"0.5\"").c_str(),
                          s.p50);
            out += format("%s %g\n",
                          series(name, "quantile=\"0.99\"").c_str(),
                          s.p99);
            break;
        }
    }
    return out;
}

std::string
toMetricsJsonLines(const std::vector<MetricSample> &samples)
{
    std::string out;
    for (const MetricSample &s : samples) {
        if (s.kind == MetricKind::Histogram) {
            out += format(
                "{\"name\":\"%s\",\"kind\":\"histogram\","
                "\"count\":%llu,\"min\":%llu,\"max\":%llu,"
                "\"mean\":%g,\"p50\":%g,\"p99\":%g}\n",
                jsonEscape(s.name).c_str(),
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.min),
                static_cast<unsigned long long>(s.max), s.mean, s.p50,
                s.p99);
            continue;
        }
        out += format("{\"name\":\"%s\",\"kind\":\"%s\",\"value\":%g}\n",
                      jsonEscape(s.name).c_str(), toString(s.kind),
                      s.value);
    }
    return out;
}

bool
writeTextFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t n =
        std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    if (n != content.size()) {
        warn("short write to '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace harmonia
