/**
 * @file
 * Periodic telemetry sampler: a clocked component that snapshots the
 * metrics registry every @p period of simulated time into a bounded
 * time-series ring — the in-fabric analogue of a scrape loop. Register
 * it on any clock domain; sampling is aligned to simulated time, not
 * cycles, so the period holds across domains.
 */

#ifndef HARMONIA_TELEMETRY_SAMPLER_H_
#define HARMONIA_TELEMETRY_SAMPLER_H_

#include <deque>

#include "sim/component.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

class TimeSeriesStore;

class Sampler : public Component {
  public:
    /** One scrape of the whole registry. */
    struct TimedSnapshot {
        Tick tick = 0;
        std::vector<MetricSample> samples;
    };

    static constexpr std::size_t kDefaultHistory = 256;

    /**
     * @param period  Simulated time between snapshots, in ticks (ps).
     * @param history Ring depth; older snapshots are evicted.
     */
    Sampler(std::string name, MetricsRegistry &registry, Tick period,
            std::size_t history = kDefaultHistory);

    void tick() override;

    /** Nothing to scrape until the next due time. */
    bool idle() const override { return now() < nextDue_; }
    Tick wakeTime() const override { return nextDue_; }

    /** Change the scrape period; takes effect from the next sample. */
    void setPeriod(Tick period);
    Tick period() const { return period_; }

    std::size_t sampleCount() const { return history_.size(); }
    const std::deque<TimedSnapshot> &history() const
    {
        return history_;
    }

    /** Most recent snapshot; fatal() when none was taken yet. */
    const TimedSnapshot &latest() const;

    void clearHistory() { history_.clear(); }

    /**
     * Feed every scrape into an obs-plane time-series store as well.
     * Not owned; pass nullptr to detach.
     */
    void attachStore(TimeSeriesStore *store) { store_ = store; }

  private:
    MetricsRegistry &registry_;
    Tick period_;
    std::size_t capacity_;
    Tick nextDue_ = 0;
    std::deque<TimedSnapshot> history_;
    TimeSeriesStore *store_ = nullptr;
};

} // namespace harmonia

#endif // HARMONIA_TELEMETRY_SAMPLER_H_
