#include "telemetry/profiler.h"

#include <algorithm>

#include "common/json.h"
#include "common/logging.h"

namespace harmonia {

std::size_t
Profiler::fold()
{
    const std::vector<Trace::Span> all = trace_->spans();

    std::vector<const Trace::Span *> fresh;
    fresh.reserve(all.size());
    for (const Trace::Span &s : all)
        if (s.id > watermark_)
            fresh.push_back(&s);
    if (fresh.empty())
        return 0;

    // Pass 1: direct-child time per parent, so pass 2 can compute
    // self = duration - children without ordering assumptions.
    std::map<SpanId, Tick> child_ticks;
    for (const Trace::Span *s : fresh)
        if (s->parent != 0)
            child_ticks[s->parent] += s->end - s->begin;

    for (const Trace::Span *s : fresh) {
        const Tick dur = s->end - s->begin;
        Agg &a = agg_[{s->who, s->cat}];
        ++a.spans;
        a.total += dur;
        const auto it = child_ticks.find(s->id);
        const Tick children =
            it == child_ticks.end() ? 0 : it->second;
        // Overlapping children clamp at the span's own duration so
        // self time never goes negative.
        a.self += dur - std::min(dur, children);
        a.max = std::max(a.max, dur);
        if (!sawSpan_ || s->begin < windowBegin_)
            windowBegin_ = s->begin;
        if (!sawSpan_ || s->end > windowEnd_)
            windowEnd_ = s->end;
        sawSpan_ = true;
        watermark_ = std::max(watermark_, s->id);
    }

    if (reg_ != nullptr)
        for (auto &[key, a] : agg_)
            if (!a.exported) {
                a.exported = true;
                exportKey(key);
            }
    return fresh.size();
}

void
Profiler::reset()
{
    // Skip everything already recorded: the watermark jumps past the
    // newest completed span (still-open spans complete with higher
    // ids, so they stay profiled).
    for (const Trace::Span &s : trace_->spans())
        watermark_ = std::max(watermark_, s.id);
    agg_.clear();
    telemetry_.release();
    windowBegin_ = 0;
    windowEnd_ = 0;
    sawSpan_ = false;
}

std::vector<ProfileEntry>
Profiler::snapshot() const
{
    const Tick window = windowEnd_ - windowBegin_;
    std::vector<ProfileEntry> out;
    out.reserve(agg_.size());
    for (const auto &[key, a] : agg_) {
        ProfileEntry e;
        e.who = key.first;
        e.cat = key.second;
        e.spans = a.spans;
        e.totalTicks = a.total;
        e.selfTicks = a.self;
        e.maxTicks = a.max;
        e.occupancy = window == 0
                          ? 0.0
                          : static_cast<double>(a.total) /
                                static_cast<double>(window);
        out.push_back(std::move(e));
    }
    return out;
}

void
Profiler::exportKey(const Key &key)
{
    const std::string base =
        format("%s/%s/%s", prefix_.c_str(), key.first.c_str(),
               key.second.c_str());
    // The map node is stable (std::map), so the lambdas may capture
    // a pointer to the aggregate for the profiler's lifetime.
    const Agg *a = &agg_[key];
    telemetry_.addGauge(base + "/spans", [a] {
        return static_cast<double>(a->spans);
    });
    telemetry_.addGauge(base + "/total_ticks", [a] {
        return static_cast<double>(a->total);
    });
    telemetry_.addGauge(base + "/self_ticks", [a] {
        return static_cast<double>(a->self);
    });
    telemetry_.addGauge(base + "/occupancy", [this, a] {
        const Tick window = windowEnd_ - windowBegin_;
        return window == 0 ? 0.0
                           : static_cast<double>(a->total) /
                                 static_cast<double>(window);
    });
}

void
Profiler::registerTelemetry(MetricsRegistry &reg,
                            const std::string &prefix)
{
    telemetry_.reset(reg);
    reg_ = &reg;
    prefix_ = prefix;
    for (auto &[key, a] : agg_) {
        a.exported = true;
        exportKey(key);
    }
}

std::string
Profiler::toJson() const
{
    JsonValue root = JsonValue::object();
    root.set("window_begin_ps", JsonValue(windowBegin_));
    root.set("window_end_ps", JsonValue(windowEnd_));
    JsonValue entries = JsonValue::array();
    for (const ProfileEntry &e : snapshot()) {
        JsonValue obj = JsonValue::object();
        obj.set("who", JsonValue(e.who));
        obj.set("cat", JsonValue(e.cat));
        obj.set("spans", JsonValue(e.spans));
        obj.set("total_ticks", JsonValue(e.totalTicks));
        obj.set("self_ticks", JsonValue(e.selfTicks));
        obj.set("max_ticks", JsonValue(e.maxTicks));
        obj.set("occupancy", JsonValue(e.occupancy));
        entries.push(std::move(obj));
    }
    root.set("entries", std::move(entries));
    return root.dump(2);
}

std::vector<Trace::Span>
spanTreeForCorr(const Trace &trace, std::uint64_t corr)
{
    std::vector<Trace::Span> out;
    for (const Trace::Span &s : trace.spans())
        if (s.corr == corr && corr != 0)
            out.push_back(s);
    std::sort(out.begin(), out.end(),
              [](const Trace::Span &a, const Trace::Span &b) {
                  if (a.begin != b.begin)
                      return a.begin < b.begin;
                  return a.id < b.id;
              });
    return out;
}

std::string
renderSpanTree(const std::vector<Trace::Span> &tree)
{
    std::map<SpanId, Tick> child_ticks;
    std::map<SpanId, int> depth;
    for (const Trace::Span &s : tree)
        if (s.parent != 0)
            child_ticks[s.parent] += s.end - s.begin;

    auto depthOf = [&](const Trace::Span &s) {
        int d = 0;
        SpanId p = s.parent;
        // Bounded walk: the tree is tiny and acyclic by construction.
        while (p != 0 && d < 16) {
            bool found = false;
            for (const Trace::Span &t : tree)
                if (t.id == p) {
                    p = t.parent;
                    found = true;
                    break;
                }
            if (!found)
                break;
            ++d;
        }
        return d;
    };

    std::string out;
    for (const Trace::Span &s : tree) {
        const Tick dur = s.end - s.begin;
        const auto it = child_ticks.find(s.id);
        const Tick children =
            it == child_ticks.end() ? 0 : it->second;
        const Tick self = dur - std::min(dur, children);
        out += format("%*s%s/%s %-24s %10llu ticks (self %llu)\n",
                      depthOf(s) * 2, "", s.who.c_str(),
                      s.cat.c_str(), s.what.c_str(),
                      static_cast<unsigned long long>(dur),
                      static_cast<unsigned long long>(self));
    }
    return out;
}

void
registerTraceGauges(ScopedMetrics &handle, const std::string &prefix,
                    const Trace &trace)
{
    const Trace *t = &trace;
    handle.addGauge(prefix + "/open_spans", [t] {
        return static_cast<double>(t->openSpanCount());
    });
    handle.addGauge(prefix + "/unmatched_ends", [t] {
        return static_cast<double>(t->unmatchedEnds());
    });
    handle.addGauge(prefix + "/dropped_open_spans", [t] {
        return static_cast<double>(t->droppedOpens());
    });
    handle.addGauge(prefix + "/span_capacity", [t] {
        return static_cast<double>(t->capacity());
    });
    handle.addGauge(prefix + "/completed_spans", [t] {
        return static_cast<double>(t->spanCount());
    });
}

} // namespace harmonia
