/**
 * @file
 * Process-wide metrics registry — the aggregation point of Harmonia's
 * telemetry plane. Every shell module (wrappers, RBBs, CDC FIFOs, the
 * unified control kernel, host drivers) registers its StatGroups, rate
 * meters, histograms and gauges under hierarchical slash-separated
 * names (`unified_DeviceA/net_rbb0/rx_packets`), so one snapshot sees
 * the whole system. The registry stores non-owning pointers; every
 * registrant holds a ScopedMetrics handle that unregisters on
 * teardown, keeping the registry valid across shells coming and going
 * in one process (tests construct dozens).
 */

#ifndef HARMONIA_TELEMETRY_METRICS_REGISTRY_H_
#define HARMONIA_TELEMETRY_METRICS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace harmonia {

/** What a registered metric measures. */
enum class MetricKind : std::uint32_t {
    Counter = 0,    ///< monotonically increasing integer
    Gauge = 1,      ///< instantaneous value (occupancy, temperature)
    Rate = 2,       ///< events per second of simulated time
    Histogram = 3,  ///< distribution (latencies)
};

const char *toString(MetricKind kind);

/** One metric's value at snapshot time. Histograms fill the tail. */
struct MetricSample {
    std::string name;
    MetricKind kind = MetricKind::Counter;
    double value = 0.0;  ///< counter/gauge/rate reading

    // Histogram-only fields.
    std::uint64_t count = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
};

/** Handle for unregistering; stable for the registry's lifetime. */
using MetricId = std::uint64_t;

class MetricsRegistry {
  public:
    /** The process-wide registry most components register into. */
    static MetricsRegistry &instance();

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Register one metric. The pointee must outlive the registration
     * (unregister via remove() / ScopedMetrics before teardown). A
     * name collision gets a `~N` suffix so both stay visible.
     */
    MetricId addCounter(const std::string &name, const Counter *c);
    MetricId addRate(const std::string &name, const RateMeter *m);
    MetricId addHistogram(const std::string &name, const Histogram *h);
    MetricId addGauge(const std::string &name,
                      std::function<double()> fn);

    /**
     * Register a whole StatGroup under @p prefix. The group's counters
     * are enumerated at snapshot time, so counters created lazily
     * after registration are still exported.
     */
    MetricId addGroup(const std::string &prefix, const StatGroup *g);

    /** Unregister; unknown ids are ignored (idempotent teardown). */
    void remove(MetricId id);

    /** Registered entries (a StatGroup counts as one). */
    std::size_t size() const { return entries_.size(); }

    /**
     * Snapshot every metric, StatGroups expanded, sorted by name. The
     * order is deterministic, so an index into this vector is a stable
     * wire handle for the telemetry command target.
     */
    std::vector<MetricSample> snapshot() const;

    /** Drop everything (tests). Outstanding ids become stale no-ops. */
    void clear();

  private:
    struct Entry {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        const Counter *counter = nullptr;
        const RateMeter *rate = nullptr;
        const Histogram *histogram = nullptr;
        const StatGroup *group = nullptr;
        std::function<double()> gauge;
    };

    MetricId add(Entry entry);
    std::string uniqueName(const std::string &name) const;
    bool nameTaken(const std::string &name) const;

    MetricId nextId_ = 1;
    std::map<MetricId, Entry> entries_;
};

/**
 * RAII bundle of registrations. Components keep one as a member and
 * route every addX() through it; destruction unregisters all, so a
 * destroyed shell leaves no dangling metric pointers behind.
 */
class ScopedMetrics {
  public:
    explicit ScopedMetrics(MetricsRegistry &reg =
                               MetricsRegistry::instance())
        : registry_(&reg)
    {
    }

    ~ScopedMetrics() { release(); }

    ScopedMetrics(const ScopedMetrics &) = delete;
    ScopedMetrics &operator=(const ScopedMetrics &) = delete;

    MetricsRegistry &registry() { return *registry_; }

    void
    addCounter(const std::string &name, const Counter *c)
    {
        ids_.push_back(registry_->addCounter(name, c));
    }

    void
    addRate(const std::string &name, const RateMeter *m)
    {
        ids_.push_back(registry_->addRate(name, m));
    }

    void
    addHistogram(const std::string &name, const Histogram *h)
    {
        ids_.push_back(registry_->addHistogram(name, h));
    }

    void
    addGauge(const std::string &name, std::function<double()> fn)
    {
        ids_.push_back(registry_->addGauge(name, std::move(fn)));
    }

    void
    addGroup(const std::string &prefix, const StatGroup *g)
    {
        ids_.push_back(registry_->addGroup(prefix, g));
    }

    /** Unregister everything now (idempotent). */
    void
    release()
    {
        for (MetricId id : ids_)
            registry_->remove(id);
        ids_.clear();
    }

    /** Release, then point future registrations at @p reg. */
    void
    reset(MetricsRegistry &reg)
    {
        release();
        registry_ = &reg;
    }

    std::size_t size() const { return ids_.size(); }

  private:
    MetricsRegistry *registry_;
    std::vector<MetricId> ids_;
};

} // namespace harmonia

#endif // HARMONIA_TELEMETRY_METRICS_REGISTRY_H_
