/**
 * @file
 * Offline exporters for the telemetry plane: spans and events render
 * as Chrome trace_event JSON (load in chrome://tracing / Perfetto),
 * metrics render as Prometheus-style text or JSON lines. Pure
 * formatting — no simulation state is touched.
 */

#ifndef HARMONIA_TELEMETRY_EXPORTER_H_
#define HARMONIA_TELEMETRY_EXPORTER_H_

#include <string>
#include <vector>

#include "sim/trace.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/**
 * Render completed spans as Chrome "X" (complete) events and instant
 * entries as "i" events. Each distinct `who` becomes a named thread
 * track. Timestamps convert from ticks (ps) to the format's
 * microseconds; span ids, parent links and correlation ids ride in
 * each event's args so chrome://tracing / Perfetto can group one
 * command's tree. Open (unbalanced) spans are simply absent — they
 * can never corrupt the JSON.
 */
std::string toChromeTraceJson(const Trace &trace);

/**
 * One JSON object per completed span per line, carrying every Span
 * field (id, parent, corr, begin/end ticks, who/what/cat) so a span
 * tree round-trips losslessly through text.
 */
std::string toSpanJsonLines(const Trace &trace);

/** Inverse of toSpanJsonLines(); malformed lines are skipped. */
std::vector<Trace::Span> spansFromJsonLines(const std::string &text);

/** Rendering options for toMetricsText(). */
struct MetricsTextOptions {
    /**
     * Keep the legacy flat form: a `unified_<Device>/` shell prefix
     * stays baked into the metric name and no device label is
     * emitted. Default off — a fleet scrape wants one metric family
     * per series with the card spelled as a device="..." label.
     */
    bool flatNames = false;
};

/**
 * Prometheus-style exposition text. Hierarchical names flatten with
 * '/' -> '_' plus a "harmonia_" namespace; histograms emit _count,
 * _min, _max, _mean and quantile-labelled series. Series registered
 * under a shell instance (`unified_<Device>/rest`) drop the prefix
 * and carry it as a device="<Device>" label instead, so the same
 * metric from every card lands in one family; `# TYPE` is emitted
 * once per family. MetricsTextOptions::flatNames restores the
 * pre-label form.
 */
std::string toMetricsText(const std::vector<MetricSample> &samples,
                          const MetricsTextOptions &opts = {});

/** One JSON object per metric per line (jq-friendly). */
std::string
toMetricsJsonLines(const std::vector<MetricSample> &samples);

/**
 * Escape @p s for embedding in a JSON string literal (quotes,
 * backslashes, control characters). Shared by every JSON-producing
 * renderer in the tree.
 */
std::string jsonEscape(const std::string &s);

/** Write @p content to @p path; warn() and return false on failure. */
bool writeTextFile(const std::string &path, const std::string &content);

} // namespace harmonia

#endif // HARMONIA_TELEMETRY_EXPORTER_H_
