/**
 * @file
 * Cycle-attribution profiler over the causal trace: folds completed
 * spans into per-(who, cat) totals with self-vs-child time, so one
 * command round trip decomposes into "driver self + wire + kernel
 * decode + RBB execute" tick budgets that sum exactly to the observed
 * end-to-end latency (the telescoping identity: every span's self
 * time is its duration minus its direct children's durations).
 *
 * Folding is incremental — a watermark on span ids makes repeated
 * fold() calls cheap and double-count-free — and the aggregates are
 * exported three ways: in-process snapshot(), MetricsRegistry gauges
 * (hence every exporter), and the command plane via TelemetryTarget's
 * ProfileSnapshot/ProfileReset codes.
 */

#ifndef HARMONIA_TELEMETRY_PROFILER_H_
#define HARMONIA_TELEMETRY_PROFILER_H_

#include <map>
#include <string>
#include <vector>

#include "sim/trace.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/** Aggregated spans of one (who, cat) track. */
struct ProfileEntry {
    std::string who;
    std::string cat;
    std::uint64_t spans = 0;
    Tick totalTicks = 0;  ///< sum of span durations
    Tick selfTicks = 0;   ///< durations minus direct children
    Tick maxTicks = 0;    ///< longest single span
    double occupancy = 0; ///< totalTicks / profiled window
};

class Profiler {
  public:
    explicit Profiler(Trace &trace = Trace::instance())
        : trace_(&trace)
    {
    }

    /**
     * Fold spans completed since the last fold (or reset) into the
     * aggregates; returns how many were consumed. A child that
     * completes in a later fold than its parent keeps its own self
     * time but no longer subtracts from the parent — fold after the
     * workload quiesces for exact attribution.
     */
    std::size_t fold();

    /** Drop aggregates and skip everything recorded so far. */
    void reset();

    /** Aggregates sorted by (who, cat), occupancy filled in. */
    std::vector<ProfileEntry> snapshot() const;

    /** [min begin, max end] over every folded span. */
    Tick windowBegin() const { return windowBegin_; }
    Tick windowEnd() const { return windowEnd_; }

    /**
     * Publish per-track gauges (`<prefix>/<who>/<cat>/self_ticks`,
     * `/total_ticks`, `/spans`, `/occupancy`) — tracks register as
     * fold() discovers them.
     */
    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

    /** The whole profile as one JSON object (bench reports, tools). */
    std::string toJson() const;

  private:
    struct Agg {
        std::uint64_t spans = 0;
        Tick total = 0;
        Tick self = 0;
        Tick max = 0;
        bool exported = false;
    };

    using Key = std::pair<std::string, std::string>;

    void exportKey(const Key &key);

    Trace *trace_;
    SpanId watermark_ = 0;
    Tick windowBegin_ = 0;
    Tick windowEnd_ = 0;
    bool sawSpan_ = false;
    std::map<Key, Agg> agg_;
    MetricsRegistry *reg_ = nullptr;
    std::string prefix_;
    ScopedMetrics telemetry_;
};

/**
 * Completed spans belonging to one correlation id, sorted by begin
 * tick then id (parents before their children at equal begins).
 */
std::vector<Trace::Span> spanTreeForCorr(const Trace &trace,
                                         std::uint64_t corr);

/**
 * Render a span tree (as returned by spanTreeForCorr) as indented
 * text, one line per hop with duration and self time.
 */
std::string renderSpanTree(const std::vector<Trace::Span> &tree);

/**
 * Register span-leak visibility gauges for @p trace under @p prefix:
 * open spans, unmatched ends, dropped opens, ring capacity. Keeps the
 * registrations alive through @p handle.
 */
void registerTraceGauges(ScopedMetrics &handle,
                         const std::string &prefix,
                         const Trace &trace = Trace::instance());

} // namespace harmonia

#endif // HARMONIA_TELEMETRY_PROFILER_H_
