#include "telemetry/metrics_registry.h"

#include <algorithm>

#include "common/logging.h"

namespace harmonia {

const char *
toString(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Rate:
        return "rate";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry r;
    return r;
}

bool
MetricsRegistry::nameTaken(const std::string &name) const
{
    for (const auto &[id, e] : entries_)
        if (e.name == name)
            return true;
    return false;
}

std::string
MetricsRegistry::uniqueName(const std::string &name) const
{
    if (!nameTaken(name))
        return name;
    for (unsigned n = 2;; ++n) {
        const std::string candidate = format("%s~%u", name.c_str(), n);
        if (!nameTaken(candidate))
            return candidate;
    }
}

MetricId
MetricsRegistry::add(Entry entry)
{
    if (entry.name.empty())
        fatal("metric registered with an empty name");
    entry.name = uniqueName(entry.name);
    const MetricId id = nextId_++;
    entries_.emplace(id, std::move(entry));
    return id;
}

MetricId
MetricsRegistry::addCounter(const std::string &name, const Counter *c)
{
    if (c == nullptr)
        fatal("null counter registered as '%s'", name.c_str());
    Entry e;
    e.name = name;
    e.kind = MetricKind::Counter;
    e.counter = c;
    return add(std::move(e));
}

MetricId
MetricsRegistry::addRate(const std::string &name, const RateMeter *m)
{
    if (m == nullptr)
        fatal("null rate meter registered as '%s'", name.c_str());
    Entry e;
    e.name = name;
    e.kind = MetricKind::Rate;
    e.rate = m;
    return add(std::move(e));
}

MetricId
MetricsRegistry::addHistogram(const std::string &name,
                              const Histogram *h)
{
    if (h == nullptr)
        fatal("null histogram registered as '%s'", name.c_str());
    Entry e;
    e.name = name;
    e.kind = MetricKind::Histogram;
    e.histogram = h;
    return add(std::move(e));
}

MetricId
MetricsRegistry::addGauge(const std::string &name,
                          std::function<double()> fn)
{
    if (!fn)
        fatal("null gauge registered as '%s'", name.c_str());
    Entry e;
    e.name = name;
    e.kind = MetricKind::Gauge;
    e.gauge = std::move(fn);
    return add(std::move(e));
}

MetricId
MetricsRegistry::addGroup(const std::string &prefix, const StatGroup *g)
{
    if (g == nullptr)
        fatal("null stat group registered as '%s'", prefix.c_str());
    Entry e;
    e.name = prefix;
    e.kind = MetricKind::Counter;
    e.group = g;
    return add(std::move(e));
}

void
MetricsRegistry::remove(MetricId id)
{
    entries_.erase(id);
}

void
MetricsRegistry::clear()
{
    entries_.clear();
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::vector<MetricSample> out;
    out.reserve(entries_.size());
    for (const auto &[id, e] : entries_) {
        if (e.group != nullptr) {
            for (const auto &[counter_name, value] :
                 e.group->snapshot()) {
                MetricSample s;
                s.name = e.name + "/" + counter_name;
                s.kind = MetricKind::Counter;
                s.value = static_cast<double>(value);
                out.push_back(std::move(s));
            }
            continue;
        }
        MetricSample s;
        s.name = e.name;
        s.kind = e.kind;
        switch (e.kind) {
          case MetricKind::Counter:
            s.value = static_cast<double>(e.counter->value());
            break;
          case MetricKind::Gauge:
            s.value = e.gauge();
            break;
          case MetricKind::Rate:
            s.value = e.rate->ratePerSecond();
            break;
          case MetricKind::Histogram:
            s.count = e.histogram->count();
            s.min = e.histogram->min();
            s.max = e.histogram->max();
            s.mean = e.histogram->mean();
            s.p50 = e.histogram->percentile(50);
            s.p99 = e.histogram->percentile(99);
            s.value = static_cast<double>(s.count);
            break;
        }
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

} // namespace harmonia
