/**
 * @file
 * The fleet's stock tenant role: a small look-aside key/value table
 * whose writes arrive over the command plane (kCmdTableWrite) and
 * whose whole state rides the checkpoint envelope. It exists so the
 * scheduler drills can churn thousands of placements with a modest
 * per-slot bitstream, while still having real acked state to lose —
 * the zero-acknowledged-command-loss checks read the table back after
 * every migration and failover re-place.
 */

#ifndef HARMONIA_FLEET_TENANT_ROLE_H_
#define HARMONIA_FLEET_TENANT_ROLE_H_

#include <map>

#include "roles/role.h"

namespace harmonia {

/** The key/value tenant workload. */
class TenantRole : public Role {
  public:
    /**
     * @param kind Role-kind name; twins of one kind share it, so a
     *        blob snapshotted on one card restores on any card
     *        carrying the same kind (Role::checkpointKind()).
     * @param reqs The kind's requirements (logic budget, peripherals).
     */
    TenantRole(const std::string &kind, RoleRequirements reqs);

    /** A host-only kind with @p lut logic; the drills' bulk tenant. */
    static RoleRequirements lightRequirements(const std::string &kind,
                                              std::uint64_t lut = 2500);

    std::size_t entryCount() const { return table_.size(); }

    /** Value stored under @p key, or 0 when absent. */
    std::uint32_t valueOf(std::uint32_t key) const;

    /** Table writes executed (including overwrites), lifetime. */
    std::uint64_t writesExecuted() const { return writes_; }

    void tick() override;
    bool idle() const override { return true; }

  protected:
    /** kCmdTableWrite [key, value] upserts; kCmdTableRead [key]. */
    CommandResult
    executeCommand(std::uint16_t code,
                   const std::vector<std::uint32_t> &data) override;

    std::vector<std::uint32_t> snapshotPayload() const override;
    CheckpointError
    restorePayload(const std::vector<std::uint32_t> &payload) override;

  private:
    std::map<std::uint32_t, std::uint32_t> table_;
    std::uint64_t writes_ = 0;
};

} // namespace harmonia

#endif // HARMONIA_FLEET_TENANT_ROLE_H_
