/**
 * @file
 * The fleet placement engine: pure scoring of candidate (card, PR
 * slot) pairs against a tenant role's resource budget and peripheral
 * requirements, following FOS's dynamic workload management and
 * RC3E's provisioning model (PAPERS.md). The engine is deliberately
 * engine-free and stateless: the FleetManager snapshots its live
 * state into PlacementCardViews, and decide() maps (spec, views) to
 * one deterministic decision — place here, evict that tenant first,
 * or reject with an explicit reason. Determinism is structural:
 * candidates are scored with fixed arithmetic and tie-broken on
 * (score, card name, slot index), never on pointer or hash order.
 */

#ifndef HARMONIA_FLEET_PLACEMENT_H_
#define HARMONIA_FLEET_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "device/database.h"
#include "shell/tailoring.h"

namespace harmonia {

/** One tenant role request, as the scheduler sees it. */
struct FleetRoleSpec {
    std::string tenant;        ///< unique tenant/instance name
    std::string kind;          ///< registered role kind
    RoleRequirements reqs;     ///< logic budget + peripheral needs
    unsigned priority = 0;     ///< higher may evict strictly lower
    /** Tenants sharing a non-empty group never co-locate on a card. */
    std::string antiAffinity;
};

/** One PR slot's occupancy, as the placement engine sees it. */
struct PlacementSlotView {
    ResourceVector capacity;
    bool free = true;
    /** Valid when occupied. */
    std::string occupantTenant;
    unsigned occupantPriority = 0;
};

/** One card's live state, snapshotted for a decision. */
struct PlacementCardView {
    std::string card;                ///< unique card name
    const FpgaDevice *device = nullptr;
    bool alive = true;
    /**
     * Scheduler feedback from the obs plane: the card's recent mean
     * placement latency in kernel cycles (0 = no history). Slower
     * cards are deprioritized, so the placement-latency series the
     * hub keeps genuinely feeds the next decision.
     */
    double placementLatencyCycles = 0.0;
    std::vector<PlacementSlotView> slots;
    /** Anti-affinity groups already present on the card. */
    std::vector<std::string> groups;
};

/** Why a placement was refused — explicit, never silent. */
enum class PlacementReject {
    None,               ///< not refused
    MissingPeripheral,  ///< no alive card carries what the role needs
    NoCapacity,         ///< no slot anywhere fits the role's logic
    AntiAffinity,       ///< only co-location with its group remained
    FleetFull,          ///< capacity exists but every fit is taken by
                        ///< tenants of equal or higher priority
};

const char *toString(PlacementReject reject);

/** The outcome of one decide() call. */
struct PlacementDecision {
    bool placed = false;
    std::string card;
    std::size_t slot = 0;
    /** Placement requires displacing this tenant first (may be ""). */
    std::string evictTenant;
    double score = 0.0;
    PlacementReject reject = PlacementReject::None;
};

/** Scoring weights; the defaults balance fit against spread. */
struct PlacementWeights {
    double fit = 100.0;      ///< best-fit: tighter slot wins
    double spread = 10.0;    ///< prefer cards with more free slots
    double latency = 1.0;    ///< penalty per 1e6 cycles of history
    double latencyCap = 5.0; ///< bound on the latency penalty
};

/**
 * The stateless decision function. Free slots are preferred; when
 * none fits, the lowest-priority strictly-lower occupant whose slot
 * fits is evicted (priority eviction is monotone: raising the
 * requester's priority never turns a success into a refusal).
 */
class PlacementEngine {
  public:
    explicit PlacementEngine(PlacementWeights weights = {});

    const PlacementWeights &weights() const { return weights_; }

    PlacementDecision
    decide(const FleetRoleSpec &spec,
           const std::vector<PlacementCardView> &cards) const;

  private:
    /** Does an alive @p card carry every peripheral @p spec needs? */
    static bool peripheralsOk(const FleetRoleSpec &spec,
                              const PlacementCardView &card);

    double scoreSlot(const FleetRoleSpec &spec,
                     const PlacementCardView &card,
                     const PlacementSlotView &slot) const;

    PlacementWeights weights_;
};

} // namespace harmonia

#endif // HARMONIA_FLEET_PLACEMENT_H_
