#include "fleet/scheduler_drill.h"

#include <cstdio>

#include "common/logging.h"
#include "fleet/tenant_role.h"

namespace harmonia {

namespace {

/** The 8-card rack: two of each evaluation device, A through D. */
std::vector<FleetCardSpec>
rackSpecs()
{
    std::vector<FleetCardSpec> specs;
    const char *devices[] = {"DeviceA", "DeviceA", "DeviceB",
                             "DeviceB", "DeviceC", "DeviceC",
                             "DeviceD", "DeviceD"};
    for (const char *dev : devices) {
        FleetCardSpec spec;
        spec.device = dev;
        spec.prSlots = 3;
        specs.push_back(spec);
    }
    return specs;
}

/** Cards 0-3 carry Xilinx dies, 4-7 Intel dies (chip vendor). */
bool
intelCard(std::size_t card_idx)
{
    return card_idx >= 4;
}

RoleRequirements
memCacheRequirements()
{
    RoleRequirements reqs =
        TenantRole::lightRequirements("mem_cache", 2800);
    reqs.needsMemory = true;
    reqs.memoryBandwidthGBps = 24;
    reqs.memoryCapacityBytes = 1ULL << 30;
    return reqs;
}

RoleRequirements
edgeFwRequirements()
{
    RoleRequirements reqs =
        TenantRole::lightRequirements("edge_fw", 2000);
    reqs.needsNetwork = true;
    reqs.networkGbps = 100;
    reqs.networkPorts = 1;
    return reqs;
}

} // namespace

SchedulerDrill::SchedulerDrill(SchedulerDrillConfig config)
    : cfg_(config), plan_(config.seed)
{
    if (cfg_.victimCard >= 8)
        fatal("victim card %zu out of range", cfg_.victimCard);
    engine_.setIdleFastForward(true);
    fleet_ = std::make_unique<FleetManager>(engine_, rackSpecs());
    hub_ = std::make_unique<ObsHub>(engine_);
    for (std::size_t i = 0; i < fleet_->cardCount(); ++i)
        hub_->addDevice(fleet_->cardName(i), "tenant-host",
                        fleet_->cardShell(i));
    fleet_->attachHub(hub_.get());

    // The four role kinds tenants request. mem_cache needs a memory
    // peripheral (DeviceC has none); edge_fw needs a network cage and
    // carries anti-affinity groups from the request mixer.
    const auto registerKind = [this](const char *kind,
                                     RoleRequirements reqs) {
        fleet_->registerRoleKind(
            kind, reqs, [kind, reqs] {
                return std::make_unique<TenantRole>(kind, reqs);
            });
    };
    registerKind("kv_cache",
                 TenantRole::lightRequirements("kv_cache", 2400));
    registerKind("kv_index",
                 TenantRole::lightRequirements("kv_index", 3600));
    registerKind("mem_cache", memCacheRequirements());
    registerKind("edge_fw", edgeFwRequirements());
}

SchedulerDrill::~SchedulerDrill() = default;

std::uint64_t
SchedulerDrill::mixed(std::uint64_t counter) const
{
    std::uint64_t z = cfg_.seed + counter * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::string
SchedulerDrill::pickPlaced(std::uint64_t pick) const
{
    if (everAdmitted_.empty())
        return "";
    const std::size_t n = everAdmitted_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::string &name = everAdmitted_[(pick + i) % n];
        if (fleet_->tenantState(name) ==
            FleetManager::TenantState::Placed)
            return name;
    }
    return "";
}

void
SchedulerDrill::admitNext(std::uint64_t r,
                          SchedulerDrillReport &report)
{
    static const char *kKinds[] = {"kv_cache", "kv_index",
                                   "mem_cache", "edge_fw"};
    FleetRoleSpec spec;
    spec.tenant = format("t%05llu",
                         static_cast<unsigned long long>(
                             nextTenantId_++));
    spec.kind = kKinds[r % 4];
    spec.priority = static_cast<unsigned>((r >> 8) % 4);
    if (spec.kind == "edge_fw")
        spec.antiAffinity = format(
            "fwgrp%llu",
            static_cast<unsigned long long>((r >> 12) % 3));

    const PlacementDecision decision = fleet_->admit(spec);
    if (!decision.evictTenant.empty()) {
        ledger_.erase(decision.evictTenant);
        ++report.evictions;
    }
    if (decision.placed) {
        ++report.admitted;
        everAdmitted_.push_back(spec.tenant);
        const Cycles c = fleet_->lastPlacementCycles();
        ++placementSamples_;
        placementCyclesTotal_ += static_cast<double>(c);
        placementCyclesMax_ = std::max(placementCyclesMax_, c);
        if (cfg_.verbose)
            std::printf("t=%llu admit %s (%s, prio %u) -> %s/%zu\n",
                        static_cast<unsigned long long>(
                            engine_.now()),
                        spec.tenant.c_str(), spec.kind.c_str(),
                        spec.priority, decision.card.c_str(),
                        decision.slot);
    } else {
        ++report.rejected;
        if (fleet_->hasTenant(spec.tenant))
            everAdmitted_.push_back(spec.tenant);  // degraded admit
        if (cfg_.verbose)
            std::printf("t=%llu admit %s rejected (%s)\n",
                        static_cast<unsigned long long>(
                            engine_.now()),
                        spec.tenant.c_str(),
                        toString(decision.reject));
    }
}

void
SchedulerDrill::writeTraffic(const std::string &tenant,
                             std::uint64_t r,
                             SchedulerDrillReport &report)
{
    if (tenant.empty())
        return;
    const std::uint32_t key = static_cast<std::uint32_t>(r % 48);
    const std::uint32_t value =
        static_cast<std::uint32_t>(r >> 5) | 1u;
    const CallOutcome out =
        fleet_->call(tenant, kCmdTableWrite, {key, value});
    if (out.ok() && out.response.status == kCmdOk) {
        ledger_[tenant][key] = value;
        ++report.ackedWrites;
    }
}

void
SchedulerDrill::recordMigration(const PlacementDecision &d,
                                const std::string &tenant,
                                std::size_t src,
                                SchedulerDrillReport &report)
{
    if (!d.evictTenant.empty()) {
        ledger_.erase(d.evictTenant);
        ++report.evictions;
    }
    if (!d.placed)
        return;
    ++report.migrations;
    if (intelCard(fleet_->cardIndex(d.card)) != intelCard(src))
        ++report.crossVendorMigrations;
    const Cycles c = fleet_->lastMigrationDowntimeCycles();
    ++migrationSamples_;
    migrationCyclesTotal_ += static_cast<double>(c);
    migrationCyclesMax_ = std::max(migrationCyclesMax_, c);
    // The strongest loss check happens here, right after the blob +
    // journal-tail replay landed on the new card: every acked write
    // the host remembers must already be in the migrated table.
    verifyTenant(tenant, report);
}

void
SchedulerDrill::verifyTenant(const std::string &tenant,
                             SchedulerDrillReport &report)
{
    const auto lit = ledger_.find(tenant);
    if (lit == ledger_.end())
        return;
    const auto *role =
        static_cast<const TenantRole *>(fleet_->tenantRole(tenant));
    for (const auto &[key, value] : lit->second) {
        if (role != nullptr && role->valueOf(key) == value)
            ++report.verifiedWrites;
        else
            ++report.lostWrites;
    }
}

SchedulerDrillReport
SchedulerDrill::run()
{
    SchedulerDrillReport report;
    report.requests = cfg_.requests;
    const std::size_t kill_step = cfg_.requests * 2 / 5;
    const std::string victim = fleet_->cardName(cfg_.victimCard);
    Tick window_end = 0;

    for (std::size_t step = 0; step < cfg_.requests; ++step) {
        const std::uint64_t r = mixed(step);

        if (cfg_.injectFault && step == kill_step) {
            window_end = engine_.now() + cfg_.deathSpan;
            plan_.addWindow(FaultKind::DeviceDeath, engine_.now(),
                            window_end, 1.0, victim);
            plan_.arm();
            if (cfg_.verbose)
                std::printf("t=%llu killing %s until t=%llu\n",
                            static_cast<unsigned long long>(
                                engine_.now()),
                            victim.c_str(),
                            static_cast<unsigned long long>(
                                window_end));
        }

        // Every step is one tenant role request. A full fleet gets
        // one make-room eviction first, so the churn keeps placing
        // (the admission may still displace a different victim via
        // priority eviction, or reject on a missing peripheral).
        if (fleet_->freeSlots() == 0) {
            const std::string out = pickPlaced(r >> 40);
            if (!out.empty() && fleet_->evict(out)) {
                ledger_.erase(out);
                ++report.evictions;
            }
        }
        admitNext(r >> 8, report);

        // Satellite churn rides along: live migrations on a fixed
        // cadence, with every 211th step a pinned cross-vendor move
        // dragging a Xilinx-resident tenant onto the Intel cards.
        if (step % 211 == 140) {
            const std::string t = pickPlaced(r >> 32);
            if (!t.empty() &&
                !intelCard(fleet_->cardIndex(fleet_->tenantCard(t)))) {
                const std::size_t src =
                    fleet_->cardIndex(fleet_->tenantCard(t));
                const std::string target =
                    fleet_->cardName(6 + ((r >> 40) % 2));
                // Load the table up first, so the migration moves
                // real acked state worth losing.
                for (unsigned w = 0; w < 3; ++w)
                    writeTraffic(t, mixed(r + w), report);
                recordMigration(fleet_->migrate(t, target), t, src,
                                report);
            }
        } else if (step % 7 == 3) {
            const std::string t = pickPlaced(r >> 32);
            if (!t.empty()) {
                const std::size_t src =
                    fleet_->cardIndex(fleet_->tenantCard(t));
                for (unsigned w = 0; w < 3; ++w)
                    writeTraffic(t, mixed(r + w), report);
                recordMigration(fleet_->migrate(t), t, src, report);
            }
        }

        // Background table-write traffic rides every step.
        writeTraffic(pickPlaced(r >> 24), r >> 33, report);

        fleet_->poll();
        if (fleet_->cardWatchdog(cfg_.victimCard).dead())
            report.cardDied = true;
        if (step % 50 == 17)
            hub_->poll(engine_.now());
        engine_.runFor(500'000);
    }

    // Settle: outlive the death window so the victim revives, then
    // give the manager polls to re-place degraded tenants.
    if (cfg_.injectFault && window_end != 0) {
        while (engine_.now() < window_end + 100'000'000) {
            fleet_->poll();
            engine_.runFor(20'000'000);
        }
    }
    for (int i = 0; i < 100 && fleet_->degradedCount() != 0; ++i) {
        fleet_->poll();
        engine_.runFor(5'000'000);
    }
    report.cardRevived =
        report.cardDied &&
        !fleet_->cardWatchdog(cfg_.victimCard).dead();

    // --- Final ledger verification: every acked write of every
    // surviving tenant must be readable from its live table (on top
    // of the per-migration checks above). Evicted tenants dropped
    // their state deliberately; Degraded tenants (none expected
    // after the settle) are counted, not verified.
    for (const auto &kv : ledger_) {
        if (fleet_->tenantState(kv.first) ==
            FleetManager::TenantState::Placed)
            verifyTenant(kv.first, report);
    }

    report.placements = fleet_->placements();
    report.placedEnd = fleet_->placedCount();
    report.degradedEnd = fleet_->degradedCount();
    report.zeroLoss = report.lostWrites == 0;
    report.fingerprint = fleet_->fingerprint();
    if (placementSamples_ != 0)
        report.meanPlacementCycles =
            placementCyclesTotal_ /
            static_cast<double>(placementSamples_);
    report.maxPlacementCycles = placementCyclesMax_;
    if (migrationSamples_ != 0)
        report.meanMigrationCycles =
            migrationCyclesTotal_ /
            static_cast<double>(migrationSamples_);
    report.maxMigrationCycles = migrationCyclesMax_;
    return report;
}

} // namespace harmonia
