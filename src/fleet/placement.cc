#include "fleet/placement.h"

#include <algorithm>

#include "common/logging.h"

namespace harmonia {

const char *
toString(PlacementReject reject)
{
    switch (reject) {
      case PlacementReject::None:
        return "none";
      case PlacementReject::MissingPeripheral:
        return "missing_peripheral";
      case PlacementReject::NoCapacity:
        return "no_capacity";
      case PlacementReject::AntiAffinity:
        return "anti_affinity";
      case PlacementReject::FleetFull:
        return "fleet_full";
    }
    return "?";
}

PlacementEngine::PlacementEngine(PlacementWeights weights)
    : weights_(weights)
{
}

bool
PlacementEngine::peripheralsOk(const FleetRoleSpec &spec,
                               const PlacementCardView &card)
{
    const RoleRequirements &r = spec.reqs;
    if (card.device == nullptr)
        return false;
    if (r.needsNetwork &&
        card.device->byClass(PeripheralClass::Network).size() <
            r.networkPorts)
        return false;
    if (r.needsMemory) {
        if (card.device->byClass(PeripheralClass::Memory).empty())
            return false;
        // HBM-class bandwidth demands an HBM stack; a DDR channel
        // cannot satisfy a full-corpus scanner (cf. tailoring).
        if (r.memoryBandwidthGBps > 50.0 &&
            !card.device->has(PeripheralKind::Hbm))
            return false;
    }
    if (r.needsHost &&
        card.device->byClass(PeripheralClass::Host).empty())
        return false;
    return true;
}

double
PlacementEngine::scoreSlot(const FleetRoleSpec &spec,
                           const PlacementCardView &card,
                           const PlacementSlotView &slot) const
{
    // Best-fit: the tighter the role packs the slot, the less
    // capacity is stranded behind it.
    const double fit =
        spec.reqs.roleLogic.maxUtilization(slot.capacity);
    std::size_t free_slots = 0;
    for (const PlacementSlotView &s : card.slots)
        if (s.free)
            ++free_slots;
    const double spread =
        card.slots.empty()
            ? 0.0
            : static_cast<double>(free_slots) /
                  static_cast<double>(card.slots.size());
    const double latency_penalty =
        std::min(card.placementLatencyCycles / 1e6 * weights_.latency,
                 weights_.latencyCap);
    return weights_.fit * fit + weights_.spread * spread -
           latency_penalty;
}

PlacementDecision
PlacementEngine::decide(
    const FleetRoleSpec &spec,
    const std::vector<PlacementCardView> &cards) const
{
    PlacementDecision best;
    PlacementDecision best_evict;
    bool saw_alive = false;
    bool saw_peripherals = false;
    bool saw_fit = false;          // some slot's capacity suffices
    bool saw_aa_block = false;     // a fit existed behind anti-affinity

    for (const PlacementCardView &card : cards) {
        if (!card.alive)
            continue;
        saw_alive = true;
        if (!peripheralsOk(spec, card))
            continue;
        saw_peripherals = true;

        const bool aa_blocked =
            !spec.antiAffinity.empty() &&
            std::find(card.groups.begin(), card.groups.end(),
                      spec.antiAffinity) != card.groups.end();

        for (std::size_t i = 0; i < card.slots.size(); ++i) {
            const PlacementSlotView &slot = card.slots[i];
            if (!spec.reqs.roleLogic.fitsIn(slot.capacity))
                continue;
            if (aa_blocked) {
                saw_aa_block = true;
                continue;
            }
            saw_fit = true;
            if (slot.free) {
                const double score = scoreSlot(spec, card, slot);
                if (!best.placed || score > best.score ||
                    (score == best.score &&
                     (card.card < best.card ||
                      (card.card == best.card && i < best.slot)))) {
                    best.placed = true;
                    best.card = card.card;
                    best.slot = i;
                    best.score = score;
                }
            } else if (slot.occupantPriority < spec.priority) {
                // Eviction candidate: displace the weakest tenant
                // the fleet holds, then tie-break like a free slot.
                const double score =
                    -static_cast<double>(slot.occupantPriority);
                if (best_evict.evictTenant.empty() ||
                    score > best_evict.score ||
                    (score == best_evict.score &&
                     (card.card < best_evict.card ||
                      (card.card == best_evict.card &&
                       i < best_evict.slot)))) {
                    best_evict.placed = true;
                    best_evict.card = card.card;
                    best_evict.slot = i;
                    best_evict.score = score;
                    best_evict.evictTenant = slot.occupantTenant;
                }
            }
        }
    }

    if (best.placed)
        return best;
    if (!best_evict.evictTenant.empty())
        return best_evict;

    // Nothing worked: report the most specific reason the sweep saw.
    PlacementDecision reject;
    if (!saw_alive)
        reject.reject = PlacementReject::FleetFull;
    else if (!saw_peripherals)
        reject.reject = PlacementReject::MissingPeripheral;
    else if (saw_fit)
        reject.reject = PlacementReject::FleetFull;
    else if (saw_aa_block)
        reject.reject = PlacementReject::AntiAffinity;
    else
        reject.reject = PlacementReject::NoCapacity;
    return reject;
}

} // namespace harmonia
