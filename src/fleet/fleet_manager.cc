#include "fleet/fleet_manager.h"

#include "common/logging.h"
#include "common/strings.h"
#include "ha/blob_transfer.h"
#include "obs/flight_recorder.h"
#include "sim/clock.h"

namespace harmonia {

const char *
toString(FleetManager::TenantState state)
{
    switch (state) {
      case FleetManager::TenantState::Placed:
        return "placed";
      case FleetManager::TenantState::Degraded:
        return "degraded";
      case FleetManager::TenantState::Evicted:
        return "evicted";
    }
    return "?";
}

FleetManager::FleetManager(Engine &engine,
                           std::vector<FleetCardSpec> card_specs,
                           FleetConfig config)
    : engine_(engine), cfg_(config), placer_(config.weights),
      stats_("fleet")
{
    if (card_specs.empty())
        fatal("a fleet needs at least one card");
    const DeviceDatabase &db = DeviceDatabase::instance();
    for (std::size_t i = 0; i < card_specs.size(); ++i) {
        const FleetCardSpec &spec = card_specs[i];
        if (spec.prSlots == 0)
            fatal("card %zu: need at least one PR slot", i);
        const FpgaDevice &dev = db.byName(spec.device);
        ResourceVector total;
        for (std::size_t s = 0; s < spec.prSlots; ++s)
            total += spec.slotCapacity;
        if (!total.fitsIn(roleRegionBudget(dev)))
            fatal("card %zu: %zu slots of %s exceed %s's role region",
                  i, spec.prSlots,
                  spec.slotCapacity.toString().c_str(),
                  dev.name.c_str());

        Card card;
        card.name = format("card%zu_%s", i, dev.name.c_str());
        card.device = &dev;
        card.shell = std::make_unique<Shell>(
            engine, dev, unifiedConfigFor(dev), card.name);
        card.pr = std::make_unique<PrController>(
            card.name + "_pr", engine, *card.shell,
            std::vector<ResourceVector>(spec.prSlots,
                                        spec.slotCapacity));
        card.driver = std::make_unique<CmdDriver>(engine, *card.shell);
        card.dog = std::make_unique<Watchdog>(engine, *card.shell,
                                              cfg_.watchdog);
        card.slotCaps.assign(spec.prSlots, spec.slotCapacity);
        card.slotTenant.assign(spec.prSlots, "");
        cards_.push_back(std::move(card));
    }
}

FleetManager::~FleetManager() = default;

const std::string &
FleetManager::cardName(std::size_t i) const
{
    return cards_.at(i).name;
}

Shell &
FleetManager::cardShell(std::size_t i)
{
    return *cards_.at(i).shell;
}

PrController &
FleetManager::cardPr(std::size_t i)
{
    return *cards_.at(i).pr;
}

Watchdog &
FleetManager::cardWatchdog(std::size_t i)
{
    return *cards_.at(i).dog;
}

std::size_t
FleetManager::cardIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < cards_.size(); ++i)
        if (cards_[i].name == name)
            return i;
    fatal("unknown card '%s'", name.c_str());
}

std::size_t
FleetManager::aliveCards() const
{
    std::size_t n = 0;
    for (const Card &card : cards_)
        if (!card.dog->dead())
            ++n;
    return n;
}

std::size_t
FleetManager::freeSlots() const
{
    std::size_t n = 0;
    for (const Card &card : cards_) {
        if (card.dog->dead())
            continue;
        for (std::size_t s = 0; s < card.pr->slotCount(); ++s)
            if (card.pr->slotState(s) == PrSlotState::Empty)
                ++n;
    }
    return n;
}

void
FleetManager::attachHub(ObsHub *hub)
{
    hub_ = hub;
    if (hub_ == nullptr)
        return;
    for (Card &card : cards_) {
        const Watchdog *dog = card.dog.get();
        hub_->attachLiveness(card.name,
                             [dog] { return !dog->dead(); });
    }
}

void
FleetManager::registerRoleKind(const std::string &kind,
                               RoleRequirements reqs,
                               RoleFactory factory)
{
    if (kinds_.count(kind) != 0)
        fatal("role kind '%s' already registered", kind.c_str());
    if (!factory)
        fatal("role kind '%s' needs a factory", kind.c_str());
    kinds_.emplace(kind, std::make_pair(std::move(reqs),
                                        std::move(factory)));
}

const RoleRequirements &
FleetManager::kindRequirements(const std::string &kind) const
{
    const auto it = kinds_.find(kind);
    if (it == kinds_.end())
        fatal("unknown role kind '%s'", kind.c_str());
    return it->second.first;
}

std::vector<PlacementCardView>
FleetManager::buildViews(const std::string &exclude_card,
                         const std::string &only_card) const
{
    std::vector<PlacementCardView> views;
    for (const Card &card : cards_) {
        if (card.name == exclude_card)
            continue;
        if (!only_card.empty() && card.name != only_card)
            continue;
        PlacementCardView view;
        view.card = card.name;
        view.device = card.device;
        view.alive = !card.dog->dead();
        // Scheduler feedback: when the obs hub is attached, the
        // latency term comes from its store (the series this manager
        // lands on every placement); otherwise from the local mean.
        if (hub_ != nullptr)
            view.placementLatencyCycles = hub_->store().latest(
                format("fleet/%s/placement_latency_cycles",
                       card.name.c_str()));
        else if (card.placementsDone != 0)
            view.placementLatencyCycles =
                card.placementCyclesTotal /
                static_cast<double>(card.placementsDone);
        for (std::size_t s = 0; s < card.pr->slotCount(); ++s) {
            PlacementSlotView slot;
            slot.capacity = card.slotCaps[s];
            slot.free = card.pr->slotState(s) == PrSlotState::Empty;
            if (!slot.free) {
                slot.occupantTenant = card.slotTenant[s];
                const auto it = tenants_.find(card.slotTenant[s]);
                if (it != tenants_.end()) {
                    slot.occupantPriority = it->second.spec.priority;
                    if (!it->second.spec.antiAffinity.empty())
                        view.groups.push_back(
                            it->second.spec.antiAffinity);
                }
            }
            view.slots.push_back(std::move(slot));
        }
        views.push_back(std::move(view));
    }
    return views;
}

bool
FleetManager::placeAt(Tenant &tenant, std::size_t card_idx,
                      std::size_t slot)
{
    Card &card = cards_[card_idx];
    const Tick start = engine_.now();
    std::unique_ptr<Role> role =
        kinds_.at(tenant.spec.kind).second();
    if (role == nullptr || role->name() != tenant.spec.kind)
        fatal("factory for kind '%s' produced a mismatched role",
              tenant.spec.kind.c_str());

    if (!card.pr->load(slot, *role)) {
        stats_.counter("load_refused").inc();
        return false;
    }
    // Settle the bitstream (the controller retries PrLoadFail loads
    // internally and scrubs to Empty when it gives up).
    PrController *pr = card.pr.get();
    const bool settled = engine_.runUntilDone(
        [pr, slot] {
            return pr->slotState(slot) != PrSlotState::Reconfiguring;
        },
        cfg_.settleTimeout);
    if (!settled || card.pr->slotState(slot) != PrSlotState::Active) {
        if (card.pr->slotState(slot) != PrSlotState::Empty)
            card.pr->unload(slot);
        role->unbind();
        stats_.counter("load_failed").inc();
        return false;
    }

    // Re-seed a displaced/migrating tenant: last checkpoint blob
    // first, then the journal tail in issue order (at-least-once).
    if (!tenant.blob.empty() &&
        !pushCheckpointBlob(*card.driver,
                            static_cast<std::uint8_t>(slot),
                            tenant.blob)) {
        card.pr->unload(slot);
        role->unbind();
        stats_.counter("restore_failed").inc();
        return false;
    }
    for (JournalEntry &entry : tenant.journal) {
        const CallOutcome out = card.driver->callChecked(
            kRoleRbbIdBase, static_cast<std::uint8_t>(slot),
            entry.code, entry.data);
        if (!out.ok() || out.response.status != kCmdOk) {
            card.pr->unload(slot);
            role->unbind();
            stats_.counter("replay_failed").inc();
            return false;
        }
        entry.acked = true;
        stats_.counter("replayed_commands").inc();
    }

    tenant.role = std::move(role);
    tenant.state = TenantState::Placed;
    tenant.card = card_idx;
    tenant.slot = slot;
    card.slotTenant[slot] = tenant.spec.tenant;

    const Tick ticks = engine_.now() - start;
    const Clock *clk = card.shell->kernelClock();
    lastPlacementCycles_ =
        clk != nullptr ? clk->ticksToCycles(ticks) : 0;
    ++card.placementsDone;
    card.placementCyclesTotal +=
        static_cast<double>(lastPlacementCycles_);
    ++placements_;
    stats_.counter("placements").inc();
    stats_.counter("placement_ticks").inc(ticks);
    if (hub_ != nullptr) {
        hub_->store().ingestPoint(
            engine_.now(), "fleet/placement_latency_cycles",
            static_cast<double>(lastPlacementCycles_));
        hub_->store().ingestPoint(
            engine_.now(),
            format("fleet/%s/placement_latency_cycles",
                   card.name.c_str()),
            static_cast<double>(lastPlacementCycles_));
    }
    return true;
}

void
FleetManager::tearOut(Tenant &tenant)
{
    Card &card = cards_[tenant.card];
    if (card.pr->slotState(tenant.slot) != PrSlotState::Empty)
        card.pr->unload(tenant.slot);
    if (tenant.role != nullptr) {
        tenant.role->unbind();
        tenant.role.reset();
    }
    card.slotTenant[tenant.slot] = "";
}

PlacementDecision
FleetManager::admit(FleetRoleSpec spec)
{
    const auto kit = kinds_.find(spec.kind);
    if (kit == kinds_.end())
        fatal("admit('%s'): unknown role kind '%s'",
              spec.tenant.c_str(), spec.kind.c_str());
    spec.reqs = kit->second.first;
    const auto tit = tenants_.find(spec.tenant);
    if (tit != tenants_.end() &&
        tit->second.state == TenantState::Placed)
        fatal("tenant '%s' is already placed", spec.tenant.c_str());

    PlacementDecision decision = placer_.decide(spec, buildViews("", ""));
    if (!decision.placed) {
        stats_.counter(format("reject_%s",
                              toString(decision.reject))).inc();
        return decision;
    }
    if (!decision.evictTenant.empty()) {
        evict(decision.evictTenant);
        stats_.counter("priority_evictions").inc();
    }

    Tenant &tenant = tenants_[spec.tenant];
    tenant.spec = std::move(spec);
    tenant.blob.clear();
    tenant.journal.clear();
    if (!placeAt(tenant, cardIndex(decision.card), decision.slot)) {
        tenant.state = TenantState::Degraded;
        stats_.counter("tenants_degraded").inc();
        decision.placed = false;
        decision.reject = PlacementReject::NoCapacity;
        return decision;
    }
    return decision;
}

bool
FleetManager::evict(const std::string &tenant_name)
{
    Tenant &tenant = tenantRef(tenant_name);
    if (tenant.state != TenantState::Placed)
        return false;
    tearOut(tenant);
    tenant.state = TenantState::Evicted;
    tenant.blob.clear();
    tenant.journal.clear();
    stats_.counter("evictions").inc();
    return true;
}

PlacementDecision
FleetManager::migrate(const std::string &tenant_name,
                      const std::string &target_card)
{
    Tenant &tenant = tenantRef(tenant_name);
    PlacementDecision decision;
    if (tenant.state != TenantState::Placed) {
        stats_.counter("migrate_refused").inc();
        return decision;
    }

    const Tick drain_start = engine_.now();
    const std::string source = cards_[tenant.card].name;
    // Drain a fresh blob off the live card; when the drain fails
    // (the card died under us) the last periodic checkpoint plus the
    // journal tail still covers every acked call.
    checkpointTenant(tenant_name);
    if (tenant.blob.empty()) {
        stats_.counter("migrate_refused").inc();
        return decision;
    }

    decision = placer_.decide(tenant.spec,
                              buildViews(source, target_card));
    if (!decision.placed) {
        stats_.counter("migrate_rejected").inc();
        return decision;
    }
    if (!decision.evictTenant.empty()) {
        evict(decision.evictTenant);
        stats_.counter("priority_evictions").inc();
    }

    tearOut(tenant);
    if (!placeAt(tenant, cardIndex(decision.card), decision.slot)) {
        tenant.state = TenantState::Degraded;
        stats_.counter("tenants_degraded").inc();
        decision.placed = false;
        return decision;
    }

    const Tick downtime = engine_.now() - drain_start;
    const Clock *clk = cards_[tenant.card].shell->kernelClock();
    lastMigrationCycles_ =
        clk != nullptr ? clk->ticksToCycles(downtime) : 0;
    ++migrations_;
    stats_.counter("migrations").inc();
    stats_.counter("migration_downtime_ticks").inc(downtime);
    if (hub_ != nullptr)
        hub_->store().ingestPoint(
            engine_.now(), "fleet/migration_downtime_cycles",
            static_cast<double>(lastMigrationCycles_));
    if (FlightRecorder *fdr = FlightRecorder::active())
        fdr->noteRecovery(stats_.name(),
                          format("migrated_%s", tenant_name.c_str()),
                          engine_.now());
    return decision;
}

CallOutcome
FleetManager::call(const std::string &tenant_name, std::uint16_t code,
                   const std::vector<std::uint32_t> &data)
{
    Tenant &tenant = tenantRef(tenant_name);
    if (tenant.state != TenantState::Placed) {
        stats_.counter("calls_refused").inc();
        return CallOutcome{};
    }
    tenant.journal.push_back(JournalEntry{code, data, false});
    journalHighWater_ =
        std::max(journalHighWater_, tenant.journal.size());
    const CallOutcome out = cards_[tenant.card].driver->callChecked(
        kRoleRbbIdBase, static_cast<std::uint8_t>(tenant.slot), code,
        data);
    if (out.ok() && out.response.status == kCmdOk) {
        tenant.journal.back().acked = true;
        ++acked_;
        stats_.counter("acked_calls").inc();
    } else {
        stats_.counter("unacked_calls").inc();
    }
    return out;
}

bool
FleetManager::checkpointTenant(const std::string &tenant_name)
{
    Tenant &tenant = tenantRef(tenant_name);
    if (tenant.state != TenantState::Placed)
        return false;
    Card &card = cards_[tenant.card];
    if (card.dog->dead())
        return false;
    std::vector<std::uint32_t> blob;
    if (!fetchCheckpointBlob(*card.driver,
                             static_cast<std::uint8_t>(tenant.slot),
                             &blob)) {
        stats_.counter("checkpoint_failures").inc();
        return false;
    }
    tenant.blob = std::move(blob);
    // Everything journaled so far is inside (or definitively rejected
    // before) this cut; only later entries need replay.
    tenant.journal.clear();
    stats_.counter("checkpoints").inc();
    return true;
}

std::size_t
FleetManager::checkpointAll()
{
    std::size_t ok = 0;
    for (auto &[name, tenant] : tenants_) {
        if (tenant.state != TenantState::Placed)
            continue;
        if (cards_[tenant.card].dog->consecutiveMisses() != 0)
            continue;  // suspect card: don't burn retry ladders
        if (checkpointTenant(name))
            ++ok;
    }
    lastCheckpointAt_ = engine_.now();
    everCheckpointed_ = true;
    return ok;
}

bool
FleetManager::tryReplace(Tenant &tenant)
{
    PlacementDecision decision =
        placer_.decide(tenant.spec, buildViews("", ""));
    if (!decision.placed)
        return false;
    if (!decision.evictTenant.empty()) {
        evict(decision.evictTenant);
        stats_.counter("priority_evictions").inc();
    }
    return placeAt(tenant, cardIndex(decision.card), decision.slot);
}

void
FleetManager::handleCardDeath(std::size_t card_idx)
{
    Card &card = cards_[card_idx];
    stats_.counter("card_deaths").inc();
    if (FlightRecorder *fdr = FlightRecorder::active())
        fdr->noteRecovery(stats_.name(),
                          format("card_dead_%s", card.name.c_str()),
                          engine_.now());
    for (auto &[name, tenant] : tenants_) {
        if (tenant.state != TenantState::Placed ||
            tenant.card != card_idx)
            continue;
        // Host-side displacement: scrub the dead card's slot model
        // and re-place from the last blob + journal tail. A tenant
        // the fleet cannot re-place right now is explicitly
        // Degraded, never silently dropped.
        tearOut(tenant);
        if (tryReplace(tenant)) {
            stats_.counter("replaced_after_death").inc();
        } else {
            tenant.state = TenantState::Degraded;
            stats_.counter("tenants_degraded").inc();
        }
    }
}

void
FleetManager::handleCardRevival(std::size_t card_idx)
{
    Card &card = cards_[card_idx];
    stats_.counter("card_revivals").inc();
    // Re-admit the card like a freshly provisioned one, then give
    // degraded tenants the returned capacity.
    card.driver->initializeAll();
    for (auto &[name, tenant] : tenants_) {
        if (tenant.state != TenantState::Degraded)
            continue;
        if (tryReplace(tenant))
            stats_.counter("replaced_after_revival").inc();
    }
}

void
FleetManager::poll()
{
    for (Card &card : cards_)
        card.dog->poll();
    for (std::size_t i = 0; i < cards_.size(); ++i) {
        Card &card = cards_[i];
        if (card.dog->dead() && !card.deadHandled) {
            card.deadHandled = true;
            handleCardDeath(i);
        } else if (!card.dog->dead() && card.deadHandled) {
            card.deadHandled = false;
            handleCardRevival(i);
        }
    }
    if (!everCheckpointed_ ||
        engine_.now() >= lastCheckpointAt_ + cfg_.checkpointInterval)
        checkpointAll();
    if (hub_ != nullptr)
        hub_->store().ingestPoint(
            engine_.now(), "fleet/cards_alive",
            static_cast<double>(aliveCards()));
}

bool
FleetManager::hasTenant(const std::string &tenant) const
{
    return tenants_.count(tenant) != 0;
}

FleetManager::TenantState
FleetManager::tenantState(const std::string &tenant) const
{
    return tenantRef(tenant).state;
}

const std::string &
FleetManager::tenantCard(const std::string &tenant) const
{
    const Tenant &t = tenantRef(tenant);
    if (t.state != TenantState::Placed)
        fatal("tenant '%s' is not placed", tenant.c_str());
    return cards_[t.card].name;
}

std::size_t
FleetManager::tenantSlot(const std::string &tenant) const
{
    const Tenant &t = tenantRef(tenant);
    if (t.state != TenantState::Placed)
        fatal("tenant '%s' is not placed", tenant.c_str());
    return t.slot;
}

Role *
FleetManager::tenantRole(const std::string &tenant)
{
    return tenantRef(tenant).role.get();
}

std::size_t
FleetManager::placedCount() const
{
    std::size_t n = 0;
    for (const auto &kv : tenants_)
        if (kv.second.state == TenantState::Placed)
            ++n;
    return n;
}

std::size_t
FleetManager::degradedCount() const
{
    std::size_t n = 0;
    for (const auto &kv : tenants_)
        if (kv.second.state == TenantState::Degraded)
            ++n;
    return n;
}

std::size_t
FleetManager::journalDepth(const std::string &tenant) const
{
    return tenantRef(tenant).journal.size();
}

std::uint64_t
FleetManager::fingerprint() const
{
    std::uint64_t hash = 14695981039346656037ULL;
    const auto mixByte = [&hash](std::uint8_t b) {
        hash ^= b;
        hash *= 1099511628211ULL;
    };
    const auto mixWord = [&mixByte](std::uint32_t w) {
        for (unsigned b = 0; b < 4; ++b)
            mixByte((w >> (8 * b)) & 0xff);
    };
    const auto mixString = [&mixByte](const std::string &s) {
        for (const char c : s)
            mixByte(static_cast<std::uint8_t>(c));
        mixByte(0);
    };
    for (const auto &[name, tenant] : tenants_) {
        mixString(name);
        mixString(toString(tenant.state));
        if (tenant.state == TenantState::Placed) {
            mixString(cards_[tenant.card].name);
            mixWord(static_cast<std::uint32_t>(tenant.slot));
            if (tenant.role != nullptr)
                for (const std::uint32_t w : tenant.role->snapshot())
                    mixWord(w);
        }
    }
    for (const Card &card : cards_) {
        mixString(card.name);
        mixByte(card.dog->dead() ? 1 : 0);
        for (std::size_t s = 0; s < card.pr->slotCount(); ++s)
            mixString(toString(card.pr->slotState(s)));
    }
    return hash;
}

FleetManager::Tenant &
FleetManager::tenantRef(const std::string &name)
{
    const auto it = tenants_.find(name);
    if (it == tenants_.end())
        fatal("unknown tenant '%s'", name.c_str());
    return it->second;
}

const FleetManager::Tenant &
FleetManager::tenantRef(const std::string &name) const
{
    return const_cast<FleetManager *>(this)->tenantRef(name);
}

} // namespace harmonia
