/**
 * @file
 * The fleet scheduler drill behind `examples/fleet_scheduler_drill`,
 * `bench_fleet` and the fleet test suites (the scenario lives
 * library-side so tests can drive it too). Eight heterogeneous cards
 * (two each of Devices A-D) take a seeded churn of ~2k tenant role
 * requests — admissions across four role kinds with priorities and
 * anti-affinity groups, priority evictions, live migrations including
 * pinned cross-vendor moves onto the Intel cards, and key/value write
 * traffic through the journaled command proxy. Mid-run a DeviceDeath
 * window kills one card; its tenants are displaced and re-placed (or
 * explicitly degraded), and when the window closes the watchdog
 * revives the card and degraded tenants win their capacity back.
 *
 * The host keeps a ledger of every acknowledged table write; the final
 * verification reads every surviving tenant's table back and the
 * zero-acknowledged-command-loss verdict requires a perfect match.
 * Everything is seeded (a splitmix64-style counter mixer — no global
 * RNG) and simulated-time-paced, so the end-state fingerprint is
 * bit-identical across reruns and HARMONIA_SIM_THREADS settings.
 */

#ifndef HARMONIA_FLEET_SCHEDULER_DRILL_H_
#define HARMONIA_FLEET_SCHEDULER_DRILL_H_

#include "fault/fault_plan.h"
#include "fleet/fleet_manager.h"

namespace harmonia {

/** Drill knobs; defaults reproduce the documented 2k-request churn. */
struct SchedulerDrillConfig {
    std::uint64_t seed = 20260809;
    /** Tenant role requests to churn: one admission per request,
     *  with make-room evictions and a riding migration cadence. */
    std::size_t requests = 2000;
    /** Kill a card mid-churn and revive it later. */
    bool injectFault = true;
    /** Which card dies (index into the 8-card fleet). */
    std::size_t victimCard = 2;
    /** How long the death window stays open. */
    Tick deathSpan = 1'500'000'000;
    /** Print per-event progress lines. */
    bool verbose = false;
};

/** What one drill run measured. */
struct SchedulerDrillReport {
    std::size_t requests = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t evictions = 0;
    std::uint64_t migrations = 0;
    std::uint64_t crossVendorMigrations = 0;
    std::uint64_t placements = 0;  ///< admissions + migrations + re-places
    std::uint64_t ackedWrites = 0;
    std::uint64_t verifiedWrites = 0;
    std::uint64_t lostWrites = 0;
    std::size_t placedEnd = 0;
    std::size_t degradedEnd = 0;
    double meanPlacementCycles = 0.0;
    Cycles maxPlacementCycles = 0;
    double meanMigrationCycles = 0.0;
    Cycles maxMigrationCycles = 0;
    std::uint64_t fingerprint = 0;
    bool cardDied = false;
    bool cardRevived = false;
    bool zeroLoss = false;
};

class SchedulerDrill {
  public:
    explicit SchedulerDrill(SchedulerDrillConfig config = {});
    ~SchedulerDrill();

    SchedulerDrill(const SchedulerDrill &) = delete;
    SchedulerDrill &operator=(const SchedulerDrill &) = delete;

    const SchedulerDrillConfig &config() const { return cfg_; }

    /** Run the whole churn + settle + verification. */
    SchedulerDrillReport run();

    Engine &engine() { return engine_; }
    FleetManager &fleet() { return *fleet_; }
    ObsHub &hub() { return *hub_; }
    FaultPlan &plan() { return plan_; }

  private:
    /** Counter-based seeded mixer (splitmix64 finalizer). */
    std::uint64_t mixed(std::uint64_t counter) const;

    /** Name of a Placed tenant near @p pick, or "" when none. */
    std::string pickPlaced(std::uint64_t pick) const;

    void admitNext(std::uint64_t r, SchedulerDrillReport &report);
    void writeTraffic(const std::string &tenant,
                      std::uint64_t r, SchedulerDrillReport &report);
    void recordMigration(const PlacementDecision &d,
                         const std::string &tenant, std::size_t src,
                         SchedulerDrillReport &report);

    /** Check every acked write of @p tenant against its live table. */
    void verifyTenant(const std::string &tenant,
                      SchedulerDrillReport &report);

    SchedulerDrillConfig cfg_;
    Engine engine_;
    FaultPlan plan_;
    std::unique_ptr<ObsHub> hub_;
    std::unique_ptr<FleetManager> fleet_;
    std::vector<std::string> everAdmitted_;
    /** Host-side ledger: tenant -> key -> last acked value. */
    std::map<std::string, std::map<std::uint32_t, std::uint32_t>>
        ledger_;
    std::uint64_t nextTenantId_ = 0;
    std::uint64_t placementSamples_ = 0;
    double placementCyclesTotal_ = 0.0;
    Cycles placementCyclesMax_ = 0;
    std::uint64_t migrationSamples_ = 0;
    double migrationCyclesTotal_ = 0.0;
    Cycles migrationCyclesMax_ = 0;
};

} // namespace harmonia

#endif // HARMONIA_FLEET_SCHEDULER_DRILL_H_
