#include "fleet/tenant_role.h"

namespace harmonia {

TenantRole::TenantRole(const std::string &kind, RoleRequirements reqs)
    : Role(kind, RoleArch::LookAside, std::move(reqs))
{
}

RoleRequirements
TenantRole::lightRequirements(const std::string &kind,
                              std::uint64_t lut)
{
    RoleRequirements r;
    r.name = kind;
    r.needsHost = true;
    r.hostQueues = 4;
    r.roleLogic = {lut, lut * 2, 4, 0, 0};
    r.roleLoc = 800;
    return r;
}

std::uint32_t
TenantRole::valueOf(std::uint32_t key) const
{
    const auto it = table_.find(key);
    return it != table_.end() ? it->second : 0;
}

void
TenantRole::tick()
{
    // Pure look-aside: all work happens in executeCommand.
}

CommandResult
TenantRole::executeCommand(std::uint16_t code,
                           const std::vector<std::uint32_t> &data)
{
    if (code == kCmdTableWrite) {
        if (data.size() < 2)
            return {kCmdBadArgument, {}};
        if (!active())
            return {kCmdInternalError, {}};
        table_[data[0]] = data[1];
        ++writes_;
        stats().counter("table_writes").inc();
        return {kCmdOk, {static_cast<std::uint32_t>(table_.size())}};
    }
    if (code == kCmdTableRead) {
        if (data.empty())
            return {kCmdBadArgument, {}};
        const auto it = table_.find(data[0]);
        return {kCmdOk,
                {it != table_.end() ? 1u : 0u,
                 it != table_.end() ? it->second : 0u}};
    }
    return Role::executeCommand(code, data);
}

std::vector<std::uint32_t>
TenantRole::snapshotPayload() const
{
    std::vector<std::uint32_t> payload;
    payload.reserve(3 + table_.size() * 2);
    payload.push_back(static_cast<std::uint32_t>(table_.size()));
    for (const auto &[key, value] : table_) {
        payload.push_back(key);
        payload.push_back(value);
    }
    payload.push_back(static_cast<std::uint32_t>(writes_ >> 32));
    payload.push_back(static_cast<std::uint32_t>(writes_));
    return payload;
}

CheckpointError
TenantRole::restorePayload(const std::vector<std::uint32_t> &payload)
{
    if (payload.size() < 3)
        return CheckpointError::BadPayload;
    const std::size_t count = payload[0];
    if (payload.size() != 3 + count * 2)
        return CheckpointError::BadPayload;
    std::map<std::uint32_t, std::uint32_t> table;
    for (std::size_t i = 0; i < count; ++i)
        table[payload[1 + i * 2]] = payload[2 + i * 2];
    table_ = std::move(table);
    writes_ = (static_cast<std::uint64_t>(payload[1 + count * 2])
               << 32) |
              payload[2 + count * 2];
    return CheckpointError::Ok;
}

} // namespace harmonia
