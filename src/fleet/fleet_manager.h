/**
 * @file
 * The fleet-scale control plane (DESIGN.md §16): one FleetManager
 * owns a rack of heterogeneous simulated cards — each a unified
 * shell, a PR controller partitioning its role region, a command
 * driver and a watchdog — and schedules tenant roles onto them.
 * Placement decisions come from the stateless PlacementEngine over a
 * snapshot of live card state; role swaps ride the existing PR
 * controller under live traffic; live cross-vendor migration and
 * death displacement reuse the HA plane's checkpoint wire transfer
 * (drain → checkpoint → place → restore → cutover) with journal-tail
 * replay, so an acknowledged command is never lost: it is either
 * inside the last drained blob or replayed from the journal on the
 * new card.
 *
 * Determinism: cards are visited in creation order and tenants in
 * name order (std::map); every latency is simulated time; the only
 * randomness lives in the caller's seeded FaultPlan. The manager is
 * host-side orchestration, not a Component — its methods advance the
 * engine the way CmdDriver calls do.
 */

#ifndef HARMONIA_FLEET_FLEET_MANAGER_H_
#define HARMONIA_FLEET_FLEET_MANAGER_H_

#include <functional>
#include <map>
#include <memory>

#include "fleet/placement.h"
#include "ha/watchdog.h"  // harmonia-lint: allow(LAYER-002) fleet schedules over the HA plane
#include "obs/hub.h"      // harmonia-lint: allow(LAYER-002) hub series feed the scheduler
#include "shell/partial_reconfig.h"

namespace harmonia {

/** One card to instantiate: device type + role-region partitioning. */
struct FleetCardSpec {
    std::string device = "DeviceA";
    std::size_t prSlots = 4;
    /** Per-slot logic capacity; must sum within roleRegionBudget(). */
    ResourceVector slotCapacity = {4000, 9000, 16, 0, 8};
};

/** Fleet pacing knobs. */
struct FleetConfig {
    WatchdogConfig watchdog;
    /** Periodic all-tenant checkpoint drain cadence. Journal-tail
     *  replay covers everything acked after the last drain, so the
     *  cadence trades journal length against drain traffic, never
     *  correctness. */
    Tick checkpointInterval = 500'000'000;
    /** Bound on one PR load settling (includes PrLoadFail retries). */
    Tick settleTimeout = 2'000'000'000;
    PlacementWeights weights;
};

/** The rack-level resource manager. */
class FleetManager {
  public:
    using RoleFactory = std::function<std::unique_ptr<Role>()>;

    /** Tenant lifecycle the introspection API reports. */
    enum class TenantState {
        Placed,    ///< running in a slot
        Degraded,  ///< displaced and not re-placeable — explicit, never
                   ///< silent (re-tried when capacity returns)
        Evicted,   ///< displaced by priority or operator; state dropped
    };

    FleetManager(Engine &engine, std::vector<FleetCardSpec> cards,
                 FleetConfig config = {});
    ~FleetManager();

    FleetManager(const FleetManager &) = delete;
    FleetManager &operator=(const FleetManager &) = delete;

    // --- Fleet shape ---------------------------------------------

    std::size_t cardCount() const { return cards_.size(); }
    const std::string &cardName(std::size_t i) const;
    Shell &cardShell(std::size_t i);
    PrController &cardPr(std::size_t i);
    Watchdog &cardWatchdog(std::size_t i);
    std::size_t cardIndex(const std::string &name) const;

    /** Cards whose watchdog has not declared them dead. */
    std::size_t aliveCards() const;

    /** PR slots currently Empty across alive cards. */
    std::size_t freeSlots() const;

    /**
     * Attach the obs hub: every card gains a liveness probe wired to
     * its watchdog, and the manager lands its scheduler series
     * (fleet/placement_latency_cycles, fleet/migration_downtime_cycles,
     * fleet/cards_alive) in the hub's store — which in turn feeds the
     * next placement decision's latency term.
     */
    void attachHub(ObsHub *hub);

    // --- Role kinds ----------------------------------------------

    /** Register a role kind tenants can request. The factory must
     *  produce roles whose name equals @p kind (checkpoint twins). */
    void registerRoleKind(const std::string &kind,
                          RoleRequirements reqs, RoleFactory factory);
    const RoleRequirements &
    kindRequirements(const std::string &kind) const;

    // --- Scheduling ----------------------------------------------

    /**
     * Place a tenant role. The spec's kind must be registered; its
     * requirements are taken from the registry. A refusal is explicit
     * in the decision's reject reason. Re-admitting an Evicted or
     * Degraded tenant starts it from scratch.
     */
    PlacementDecision admit(FleetRoleSpec spec);

    /** Unload a tenant and drop its state. */
    bool evict(const std::string &tenant);

    /**
     * Live migration: drain a fresh checkpoint, tear the role out of
     * its slot, re-place it (optionally pinned to @p target_card),
     * restore the blob and replay the journal tail. On a refused
     * placement the tenant keeps running at the source — migration
     * never destroys state it cannot re-create.
     */
    PlacementDecision migrate(const std::string &tenant,
                              const std::string &target_card = "");

    /** Journaled command proxy to a placed tenant's role. */
    CallOutcome call(const std::string &tenant, std::uint16_t code,
                     const std::vector<std::uint32_t> &data = {});

    /** Drain one tenant's checkpoint blob; trims its journal. */
    bool checkpointTenant(const std::string &tenant);

    /** Drain every placed tenant on alive cards; count succeeded. */
    std::size_t checkpointAll();

    /**
     * The host orchestration step: pace every watchdog, displace and
     * re-place (or explicitly degrade) tenants of newly-dead cards,
     * re-admit revived cards and retry degraded tenants, run the
     * periodic checkpoint drain, and refresh the hub series.
     */
    void poll();

    // --- Introspection -------------------------------------------

    std::size_t tenantCount() const { return tenants_.size(); }
    bool hasTenant(const std::string &tenant) const;
    TenantState tenantState(const std::string &tenant) const;
    const std::string &tenantCard(const std::string &tenant) const;
    std::size_t tenantSlot(const std::string &tenant) const;

    /** The live role object (tests/drills); null unless Placed. */
    Role *tenantRole(const std::string &tenant);

    std::size_t placedCount() const;
    std::size_t degradedCount() const;

    /** Journal entries pending replay for one tenant. */
    std::size_t journalDepth(const std::string &tenant) const;

    /** Largest journal any tenant ever held — the soak suite's
     *  bounded-growth gate. */
    std::size_t journalHighWater() const { return journalHighWater_; }

    /** Acked journaled calls, lifetime. */
    std::uint64_t ackedCalls() const { return acked_; }

    std::uint64_t placements() const { return placements_; }
    std::uint64_t migrations() const { return migrations_; }

    /** Latency of the most recent successful placement. */
    Cycles lastPlacementCycles() const { return lastPlacementCycles_; }

    /** Blackout of the most recent migration (drain → cutover). */
    Cycles lastMigrationDowntimeCycles() const
    {
        return lastMigrationCycles_;
    }

    /**
     * FNV-1a over tenant states, slot tables and role snapshots in
     * name order — the end-state identity the chaos suite compares
     * across reruns and thread counts.
     */
    std::uint64_t fingerprint() const;

    StatGroup &stats() { return stats_; }

  private:
    struct Card {
        std::string name;
        const FpgaDevice *device = nullptr;
        std::unique_ptr<Shell> shell;
        std::unique_ptr<PrController> pr;
        std::unique_ptr<CmdDriver> driver;
        std::unique_ptr<Watchdog> dog;
        std::vector<ResourceVector> slotCaps;
        std::vector<std::string> slotTenant;  ///< "" = free
        bool deadHandled = false;
        std::uint64_t placementsDone = 0;
        double placementCyclesTotal = 0.0;
    };

    struct JournalEntry {
        std::uint16_t code = 0;
        std::vector<std::uint32_t> data;
        bool acked = false;
    };

    struct Tenant {
        FleetRoleSpec spec;
        TenantState state = TenantState::Evicted;
        std::size_t card = 0;
        std::size_t slot = 0;
        std::unique_ptr<Role> role;
        std::vector<std::uint32_t> blob;
        std::vector<JournalEntry> journal;
    };

    std::vector<PlacementCardView>
    buildViews(const std::string &exclude_card,
               const std::string &only_card) const;

    /** Load + settle + restore + replay onto (card, slot). */
    bool placeAt(Tenant &tenant, std::size_t card_idx,
                 std::size_t slot);

    /** Tear a placed tenant out of its slot (state kept). */
    void tearOut(Tenant &tenant);

    /** Decide + place a displaced tenant from blob + journal. */
    bool tryReplace(Tenant &tenant);

    void handleCardDeath(std::size_t card_idx);
    void handleCardRevival(std::size_t card_idx);

    Tenant &tenantRef(const std::string &name);
    const Tenant &tenantRef(const std::string &name) const;

    Engine &engine_;
    FleetConfig cfg_;
    PlacementEngine placer_;
    std::vector<Card> cards_;
    std::map<std::string, Tenant> tenants_;  ///< name-sorted
    std::map<std::string, std::pair<RoleRequirements, RoleFactory>>
        kinds_;
    ObsHub *hub_ = nullptr;
    Tick lastCheckpointAt_ = 0;
    bool everCheckpointed_ = false;
    std::uint64_t acked_ = 0;
    std::uint64_t placements_ = 0;
    std::uint64_t migrations_ = 0;
    Cycles lastPlacementCycles_ = 0;
    Cycles lastMigrationCycles_ = 0;
    std::size_t journalHighWater_ = 0;
    StatGroup stats_;
};

const char *toString(FleetManager::TenantState state);

} // namespace harmonia

#endif // HARMONIA_FLEET_FLEET_MANAGER_H_
