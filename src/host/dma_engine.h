/**
 * @file
 * Host-side DMA access: a thin multiplexer over the Host RBB that
 * routes completions back to per-queue owners, as the user-space DMA
 * library does over the real driver.
 */

#ifndef HARMONIA_HOST_DMA_ENGINE_H_
#define HARMONIA_HOST_DMA_ENGINE_H_

#include <deque>
#include <vector>

#include "shell/host_rbb.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/**
 * Per-queue completion routing over one Host RBB. Data-plane users
 * submit on their own queue and pop their own completions; control-
 * channel completions are kept separate for the command driver.
 */
class HostDma {
  public:
    explicit HostDma(HostRbb &host);

    HostRbb &host() { return host_; }

    /** Submit a transfer; false on inactive queue or back-pressure. */
    bool submit(DmaDir dir, std::uint16_t queue, std::uint32_t bytes,
                std::uint64_t id = 0);

    /** Drain the RBB's completion queue into per-queue bins. */
    void poll();

    bool hasCompletion(std::uint16_t queue) const;
    DmaCompletion popCompletion(std::uint16_t queue);

    bool hasControlCompletion() const { return !control_.empty(); }
    DmaCompletion popControlCompletion();

    /** Aggregate counters for throughput accounting. */
    std::uint64_t completedTransfers() const { return transfers_; }
    std::uint64_t completedBytes() const { return bytes_; }

    /** Publish completion gauges under @p prefix. */
    void
    registerTelemetry(MetricsRegistry &reg, const std::string &prefix)
    {
        telemetry_.reset(reg);
        telemetry_.addGauge(prefix + "/completed_transfers", [this] {
            return static_cast<double>(transfers_);
        });
        telemetry_.addGauge(prefix + "/completed_bytes", [this] {
            return static_cast<double>(bytes_);
        });
    }

  private:
    HostRbb &host_;
    std::vector<std::deque<DmaCompletion>> bins_;
    std::deque<DmaCompletion> control_;
    std::uint64_t transfers_ = 0;
    std::uint64_t bytes_ = 0;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_HOST_DMA_ENGINE_H_
