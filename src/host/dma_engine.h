/**
 * @file
 * Host-side DMA access: a thin multiplexer over the Host RBB that
 * routes completions back to per-queue owners, as the user-space DMA
 * library does over the real driver.
 *
 * The library layer also owns end-to-end recovery: every data-plane
 * submission is tracked until its completion arrives, and one that
 * times out is requeued. A queue that keeps losing transfers is
 * quarantined (deactivated) so a wedged consumer cannot absorb the
 * host's DMA bandwidth forever.
 */

#ifndef HARMONIA_HOST_DMA_ENGINE_H_
#define HARMONIA_HOST_DMA_ENGINE_H_

#include <deque>
#include <vector>

#include "shell/host_rbb.h"
#include "sim/trace.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/** Knobs for the DMA timeout/requeue/quarantine machinery. */
struct DmaRecoveryPolicy {
    Tick timeout = 50'000'000;       ///< per-transfer deadline (50 us)
    unsigned maxAttempts = 3;        ///< submissions before declaring loss
    unsigned quarantineStrikes = 4;  ///< lost transfers before quarantine
};

/**
 * Per-queue completion routing over one Host RBB. Data-plane users
 * submit on their own queue and pop their own completions; control-
 * channel completions are kept separate for the command driver.
 */
class HostDma {
  public:
    explicit HostDma(HostRbb &host);

    HostRbb &host() { return host_; }

    void setRecoveryPolicy(const DmaRecoveryPolicy &policy)
    {
        policy_ = policy;
    }
    const DmaRecoveryPolicy &recoveryPolicy() const { return policy_; }

    /**
     * Submit a transfer; false when the queue is quarantined or
     * inactive, or the staging FIFO pushed back (each cause has its
     * own counter). Accepted transfers are tracked until completion.
     */
    bool submit(DmaDir dir, std::uint16_t queue, std::uint32_t bytes,
                std::uint64_t id = 0);

    /**
     * Drain the RBB's completion queue into per-queue bins, then run
     * timeout detection: overdue transfers are requeued, repeatedly
     * lost ones are declared lost, and a queue that accumulates
     * losses is quarantined.
     */
    void poll();

    bool hasCompletion(std::uint16_t queue) const;
    DmaCompletion popCompletion(std::uint16_t queue);

    bool hasControlCompletion() const { return !control_.empty(); }
    DmaCompletion popControlCompletion();

    /** Transfers still awaiting their completion on @p queue. */
    std::size_t outstanding(std::uint16_t queue) const;

    bool queueQuarantined(std::uint16_t queue) const;

    /** Lift a quarantine: reactivate the queue and forgive strikes. */
    void releaseQuarantine(std::uint16_t queue);

    /** Aggregate counters for throughput accounting. */
    std::uint64_t completedTransfers() const { return transfers_; }
    std::uint64_t completedBytes() const { return bytes_; }

    /** Recovery counters: timeouts, requeues, losses, quarantines. */
    StatGroup &stats() { return stats_; }

    /** Publish completion gauges and recovery counters. */
    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

  private:
    /** One accepted submission awaiting its completion. */
    struct Pending {
        DmaDir dir;
        std::uint32_t bytes;
        std::uint64_t id;
        Tick deadline;
        unsigned attempts;
        SpanId span = 0;  ///< open trace span (submit -> completion)
    };

    void timeoutScan();
    void quarantine(std::uint16_t queue);

    HostRbb &host_;
    DmaRecoveryPolicy policy_;
    std::vector<std::deque<DmaCompletion>> bins_;
    std::vector<std::deque<Pending>> outstanding_;
    std::vector<unsigned> strikes_;
    std::vector<bool> quarantined_;
    std::deque<DmaCompletion> control_;
    std::uint64_t transfers_ = 0;
    std::uint64_t bytes_ = 0;
    StatGroup stats_;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_HOST_DMA_ENGINE_H_
