/**
 * @file
 * The command-based host driver (§3.3.3): software issues cmd_read /
 * cmd_write with a command code and data; the driver packetizes them,
 * ships them over the DMA control queue and hands back the decoded
 * response. Control logic lives in the FPGA's unified control kernel,
 * so the same host code runs unchanged on every platform.
 */

#ifndef HARMONIA_HOST_CMD_DRIVER_H_
#define HARMONIA_HOST_CMD_DRIVER_H_

#include <vector>

#include "shell/unified_shell.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/**
 * Physical transport a controller reaches the FPGA over — what the
 * command packet's Options field records (Figure 9). Applications use
 * the PCIe control queue; the BMC typically rides the slower I2C
 * sideband, which works even before PCIe enumerates.
 */
enum class CmdTransport : std::uint32_t {
    Pcie = 0,
    I2c = 1,
};

/**
 * Command driver bound to one shell. call() advances the engine until
 * the kernel answers, modelling the full round trip: control-queue
 * transfer, soft-core execution, response upload.
 */
class CmdDriver {
  public:
    CmdDriver(Engine &engine, Shell &shell,
              std::uint8_t src_id = kCtrlApplication,
              CmdTransport transport = CmdTransport::Pcie);

    CmdTransport transport() const { return transport_; }

    /**
     * The cmd_write/cmd_read interface: issue a command and wait for
     * its response. fatal() if the kernel does not answer within
     * @p timeout simulated time.
     */
    CommandPacket call(std::uint8_t rbb_id, std::uint8_t instance_id,
                       std::uint16_t code,
                       const std::vector<std::uint32_t> &data = {},
                       Tick timeout = 50'000'000);

    /** Initialize every module; returns the command count used. */
    std::size_t initializeAll();

    /** Collect all monitoring statistics; returns command count. */
    std::size_t collectAllStats();

    std::size_t commandCount() const { return commands_; }

    /** Round-trip latency of the most recent call(). */
    Tick lastLatency() const { return lastLatency_; }

    /** Distribution of every call()'s round-trip latency. */
    const Histogram &roundTrip() const { return roundTrip_; }

    /**
     * Publish the driver's round-trip histogram and command counter
     * under @p prefix (e.g. "host/cmd01").
     */
    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

  private:
    Engine &engine_;
    Shell &shell_;
    std::uint8_t srcId_;
    CmdTransport transport_;
    std::size_t commands_ = 0;
    Tick lastLatency_ = 0;
    Histogram roundTrip_;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_HOST_CMD_DRIVER_H_
