/**
 * @file
 * The command-based host driver (§3.3.3): software issues cmd_read /
 * cmd_write with a command code and data; the driver packetizes them,
 * ships them over the DMA control queue and hands back the decoded
 * response. Control logic lives in the FPGA's unified control kernel,
 * so the same host code runs unchanged on every platform.
 *
 * The transport is assumed lossy: every call is made of attempts, and
 * an attempt that times out, decodes badly or is NACKed by the kernel
 * is retried with capped exponential backoff in simulated time. The
 * driver never fatal()s on transport failure — it reports a status.
 */

#ifndef HARMONIA_HOST_CMD_DRIVER_H_
#define HARMONIA_HOST_CMD_DRIVER_H_

#include <vector>

#include "shell/unified_shell.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/**
 * Physical transport a controller reaches the FPGA over — what the
 * command packet's Options field records (Figure 9). Applications use
 * the PCIe control queue; the BMC typically rides the slower I2C
 * sideband, which works even before PCIe enumerates.
 */
enum class CmdTransport : std::uint32_t {
    Pcie = 0,
    I2c = 1,
};

/** How one call() ended, after all its attempts. */
enum class CallStatus {
    Ok,           ///< matching response with a kernel status
    Timeout,      ///< no response within the attempt deadline
    BadResponse,  ///< response bytes failed to decode
    Nack,         ///< kernel NACK (checksum error / malformed)
    BufferFull,   ///< kernel command buffer stayed full
};

const char *toString(CallStatus status);

/** Result of a checked call: transport verdict + response. */
struct CallOutcome {
    CallStatus status = CallStatus::Timeout;
    CommandPacket response;  ///< valid when ok()
    unsigned attempts = 0;   ///< attempts consumed (>= 1)

    bool ok() const { return status == CallStatus::Ok; }
};

/** Retry discipline: capped exponential backoff in simulated time. */
struct RetryPolicy {
    unsigned maxAttempts = 5;
    Tick initialBackoff = 2'000'000;  ///< 2 us before the first retry
    double multiplier = 2.0;
    Tick maxBackoff = 64'000'000;  ///< backoff cap (64 us)
};

/**
 * Command driver bound to one shell. call() advances the engine until
 * the kernel answers, modelling the full round trip: control-queue
 * transfer, soft-core execution, response upload — plus recovery when
 * any leg of that trip fails.
 */
class CmdDriver {
  public:
    CmdDriver(Engine &engine, Shell &shell,
              std::uint8_t src_id = kCtrlApplication,
              CmdTransport transport = CmdTransport::Pcie);

    CmdTransport transport() const { return transport_; }

    void setRetryPolicy(const RetryPolicy &policy) { policy_ = policy; }
    const RetryPolicy &retryPolicy() const { return policy_; }

    /**
     * The checked cmd_write/cmd_read interface: issue a command,
     * retry per the policy, and report how it went. Never fatal()s;
     * a transport that stays broken yields Timeout / Nack / ... with
     * the attempt count.
     */
    CallOutcome callChecked(std::uint8_t rbb_id,
                            std::uint8_t instance_id,
                            std::uint16_t code,
                            const std::vector<std::uint32_t> &data = {},
                            Tick timeout = 50'000'000);

    /**
     * Compatibility wrapper over callChecked(): returns the response
     * packet. When every attempt fails, the returned packet carries
     * the driver-synthesized kCmdNoResponse status instead of
     * aborting the process.
     */
    CommandPacket call(std::uint8_t rbb_id, std::uint8_t instance_id,
                       std::uint16_t code,
                       const std::vector<std::uint32_t> &data = {},
                       Tick timeout = 50'000'000);

    /** Initialize every module; returns the command count used. */
    std::size_t initializeAll();

    /** Collect all monitoring statistics; returns command count. */
    std::size_t collectAllStats();

    std::size_t commandCount() const { return commands_; }

    /** Round-trip latency of the most recent successful call(). */
    Tick lastLatency() const { return lastLatency_; }

    /** Distribution of every successful call()'s round-trip latency. */
    const Histogram &roundTrip() const { return roundTrip_; }

    /** Recovery counters: retries, timeouts, nacks, ... */
    StatGroup &stats() { return stats_; }

    /**
     * Publish the driver's round-trip histogram, command counter and
     * recovery counters under @p prefix (e.g. "host/cmd01").
     */
    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

  private:
    /** One transmission + wait; no retries. */
    CallStatus attemptOnce(const CommandPacket &pkt, Tick timeout,
                           CommandPacket *resp);

    Engine &engine_;
    Shell &shell_;
    std::uint8_t srcId_;
    CmdTransport transport_;
    RetryPolicy policy_;
    std::size_t commands_ = 0;
    Tick lastLatency_ = 0;
    Histogram roundTrip_;
    StatGroup stats_;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_HOST_CMD_DRIVER_H_
