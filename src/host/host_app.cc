#include "host/host_app.h"

#include <map>

#include "common/logging.h"

namespace harmonia {

const char *
toString(HostInterface kind)
{
    switch (kind) {
      case HostInterface::Register:
        return "register";
      case HostInterface::Command:
        return "command";
    }
    return "?";
}

HostApplication::HostApplication(Engine &engine, Shell &shell,
                                 HostInterface kind)
    : engine_(engine), shell_(shell), kind_(kind)
{
    if (kind == HostInterface::Register)
        reg_ = std::make_unique<RegDriver>(shell);
    else
        cmd_ = std::make_unique<CmdDriver>(engine, shell);
    if (shell.hasHost())
        dma_ = std::make_unique<HostDma>(shell.host());
}

std::size_t
HostApplication::initialize()
{
    return kind_ == HostInterface::Register ? reg_->initializeAll()
                                            : cmd_->initializeAll();
}

std::size_t
HostApplication::collectStats()
{
    return kind_ == HostInterface::Register ? reg_->collectAllStats()
                                            : cmd_->collectAllStats();
}

HostDma &
HostApplication::dma()
{
    if (!dma_)
        fatal("application on shell '%s' has no host RBB data plane",
              shell_.name().c_str());
    return *dma_;
}

std::size_t
HostApplication::controlOps() const
{
    return kind_ == HostInterface::Register ? reg_->opCount()
                                            : cmd_->commandCount();
}

namespace {

/** What RegDriver::initializeAll issues, computed analytically. */
std::size_t
driverRegisterInitOps(const Rbb &rbb)
{
    std::size_t n = rbb.instance().initSequence().size();
    switch (rbb.kind()) {
      case RbbKind::Network:
        n += 5;  // filter + director programming
        break;
      case RbbKind::Memory:
        n += 3;  // Ex-function programming
        break;
      case RbbKind::Host: {
        const auto &host = static_cast<const HostRbb &>(rbb);
        n += 4 * std::min(64u, host.numQueues());
        break;
      }
    }
    return n;
}

/** Key identifying an RBB across shells. */
std::pair<int, int>
rbbKey(const Rbb &rbb)
{
    return {static_cast<int>(rbb.kind()), rbb.instanceId()};
}

} // namespace

std::size_t
migrationModifications(const Shell &from, const Shell &to,
                       HostInterface kind)
{
    std::map<std::pair<int, int>, const Rbb *> old_rbbs;
    for (const Rbb *rbb : from.rbbs())
        old_rbbs[rbbKey(*rbb)] = rbb;

    if (kind == HostInterface::Register) {
        // Registers are board-specific: regenerating a shell for a new
        // board reshuffles register maps and sequences, so every
        // register operation in the init path must be rewritten or
        // re-audited on the new platform.
        std::size_t n = 0;
        for (const Rbb *rbb : to.rbbs())
            n += driverRegisterInitOps(*rbb);
        return n;
    }

    // Commands abstract control behaviour: host code is untouched for
    // modules that exist on both platforms. Modifications are the
    // command invocations for structurally new modules, plus one
    // project-configuration change.
    std::size_t n = 1;
    for (const Rbb *rbb : to.rbbs())
        if (!old_rbbs.count(rbbKey(*rbb)))
            n += rbb->commandInitCount();
    return n;
}

} // namespace harmonia
