#include "host/dma_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace harmonia {

HostDma::HostDma(HostRbb &host)
    : host_(host), bins_(host.numQueues()),
      outstanding_(host.numQueues()), strikes_(host.numQueues(), 0),
      quarantined_(host.numQueues(), false), stats_("host_dma")
{
}

bool
HostDma::submit(DmaDir dir, std::uint16_t queue, std::uint32_t bytes,
                std::uint64_t id)
{
    if (queue >= bins_.size())
        fatal("queue %u out of range (%zu)", queue, bins_.size());
    if (quarantined_[queue]) {
        stats_.counter("rejected_quarantined").inc();
        return false;
    }
    if (!host_.queueActive(queue)) {
        stats_.counter("rejected_inactive").inc();
        return false;
    }
    if (!host_.submit(dir, queue, bytes, id)) {
        stats_.counter("rejected_backpressure").inc();
        return false;
    }
    // One span per tracked transfer, submit to retirement; requeues
    // extend the same span, so its duration is the user-visible
    // completion latency, not a single attempt's.
    const SpanId span = Trace::instance().beginSpan(
        host_.now(), "host_dma",
        dir == DmaDir::H2C ? "dma:h2c" : "dma:c2h", "dma");
    const Tick deadline = host_.now() + policy_.timeout;
    outstanding_[queue].push_back(
        Pending{dir, bytes, id, deadline, 1, span});
    // The timeout scan runs from host code, invisible to the engine's
    // idle fast-forward. Post the deadline as a next-event hint so a
    // quiescent simulation still wakes on the first edge where this
    // transfer becomes overdue (deadline < now).
    if (host_.engine() != nullptr)
        host_.engine()->scheduleEvent(deadline + 1);
    return true;
}

void
HostDma::poll()
{
    while (host_.hasCompletion()) {
        DmaCompletion c = host_.popCompletion();
        if (c.request.control) {
            ++transfers_;
            bytes_ += c.request.bytes;
            control_.push_back(c);
            continue;
        }
        // Retire the matching tracked submission. A completion with
        // no match answers a transfer already requeued or declared
        // lost — delivering it too would double-complete.
        auto &open = outstanding_[c.request.queue];
        const auto it = std::find_if(
            open.begin(), open.end(),
            [&c](const Pending &p) { return p.id == c.request.id; });
        if (it == open.end()) {
            stats_.counter("duplicate_completions").inc();
            continue;
        }
        Trace::instance().endSpan(it->span, host_.now());
        open.erase(it);
        ++transfers_;
        bytes_ += c.request.bytes;
        bins_[c.request.queue].push_back(c);
    }
    timeoutScan();
}

void
HostDma::timeoutScan()
{
    const Tick t = host_.now();
    for (std::uint16_t q = 0; q < outstanding_.size(); ++q) {
        auto &open = outstanding_[q];
        // Deadlines are monotonic within a queue (same timeout for
        // every submission), so only the front can be overdue.
        while (!open.empty() && open.front().deadline < t) {
            Pending p = open.front();
            open.pop_front();
            stats_.counter("timeouts").inc();
            if (p.attempts >= policy_.maxAttempts) {
                Trace::instance().endSpan(p.span, t);
                stats_.counter("lost_transfers").inc();
                if (++strikes_[q] >= policy_.quarantineStrikes) {
                    quarantine(q);
                    break;
                }
                continue;
            }
            ++p.attempts;
            p.deadline = t + policy_.timeout;
            if (host_.engine() != nullptr)
                host_.engine()->scheduleEvent(p.deadline + 1);
            if (host_.submit(p.dir, q, p.bytes, p.id))
                stats_.counter("requeues").inc();
            else
                stats_.counter("requeue_rejected").inc();
            // Tracked either way: a rejected requeue burns one of the
            // transfer's attempts and comes due again next deadline.
            open.push_back(p);
        }
    }
}

void
HostDma::quarantine(std::uint16_t queue)
{
    quarantined_[queue] = true;
    host_.setQueueActive(queue, false);
    stats_.counter("quarantines").inc();
    // Whatever was still in flight on the poisoned queue is lost.
    stats_.counter("lost_transfers")
        .inc(outstanding_[queue].size());
    for (const Pending &p : outstanding_[queue])
        Trace::instance().endSpan(p.span, host_.now());
    outstanding_[queue].clear();
}

std::size_t
HostDma::outstanding(std::uint16_t queue) const
{
    if (queue >= outstanding_.size())
        fatal("queue %u out of range (%zu)", queue,
              outstanding_.size());
    return outstanding_[queue].size();
}

bool
HostDma::queueQuarantined(std::uint16_t queue) const
{
    if (queue >= quarantined_.size())
        fatal("queue %u out of range (%zu)", queue,
              quarantined_.size());
    return quarantined_[queue];
}

void
HostDma::releaseQuarantine(std::uint16_t queue)
{
    if (queue >= quarantined_.size())
        fatal("queue %u out of range (%zu)", queue,
              quarantined_.size());
    if (!quarantined_[queue])
        return;
    quarantined_[queue] = false;
    strikes_[queue] = 0;
    host_.setQueueActive(queue, true);
    stats_.counter("quarantine_released").inc();
}

bool
HostDma::hasCompletion(std::uint16_t queue) const
{
    if (queue >= bins_.size())
        fatal("queue %u out of range (%zu)", queue, bins_.size());
    return !bins_[queue].empty();
}

DmaCompletion
HostDma::popCompletion(std::uint16_t queue)
{
    if (!hasCompletion(queue))
        fatal("no completion pending on queue %u", queue);
    DmaCompletion c = bins_[queue].front();
    bins_[queue].pop_front();
    return c;
}

DmaCompletion
HostDma::popControlCompletion()
{
    if (control_.empty())
        fatal("no control completion pending");
    DmaCompletion c = control_.front();
    control_.pop_front();
    return c;
}

void
HostDma::registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addGroup(prefix, &stats_);
    telemetry_.addGauge(prefix + "/completed_transfers", [this] {
        return static_cast<double>(transfers_);
    });
    telemetry_.addGauge(prefix + "/completed_bytes", [this] {
        return static_cast<double>(bytes_);
    });
}

} // namespace harmonia
