#include "host/dma_engine.h"

#include "common/logging.h"

namespace harmonia {

HostDma::HostDma(HostRbb &host)
    : host_(host), bins_(host.numQueues())
{
}

bool
HostDma::submit(DmaDir dir, std::uint16_t queue, std::uint32_t bytes,
                std::uint64_t id)
{
    return host_.submit(dir, queue, bytes, id);
}

void
HostDma::poll()
{
    while (host_.hasCompletion()) {
        DmaCompletion c = host_.popCompletion();
        ++transfers_;
        bytes_ += c.request.bytes;
        if (c.request.control)
            control_.push_back(c);
        else
            bins_[c.request.queue].push_back(c);
    }
}

bool
HostDma::hasCompletion(std::uint16_t queue) const
{
    if (queue >= bins_.size())
        fatal("queue %u out of range (%zu)", queue, bins_.size());
    return !bins_[queue].empty();
}

DmaCompletion
HostDma::popCompletion(std::uint16_t queue)
{
    if (!hasCompletion(queue))
        fatal("no completion pending on queue %u", queue);
    DmaCompletion c = bins_[queue].front();
    bins_[queue].pop_front();
    return c;
}

DmaCompletion
HostDma::popControlCompletion()
{
    if (control_.empty())
        fatal("no control completion pending");
    DmaCompletion c = control_.front();
    control_.pop_front();
    return c;
}

} // namespace harmonia
