#include "host/cmd_driver.h"

#include "common/logging.h"
#include "sim/trace.h"

namespace harmonia {

namespace {
// Round trips span control-queue DMA both ways plus soft-core
// execution: 100 ns buckets out to 25.6 us (I2C overflows; its max
// still registers through the overflow bucket).
constexpr std::uint64_t kRoundTripBucketPs = 100'000;
constexpr std::size_t kRoundTripBuckets = 256;
} // namespace

CmdDriver::CmdDriver(Engine &engine, Shell &shell, std::uint8_t src_id,
                     CmdTransport transport)
    : engine_(engine), shell_(shell), srcId_(src_id),
      transport_(transport),
      roundTrip_(kRoundTripBucketPs, kRoundTripBuckets)
{
}

void
CmdDriver::registerTelemetry(MetricsRegistry &reg,
                             const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addHistogram(prefix + "/roundtrip_ps", &roundTrip_);
    telemetry_.addGauge(prefix + "/commands", [this] {
        return static_cast<double>(commands_);
    });
}

CommandPacket
CmdDriver::call(std::uint8_t rbb_id, std::uint8_t instance_id,
                std::uint16_t code,
                const std::vector<std::uint32_t> &data, Tick timeout)
{
    CommandPacket pkt;
    pkt.srcId = srcId_;
    pkt.dstId = rbb_id;
    pkt.rbbId = rbb_id;
    pkt.instanceId = instance_id;
    pkt.commandCode = code;
    pkt.options = static_cast<std::uint32_t>(transport_);
    pkt.data = data;

    const Tick started = engine_.now();
    const std::vector<std::uint8_t> bytes = pkt.encode();

    // Transfer: PCIe rides the isolated DMA control queue; the I2C
    // sideband bypasses PCIe entirely at ~400 kbit/s, so the BMC can
    // manage a card whose host link is down.
    Tick transfer_latency = 0;
    if (transport_ == CmdTransport::I2c) {
        transfer_latency = static_cast<Tick>(
            bytes.size() * 8 / 400e3 * kTicksPerSecond);
        ++commands_;
    } else if (shell_.hasHost()) {
        transfer_latency = shell_.host().dma().baseLatency();
        shell_.host().submitControl(
            static_cast<std::uint32_t>(bytes.size()), ++commands_);
    } else {
        ++commands_;
    }

    if (!shell_.kernel().submitBytes(bytes))
        fatal("control kernel buffer full (%zu bytes pending)",
              shell_.kernel().bufferSpace());

    const bool done = engine_.runUntilDone(
        [this] { return shell_.kernel().hasResponse(); }, timeout);
    if (!done)
        fatal("command 0x%04x to rbb=%02x timed out", code, rbb_id);

    CommandPacket resp = shell_.kernel().popResponse();
    // Response upload shares the control queue's latency.
    lastLatency_ =
        (engine_.now() - started) + 2 * transfer_latency;
    roundTrip_.sample(lastLatency_);
    Trace::instance().completeSpan(
        started, started + lastLatency_,
        format("cmd%02x", srcId_),
        toString(static_cast<CommandCode>(code)), "command");
    return resp;
}

std::size_t
CmdDriver::initializeAll()
{
    const std::size_t before = commands_;
    for (Rbb *rbb : shell_.rbbs()) {
        call(rbb->rbbId(), rbb->instanceId(), kCmdModuleInit);
        switch (rbb->kind()) {
          case RbbKind::Network:
          case RbbKind::Memory:
            break;  // ModuleInit covers the Ex-function defaults
          case RbbKind::Host:
            // One ranged QueueConfig activates the tenant queues.
            call(rbb->rbbId(), rbb->instanceId(), kCmdQueueConfig,
                 {0, std::min<std::uint32_t>(
                         64, static_cast<HostRbb &>(*rbb).numQueues()),
                  1});
            break;
        }
    }
    return commands_ - before;
}

std::size_t
CmdDriver::collectAllStats()
{
    const std::size_t before = commands_;
    for (Rbb *rbb : shell_.rbbs())
        call(rbb->rbbId(), rbb->instanceId(), kCmdStatsSnapshot);
    return commands_ - before;
}

} // namespace harmonia
