#include "host/cmd_driver.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/fault_plan.h"
#include "obs/flight_recorder.h"
#include "sim/trace.h"

namespace harmonia {

namespace {
// Round trips span control-queue DMA both ways plus soft-core
// execution: 100 ns buckets out to 25.6 us (I2C overflows; its max
// still registers through the overflow bucket).
constexpr std::uint64_t kRoundTripBucketPs = 100'000;
constexpr std::size_t kRoundTripBuckets = 256;
} // namespace

const char *
toString(CallStatus status)
{
    switch (status) {
      case CallStatus::Ok:
        return "ok";
      case CallStatus::Timeout:
        return "timeout";
      case CallStatus::BadResponse:
        return "bad_response";
      case CallStatus::Nack:
        return "nack";
      case CallStatus::BufferFull:
        return "buffer_full";
    }
    return "?";
}

CmdDriver::CmdDriver(Engine &engine, Shell &shell, std::uint8_t src_id,
                     CmdTransport transport)
    : engine_(engine), shell_(shell), srcId_(src_id),
      transport_(transport),
      roundTrip_(kRoundTripBucketPs, kRoundTripBuckets),
      stats_(format("cmd%02x", src_id))
{
}

void
CmdDriver::registerTelemetry(MetricsRegistry &reg,
                             const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addGroup(prefix, &stats_);
    telemetry_.addHistogram(prefix + "/roundtrip_ps", &roundTrip_);
    telemetry_.addGauge(prefix + "/commands", [this] {
        return static_cast<double>(commands_);
    });
}

CallStatus
CmdDriver::attemptOnce(const CommandPacket &pkt, Tick timeout,
                       CommandPacket *resp)
{
    const std::string target = format("cmd%02x", srcId_);
    std::vector<std::uint8_t> bytes = pkt.encode();

    // Transfer: PCIe rides the isolated DMA control queue; the I2C
    // sideband bypasses PCIe entirely at ~400 kbit/s, so the BMC can
    // manage a card whose host link is down. Every attempt pays for
    // its own transfer.
    if (transport_ == CmdTransport::I2c) {
        ++commands_;
    } else if (shell_.hasHost()) {
        shell_.host().submitControl(
            static_cast<std::uint32_t>(bytes.size()), ++commands_);
    } else {
        ++commands_;
    }

    // Card-level failure domains key on the shell's name, not the
    // driver's: every driver talking to a dead card sees it dead. A
    // dead device swallows the command outright; a wedged kernel
    // still receives and may execute it, but its ack never escapes —
    // the classic two-generals window the failover path's
    // at-least-once replay is written for.
    std::uint64_t param = 0;
    const bool device_dead = injectFault(FaultKind::DeviceDeath,
                                         shell_.name(), engine_.now());
    if (device_dead)
        stats_.counter("device_dead_drops").inc();

    // Fault hooks on the downstream leg. A dropped command never
    // reaches the kernel; a truncated or corrupted one arrives and
    // exercises the kernel's decode error handling.
    if (device_dead) {
        // Fall through to the deadline wait so death looks like any
        // other timeout to the retry machinery.
    } else if (injectFault(FaultKind::CmdDrop, target, engine_.now())) {
        stats_.counter("commands_dropped").inc();
    } else {
        if (injectFault(FaultKind::CmdTruncate, target, engine_.now(),
                        &param)) {
            const std::size_t keep =
                param != 0 ? std::min<std::size_t>(param, bytes.size())
                           : bytes.size() / 2;
            bytes.resize(std::max<std::size_t>(keep, 1));
            stats_.counter("commands_truncated").inc();
        }
        if (injectFault(FaultKind::CmdCorrupt, target, engine_.now(),
                        &param)) {
            bytes[param % bytes.size()] ^= 0x10;
            stats_.counter("commands_corrupted").inc();
        }
        if (!shell_.kernel().submitBytes(bytes)) {
            stats_.counter("buffer_full").inc();
            return CallStatus::BufferFull;
        }
    }

    const Tick deadline = engine_.now() + timeout;
    while (true) {
        if (!shell_.kernel().hasResponse()) {
            if (engine_.now() >= deadline ||
                !engine_.runUntilDone(
                    [this] { return shell_.kernel().hasResponse(); },
                    deadline - engine_.now())) {
                stats_.counter("timeouts").inc();
                return CallStatus::Timeout;
            }
        }

        std::vector<std::uint8_t> rbytes =
            shell_.kernel().popResponseBytes();
        // A dead card or wedged kernel blackholes the upstream leg:
        // whatever the kernel produced never reaches the host.
        if (injectFault(FaultKind::DeviceDeath, shell_.name(),
                        engine_.now()) ||
            injectFault(FaultKind::KernelWedge, shell_.name(),
                        engine_.now())) {
            stats_.counter("responses_blackholed").inc();
            continue;
        }
        // Fault hooks on the upstream leg.
        if (injectFault(FaultKind::RespDrop, target, engine_.now())) {
            stats_.counter("responses_dropped").inc();
            continue;  // keep waiting; likely times out and retries
        }
        if (injectFault(FaultKind::RespCorrupt, target, engine_.now(),
                        &param) &&
            !rbytes.empty()) {
            rbytes[param % rbytes.size()] ^= 0x10;
            stats_.counter("responses_corrupted").inc();
        }

        const DecodeOutcome outcome = decodeCommand(rbytes);
        if (!outcome.ok()) {
            stats_.counter("bad_responses").inc();
            return CallStatus::BadResponse;
        }
        const CommandPacket &r = *outcome.packet;
        // Kernel NACKs carry no echo of the request header, so they
        // must be recognized before the match check below.
        if (r.status == kCmdChecksumError ||
            r.status == kCmdMalformed) {
            stats_.counter("nacks").inc();
            *resp = r;
            return CallStatus::Nack;
        }
        if (r.commandCode != pkt.commandCode ||
            r.rbbId != pkt.rbbId) {
            // Answer to some earlier, timed-out attempt: discard.
            stats_.counter("stale_responses").inc();
            continue;
        }
        *resp = r;
        return CallStatus::Ok;
    }
}

CallOutcome
CmdDriver::callChecked(std::uint8_t rbb_id, std::uint8_t instance_id,
                       std::uint16_t code,
                       const std::vector<std::uint32_t> &data,
                       Tick timeout)
{
    CommandPacket pkt;
    pkt.srcId = srcId_;
    pkt.dstId = rbb_id;
    pkt.rbbId = rbb_id;
    pkt.instanceId = instance_id;
    pkt.commandCode = code;
    pkt.options = static_cast<std::uint32_t>(transport_);
    pkt.data = data;

    const Tick started = engine_.now();
    Tick transfer_latency = 0;
    if (transport_ == CmdTransport::I2c) {
        transfer_latency = static_cast<Tick>(
            pkt.encodedSize() * 8 / 400e3 * kTicksPerSecond);
    } else if (shell_.hasHost()) {
        transfer_latency = shell_.host().dma().baseLatency();
    }

    // Root of this call's span tree. The correlation context rides the
    // wire as a 16-bit tag in the Options high half so the kernel can
    // parent its decode span under this call. When tracing is off the
    // root id is 0 and the packet bytes are bit-identical to before.
    // An armed ambient correlation (a fleet sweep, a failover replay)
    // makes this call part of a larger request tree; otherwise the
    // call roots a tree of its own.
    Trace &tracer = Trace::instance();
    const std::uint64_t corr =
        !tracer.enabled()             ? 0
        : tracer.context().corr != 0 ? tracer.context().corr
                                      : tracer.newCorrelation();
    const SpanId root = tracer.beginSpan(
        started, format("cmd%02x", srcId_),
        format("call:%s", toString(static_cast<CommandCode>(code))),
        "command", TraceContext{tracer.context().parent, corr});
    TraceContext ctx;
    std::uint16_t tag = 0;
    if (root != 0) {
        ctx = TraceContext{root, corr};
        tag = tracer.armTag(ctx);
        pkt.options |= static_cast<std::uint32_t>(tag) << 16;
    }

    CallOutcome out;
    Tick backoff = policy_.initialBackoff;
    for (unsigned attempt = 1; attempt <= policy_.maxAttempts;
         ++attempt) {
        out.attempts = attempt;
        out.status = attemptOnce(pkt, timeout, &out.response);
        if (out.ok()) {
            // Response upload shares the control queue's latency.
            lastLatency_ =
                (engine_.now() - started) + 2 * transfer_latency;
            roundTrip_.sample(lastLatency_);
            if (root != 0) {
                const Tick root_end = started + lastLatency_;
                // The transfer legs are added to the latency after the
                // kernel window ends, so modelling them as one tail
                // span keeps the root's children disjoint and the
                // per-hop self times summing to lastLatency_.
                if (transfer_latency != 0)
                    tracer.completeSpan(root_end - 2 * transfer_latency,
                                        root_end,
                                        format("cmd%02x", srcId_),
                                        "transfer", "wire", ctx);
                tracer.endSpan(root, root_end);
                tracer.disarmTag(tag);
            }
            if (FlightRecorder *fdr = FlightRecorder::active())
                fdr->noteCommand(engine_.now(),
                                 format("cmd%02x", srcId_), code,
                                 toString(out.status), true,
                                 out.attempts, corr);
            return out;
        }
        if (attempt == policy_.maxAttempts)
            break;
        stats_.counter("retries").inc();
        engine_.runFor(backoff);
        backoff = std::min(
            policy_.maxBackoff,
            static_cast<Tick>(static_cast<double>(backoff) *
                              policy_.multiplier));
    }
    stats_.counter("exhausted").inc();
    if (root != 0) {
        tracer.endSpan(root, engine_.now());
        tracer.disarmTag(tag);
    }
    if (FlightRecorder *fdr = FlightRecorder::active())
        fdr->noteCommand(engine_.now(), format("cmd%02x", srcId_),
                         code, toString(out.status), false,
                         out.attempts, corr);
    return out;
}

CommandPacket
CmdDriver::call(std::uint8_t rbb_id, std::uint8_t instance_id,
                std::uint16_t code,
                const std::vector<std::uint32_t> &data, Tick timeout)
{
    const CallOutcome out =
        callChecked(rbb_id, instance_id, code, data, timeout);
    if (out.ok())
        return out.response;
    // Synthesize the failure as a response so legacy callers keep
    // working: transport failures degrade to a status, never abort.
    CommandPacket failed;
    failed.srcId = 0;
    failed.dstId = srcId_;
    failed.rbbId = rbb_id;
    failed.instanceId = instance_id;
    failed.commandCode = code;
    failed.status = kCmdNoResponse;
    return failed;
}

std::size_t
CmdDriver::initializeAll()
{
    const std::size_t before = commands_;
    for (Rbb *rbb : shell_.rbbs()) {
        call(rbb->rbbId(), rbb->instanceId(), kCmdModuleInit);
        switch (rbb->kind()) {
          case RbbKind::Network:
          case RbbKind::Memory:
            break;  // ModuleInit covers the Ex-function defaults
          case RbbKind::Host:
            // One ranged QueueConfig activates the tenant queues.
            call(rbb->rbbId(), rbb->instanceId(), kCmdQueueConfig,
                 {0, std::min<std::uint32_t>(
                         64, static_cast<HostRbb &>(*rbb).numQueues()),
                  1});
            break;
        }
    }
    return commands_ - before;
}

std::size_t
CmdDriver::collectAllStats()
{
    const std::size_t before = commands_;
    for (Rbb *rbb : shell_.rbbs())
        call(rbb->rbbId(), rbb->instanceId(), kCmdStatsSnapshot);
    return commands_ - before;
}

} // namespace harmonia
