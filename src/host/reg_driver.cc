#include "host/reg_driver.h"

#include "common/logging.h"

namespace harmonia {

RegDriver::RegDriver(Shell &shell) : shell_(shell)
{
}

std::uint32_t
RegDriver::read(const std::string &module, const std::string &reg)
{
    const std::uint32_t v =
        shell_.regs().read(shell_.regs().addrOf(module, reg));
    log_.push_back({RegDriverOp::Kind::Read, module, reg, v});
    return v;
}

void
RegDriver::write(const std::string &module, const std::string &reg,
                 std::uint32_t value)
{
    shell_.regs().write(shell_.regs().addrOf(module, reg), value);
    log_.push_back({RegDriverOp::Kind::Write, module, reg, value});
}

void
RegDriver::pollBit(const std::string &module, const std::string &reg,
                   std::uint32_t mask)
{
    // The model's status bits settle synchronously; a real driver
    // spins here. Either way it is one op the software must get right.
    const std::uint32_t v =
        shell_.regs().read(shell_.regs().addrOf(module, reg));
    if ((v & mask) == 0)
        warn("pollBit: %s.%s bit 0x%x not set (would spin)",
             module.c_str(), reg.c_str(), mask);
    log_.push_back({RegDriverOp::Kind::Poll, module, reg, mask});
}

std::size_t
RegDriver::initializeAll()
{
    const std::size_t before = log_.size();

    for (Rbb *rbb : shell_.rbbs()) {
        // Walk the vendor instance's own recipe — order matters and
        // differs per platform (Figure 3d).
        const std::string window = rbb->name() + ".inst";
        for (const RegOp &op : rbb->instance().initSequence()) {
            switch (op.kind) {
              case RegOp::Kind::Write:
                write(window, op.regName, op.value);
                break;
              case RegOp::Kind::Read:
                read(window, op.regName);
                break;
              case RegOp::Kind::WaitBit:
                pollBit(window, op.regName, op.value);
                break;
            }
        }

        // Ex-function programming through the RBB control window.
        switch (rbb->kind()) {
          case RbbKind::Network:
            write(rbb->name(), "FILTER_ENABLE", 1);
            write(rbb->name(), "LOCAL_MAC_LO", 0x33445566);
            write(rbb->name(), "LOCAL_MAC_HI", 0x1122);
            write(rbb->name(), "DIRECTOR_MODE", 0);
            write(rbb->name(), "DIRECTOR_QUEUES", 16);
            break;
          case RbbKind::Memory:
            write(rbb->name(), "INTERLEAVE_EN", 1);
            write(rbb->name(), "HOTCACHE_EN", 1);
            write(rbb->name(), "STRIPE_BYTES", 256);
            break;
          case RbbKind::Host: {
            // Queue contexts: select + control per queue.
            auto &host = static_cast<HostRbb &>(*rbb);
            const unsigned queues =
                std::min(64u, host.numQueues());
            for (unsigned q = 0; q < queues; ++q) {
                write(rbb->name(), "QUEUE_SEL", q);
                write(rbb->name(), "QUEUE_RING_LO",
                      0x10000000 + q * 0x1000);
                write(rbb->name(), "QUEUE_RING_HI", 0);
                write(rbb->name(), "QUEUE_CTRL", 1);
            }
            break;
          }
        }
    }
    return log_.size() - before;
}

std::size_t
RegDriver::collectAllStats()
{
    const std::size_t before = log_.size();
    for (Rbb *rbb : shell_.rbbs()) {
        for (const RegisterDesc &d : rbb->ctrlRegs().descriptors())
            if (d.readOnly)
                read(rbb->name(), d.name);
        for (const RegisterDesc &d :
             rbb->instance().regs().descriptors())
            if (d.readOnly)
                read(rbb->name() + ".inst", d.name);
    }
    return log_.size() - before;
}

} // namespace harmonia
