/**
 * @file
 * Host application facade: the user-facing software API over either
 * control interface, plus the migration-cost accounting behind Fig 13
 * (register modifications vs command modifications when moving an
 * application between devices).
 */

#ifndef HARMONIA_HOST_HOST_APP_H_
#define HARMONIA_HOST_HOST_APP_H_

#include <map>
#include <memory>
#include <string>

#include "host/cmd_driver.h"
#include "host/dma_engine.h"
#include "host/reg_driver.h"

namespace harmonia {

/** Which control plane the application was written against. */
enum class HostInterface {
    Register,  ///< raw register read/write (commercial baseline)
    Command,   ///< Harmonia's command-based interface
};

const char *toString(HostInterface kind);

/**
 * One host application bound to a shell. Initialization and
 * statistics go through the selected interface; the data plane goes
 * through HostDma when the shell has a host RBB.
 */
class HostApplication {
  public:
    HostApplication(Engine &engine, Shell &shell, HostInterface kind);

    HostInterface interface() const { return kind_; }
    Shell &shell() { return shell_; }

    /** Bring every hardware module up; returns operations used. */
    std::size_t initialize();

    /** Snapshot all statistics; returns operations used. */
    std::size_t collectStats();

    /** Data-plane access (requires a host RBB). */
    HostDma &dma();

    /** Operations issued so far on the control plane. */
    std::size_t controlOps() const;

  private:
    Engine &engine_;
    Shell &shell_;
    HostInterface kind_;
    std::unique_ptr<RegDriver> reg_;
    std::unique_ptr<CmdDriver> cmd_;
    std::unique_ptr<HostDma> dma_;
};

/**
 * Software modifications needed to migrate an application's control
 * code from @p from to @p to (Fig 13). Register path: every
 * init-sequence op that differs between the two platforms' modules,
 * plus all per-entity programming that must be re-audited. Command
 * path: commands are platform-independent, so only module-set changes
 * surface.
 */
std::size_t migrationModifications(const Shell &from, const Shell &to,
                                   HostInterface kind);

} // namespace harmonia

#endif // HARMONIA_HOST_HOST_APP_H_
