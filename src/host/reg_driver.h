/**
 * @file
 * The traditional register-interface host driver: the baseline the
 * command-based interface is measured against (Figs 3d, 13, Tab 4).
 * Every control operation is an explicit register read/write against a
 * module window, and initialization follows each module's own recipe —
 * including its operational dependencies (wait loops, ordering).
 */

#ifndef HARMONIA_HOST_REG_DRIVER_H_
#define HARMONIA_HOST_REG_DRIVER_H_

#include <string>
#include <vector>

#include "shell/unified_shell.h"

namespace harmonia {

/** One entry in the driver's operation log. */
struct RegDriverOp {
    enum class Kind { Read, Write, Poll };
    Kind kind;
    std::string module;
    std::string reg;
    std::uint32_t value = 0;
};

/**
 * Register-level driver bound to one shell. Counts every operation it
 * performs, because each one is a line of platform-specific host code
 * the user owns.
 */
class RegDriver {
  public:
    explicit RegDriver(Shell &shell);

    std::uint32_t read(const std::string &module,
                       const std::string &reg);
    void write(const std::string &module, const std::string &reg,
               std::uint32_t value);

    /** Poll @p reg until (value & mask) != 0; models a wait loop. */
    void pollBit(const std::string &module, const std::string &reg,
                 std::uint32_t mask);

    /**
     * Initialize every module by walking its register recipe plus the
     * Ex-function programming the shell needs (filter, director,
     * queue contexts). Returns the operation count.
     */
    std::size_t initializeAll();

    /** Read every monitoring statistic; returns the read count. */
    std::size_t collectAllStats();

    std::size_t opCount() const { return log_.size(); }
    const std::vector<RegDriverOp> &log() const { return log_; }
    void clearLog() { log_.clear(); }

  private:
    Shell &shell_;
    std::vector<RegDriverOp> log_;
};

} // namespace harmonia

#endif // HARMONIA_HOST_REG_DRIVER_H_
