/**
 * @file
 * The lightweight streaming interface wrapper as a timed component.
 * Fully pipelined sequential translation logic: every packet crossing
 * the wrapper gains a small fixed number of clock cycles of latency
 * and nothing else — no bubbles, so native throughput is preserved
 * (the property Figure 10 measures).
 */

#ifndef HARMONIA_WRAPPER_STREAM_WRAPPER_H_
#define HARMONIA_WRAPPER_STREAM_WRAPPER_H_

#include <algorithm>
#include <deque>

#include "common/packet.h"
#include "common/stats.h"
#include "device/resource.h"
#include "rtl/pipeline.h"
#include "sim/component.h"
#include "sim/trace.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/**
 * Bidirectional stream wrapper between a vendor IP (ingress source /
 * egress sink) and role logic. Both directions are independent
 * pipelines of kPipelineDepth stages at the wrapper's clock.
 */
class StreamWrapper : public Component {
  public:
    /** Fixed translation-pipeline depth in cycles (§3.2: "a few"). */
    static constexpr unsigned kPipelineDepth = 3;

    explicit StreamWrapper(std::string name);

    /** IP-to-role direction. */
    void ingressPush(const PacketDesc &pkt);
    bool ingressAvailable() const;
    PacketDesc ingressPop();

    /** Role-to-IP direction. */
    void egressPush(const PacketDesc &pkt);
    bool egressAvailable() const;
    PacketDesc egressPop();

    void tick() override {}

    /** The pipelines are time-stamped, not shifted: tick is a no-op. */
    bool idle() const override { return true; }

    /** A head packet maturing flips available() — an observable change
     *  fast-forward must land on even when no owning RBB relays the
     *  hint (e.g. a bare wrapper under test). */
    Tick wakeTime() const override { return nextReadyAt(); }

    /** Both directions empty (for the owning RBB's idle report). */
    bool quiescent() const { return ingress_.empty() && egress_.empty(); }

    /** Earliest time either direction's head packet matures (for the
     *  owning RBB's wake hint); kTickMax when drained. */
    Tick nextReadyAt() const
    {
        return std::min(ingress_.frontReadyAt(), egress_.frontReadyAt());
    }

    /** Added latency at the component's clock. */
    Tick addedLatency() const;

    /** Wrapper soft-logic footprint (Fig 16: well under 0.37%). */
    const ResourceVector &resources() const { return resources_; }

    /** Footprint one instance will occupy, for static planning. */
    static ResourceVector plannedResources();

    StatGroup &stats() { return stats_; }

    /** Per-packet residence time through each direction, in ps. */
    const Histogram &ingressLatency() const { return ingressLat_; }
    const Histogram &egressLatency() const { return egressLat_; }

    /** Export counters and latency histograms under @p prefix. */
    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

  private:
    /** Push-side bookkeeping for the packet currently in flight. */
    struct InFlight {
        Tick pushed = 0;
        SpanId span = 0;
    };

    DelayLine<PacketDesc> ingress_;
    DelayLine<PacketDesc> egress_;
    std::deque<InFlight> ingressFlight_;
    std::deque<InFlight> egressFlight_;
    Histogram ingressLat_;
    Histogram egressLat_;
    ResourceVector resources_;
    StatGroup stats_;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_WRAPPER_STREAM_WRAPPER_H_
