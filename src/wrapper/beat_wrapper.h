/**
 * @file
 * Beat-granular interface wrappers: the cycle-accurate view of the
 * lightweight wrapper's translation pipeline. Where StreamWrapper
 * moves packet descriptors (the fast timing model), these components
 * move real beats through a fixed-depth pipeline, performing the
 * actual AXI/Avalon <-> uniform field translation each cycle — one
 * beat in, one beat out, no bubbles.
 */

#ifndef HARMONIA_WRAPPER_BEAT_WRAPPER_H_
#define HARMONIA_WRAPPER_BEAT_WRAPPER_H_

#include <functional>

#include "protocol/avalon_st.h"
#include "protocol/axi_stream.h"
#include "rtl/fifo.h"
#include "rtl/pipeline.h"
#include "sim/component.h"
#include "wrapper/uniform.h"

namespace harmonia {

/**
 * A clocked translation pipeline from @p In beats to @p Out beats:
 * input FIFO -> N-stage pipeline (the converter runs at entry) ->
 * output FIFO. Fully pipelined: sustains one beat per cycle.
 */
template <typename In, typename Out>
class BeatPipeline : public Component {
  public:
    using Convert = std::function<Out(const In &)>;

    BeatPipeline(std::string name, Convert convert, unsigned depth = 3)
        : Component(std::move(name)), convert_(std::move(convert)),
          pipe_(depth)
    {
    }

    bool canPush() const { return in_.canPush(); }
    void push(const In &beat) { in_.push(beat); }

    bool canPop() const { return out_.canPop(); }
    Out pop() { return out_.pop(); }

    unsigned depth() const { return pipe_.depth(); }

    void
    tick() override
    {
        if (!out_.canPush())
            return;  // back-pressure stalls the whole pipe
        std::optional<Out> staged;
        if (in_.canPop())
            staged = convert_(in_.pop());
        if (auto done = pipe_.shift(std::move(staged)))
            out_.push(std::move(*done));
    }

  private:
    Convert convert_;
    Fifo<In> in_{64};
    PipelineReg<Out> pipe_;
    Fifo<Out> out_{64};
};

/** AXIS -> uniform ingress (tracks packet-start state across beats). */
class AxisIngressWrapper
    : public BeatPipeline<AxisBeat, UniformStreamBeat> {
  public:
    explicit AxisIngressWrapper(std::string name);

  private:
    bool first_ = true;
};

/** Avalon-ST -> uniform ingress (sop/eop carry the framing). */
class AvalonIngressWrapper
    : public BeatPipeline<AvalonStBeat, UniformStreamBeat> {
  public:
    explicit AvalonIngressWrapper(std::string name);
};

/** Uniform -> AXIS egress at a fixed bus width. */
class AxisEgressWrapper
    : public BeatPipeline<UniformStreamBeat, AxisBeat> {
  public:
    AxisEgressWrapper(std::string name, std::size_t width_bytes);
};

/** Uniform -> Avalon-ST egress at a fixed bus width. */
class AvalonEgressWrapper
    : public BeatPipeline<UniformStreamBeat, AvalonStBeat> {
  public:
    AvalonEgressWrapper(std::string name, std::size_t width_bytes);
};

} // namespace harmonia

#endif // HARMONIA_WRAPPER_BEAT_WRAPPER_H_
