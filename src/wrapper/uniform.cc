#include "wrapper/uniform.h"

#include "common/bits.h"
#include "common/logging.h"

namespace harmonia {

unsigned
ClockArray::add(const std::string &name, double mhz)
{
    if (mhz <= 0)
        fatal("clock '%s': frequency must be positive", name.c_str());
    names_.push_back(name);
    mhz_.push_back(mhz);
    return static_cast<unsigned>(mhz_.size() - 1);
}

double
ClockArray::mhzAt(unsigned index) const
{
    if (index >= mhz_.size())
        fatal("clock index %u out of range (%zu)", index, mhz_.size());
    return mhz_[index];
}

const std::string &
ClockArray::nameAt(unsigned index) const
{
    if (index >= names_.size())
        fatal("clock index %u out of range (%zu)", index, names_.size());
    return names_[index];
}

unsigned
ResetArray::add(const std::string &name)
{
    names_.push_back(name);
    asserted_.push_back(false);
    return static_cast<unsigned>(asserted_.size() - 1);
}

void
ResetArray::assertReset(unsigned index)
{
    if (index >= asserted_.size())
        fatal("reset index %u out of range", index);
    asserted_[index] = true;
}

void
ResetArray::deassertReset(unsigned index)
{
    if (index >= asserted_.size())
        fatal("reset index %u out of range", index);
    asserted_[index] = false;
}

bool
ResetArray::isAsserted(unsigned index) const
{
    if (index >= asserted_.size())
        fatal("reset index %u out of range", index);
    return asserted_[index];
}

const std::string &
ResetArray::nameAt(unsigned index) const
{
    if (index >= names_.size())
        fatal("reset index %u out of range", index);
    return names_[index];
}

void
IrqLine::raise()
{
    const bool was = level_;
    level_ = true;
    if (!was) {
        ++edges_;
        for (const Listener &fn : listeners_)
            fn();
    }
}

UniformStreamBeat
uniformFromAxis(const AxisBeat &beat, bool is_first)
{
    const std::size_t valid = axisValidBytes(beat);
    if (beat.tkeep != mask(static_cast<unsigned>(valid)))
        fatal("uniformFromAxis: non-contiguous tkeep");
    UniformStreamBeat out;
    out.data.assign(beat.tdata.begin(),
                    beat.tdata.begin() + static_cast<long>(valid));
    out.first = is_first;
    out.last = beat.tlast;
    return out;
}

AxisBeat
uniformToAxis(const UniformStreamBeat &beat, std::size_t width_bytes)
{
    if (beat.data.size() > width_bytes)
        fatal("uniformToAxis: beat carries %zu bytes > width %zu",
              beat.data.size(), width_bytes);
    AxisBeat out;
    out.tdata = beat.data;
    out.tdata.resize(width_bytes, 0);
    out.tkeep = mask(static_cast<unsigned>(beat.data.size()));
    out.tlast = beat.last;
    return out;
}

UniformStreamBeat
uniformFromAvalonSt(const AvalonStBeat &beat)
{
    UniformStreamBeat out;
    const std::size_t valid = avalonStValidBytes(beat);
    out.data.assign(beat.data.begin(),
                    beat.data.begin() + static_cast<long>(valid));
    out.first = beat.sop;
    out.last = beat.eop;
    return out;
}

AvalonStBeat
uniformToAvalonSt(const UniformStreamBeat &beat,
                  std::size_t width_bytes)
{
    if (beat.data.size() > width_bytes)
        fatal("uniformToAvalonSt: beat carries %zu bytes > width %zu",
              beat.data.size(), width_bytes);
    AvalonStBeat out;
    out.data = beat.data;
    out.data.resize(width_bytes, 0);
    out.sop = beat.first;
    out.eop = beat.last;
    out.empty = beat.last ? static_cast<std::uint8_t>(
                                width_bytes - beat.data.size())
                          : 0;
    if (!beat.last && beat.data.size() != width_bytes)
        fatal("uniformToAvalonSt: partial non-final beat");
    return out;
}

std::vector<UniformStreamBeat>
packetToUniform(const std::vector<std::uint8_t> &payload,
                std::size_t width_bytes)
{
    if (width_bytes == 0)
        fatal("uniform beat width must be non-zero");
    if (payload.empty())
        fatal("uniform packets must carry at least one byte");
    std::vector<UniformStreamBeat> beats;
    beats.reserve(ceilDiv(payload.size(), width_bytes));
    for (std::size_t off = 0; off < payload.size();
         off += width_bytes) {
        const std::size_t n =
            std::min(width_bytes, payload.size() - off);
        UniformStreamBeat b;
        b.data.assign(payload.begin() + static_cast<long>(off),
                      payload.begin() + static_cast<long>(off + n));
        b.first = off == 0;
        b.last = off + n == payload.size();
        beats.push_back(std::move(b));
    }
    return beats;
}

std::vector<std::uint8_t>
uniformToPacket(const std::vector<UniformStreamBeat> &beats)
{
    if (beats.empty())
        fatal("uniformToPacket: empty beat vector");
    std::vector<std::uint8_t> payload;
    for (std::size_t i = 0; i < beats.size(); ++i) {
        const UniformStreamBeat &b = beats[i];
        const bool is_first = i == 0;
        const bool is_final = i + 1 == beats.size();
        if (b.first != is_first)
            fatal("uniform beat %zu: first=%d but position says %d", i,
                  b.first ? 1 : 0, is_first ? 1 : 0);
        if (b.last != is_final)
            fatal("uniform beat %zu: last=%d but position says %d", i,
                  b.last ? 1 : 0, is_final ? 1 : 0);
        payload.insert(payload.end(), b.data.begin(), b.data.end());
    }
    return payload;
}

} // namespace harmonia
