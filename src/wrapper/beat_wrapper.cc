#include "wrapper/beat_wrapper.h"

namespace harmonia {

AxisIngressWrapper::AxisIngressWrapper(std::string name)
    : BeatPipeline(std::move(name),
                   [this](const AxisBeat &beat) {
                       const UniformStreamBeat out =
                           uniformFromAxis(beat, first_);
                       first_ = beat.tlast;  // next beat starts a pkt
                       return out;
                   })
{
}

AvalonIngressWrapper::AvalonIngressWrapper(std::string name)
    : BeatPipeline(std::move(name), [](const AvalonStBeat &beat) {
          return uniformFromAvalonSt(beat);
      })
{
}

AxisEgressWrapper::AxisEgressWrapper(std::string name,
                                     std::size_t width_bytes)
    : BeatPipeline(std::move(name),
                   [width_bytes](const UniformStreamBeat &beat) {
                       return uniformToAxis(beat, width_bytes);
                   })
{
}

AvalonEgressWrapper::AvalonEgressWrapper(std::string name,
                                         std::size_t width_bytes)
    : BeatPipeline(std::move(name),
                   [width_bytes](const UniformStreamBeat &beat) {
                       return uniformToAvalonSt(beat, width_bytes);
                   })
{
}

} // namespace harmonia
