/**
 * @file
 * Harmonia's uniform interface format (§3.2). Along with clock and
 * reset arrays, five basic types cover cloud applications: stream
 * (continuous data with explicit start/end), mem map (address + size
 * chunks), reg (32-bit control), and irq (raw latency-critical
 * signals). Conversion functions re-express vendor beats in the
 * uniform format bit-exactly.
 */

#ifndef HARMONIA_WRAPPER_UNIFORM_H_
#define HARMONIA_WRAPPER_UNIFORM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "protocol/avalon_st.h"
#include "protocol/axi_stream.h"

namespace harmonia {

/** One uniform stream beat: payload plus explicit start/end markers. */
struct UniformStreamBeat {
    std::vector<std::uint8_t> data;  ///< valid bytes only (no padding)
    bool first = false;              ///< start of stream/packet
    bool last = false;               ///< end of stream/packet
};

/** One uniform memory-mapped command: address and size of the chunk. */
struct UniformMemCommand {
    Addr addr = 0;
    std::uint32_t size = 0;  ///< bytes
    bool write = false;
};

/**
 * Indexed clock array: modules select signals by index according to
 * their performance needs. Index 0 is conventionally the shell clock.
 */
class ClockArray {
  public:
    /** Register a clock; returns its index. */
    unsigned add(const std::string &name, double mhz);

    double mhzAt(unsigned index) const;
    const std::string &nameAt(unsigned index) const;
    unsigned size() const { return static_cast<unsigned>(mhz_.size()); }

  private:
    std::vector<std::string> names_;
    std::vector<double> mhz_;
};

/** Indexed reset array (hard/soft resets as entries). */
class ResetArray {
  public:
    unsigned add(const std::string &name);
    void assertReset(unsigned index);
    void deassertReset(unsigned index);
    bool isAsserted(unsigned index) const;
    const std::string &nameAt(unsigned index) const;
    unsigned size() const
    {
        return static_cast<unsigned>(asserted_.size());
    }

  private:
    std::vector<std::string> names_;
    std::vector<bool> asserted_;
};

/**
 * A raw interrupt line exposed to upper-level logic without register
 * indirection — the special `irq` type for latency-intensive signals.
 */
class IrqLine {
  public:
    using Listener = std::function<void()>;

    explicit IrqLine(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    bool level() const { return level_; }

    /** Raise the line; fires listeners on the rising edge. */
    void raise();
    void clear() { level_ = false; }
    void subscribe(Listener fn) { listeners_.push_back(std::move(fn)); }
    std::uint64_t edgeCount() const { return edges_; }

  private:
    std::string name_;
    bool level_ = false;
    std::uint64_t edges_ = 0;
    std::vector<Listener> listeners_;
};

/** AXI4-Stream beat -> uniform (caller tracks packet starts). */
UniformStreamBeat uniformFromAxis(const AxisBeat &beat, bool is_first);

/** Uniform -> AXI4-Stream beat of @p width_bytes. */
AxisBeat uniformToAxis(const UniformStreamBeat &beat,
                       std::size_t width_bytes);

/** Avalon-ST beat -> uniform. */
UniformStreamBeat uniformFromAvalonSt(const AvalonStBeat &beat);

/** Uniform -> Avalon-ST beat of @p width_bytes. */
AvalonStBeat uniformToAvalonSt(const UniformStreamBeat &beat,
                               std::size_t width_bytes);

/** Segment a packet into uniform beats of at most @p width_bytes. */
std::vector<UniformStreamBeat>
packetToUniform(const std::vector<std::uint8_t> &payload,
                std::size_t width_bytes);

/** Reassemble a packet from uniform beats (validates framing). */
std::vector<std::uint8_t>
uniformToPacket(const std::vector<UniformStreamBeat> &beats);

} // namespace harmonia

#endif // HARMONIA_WRAPPER_UNIFORM_H_
