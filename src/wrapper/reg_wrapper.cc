#include "wrapper/reg_wrapper.h"

#include "common/logging.h"

namespace harmonia {

Addr
RegInterconnect::attach(const std::string &module_name,
                        RegisterFile &regs)
{
    if (byName_.count(module_name))
        fatal("module '%s' already attached to the reg interconnect",
              module_name.c_str());
    const Addr base = windows_.size() * kWindowSize;
    windows_.push_back({module_name, base, &regs});
    byName_[module_name] = windows_.size() - 1;
    return base;
}

const RegInterconnect::Window &
RegInterconnect::windowFor(Addr uniform_addr) const
{
    const std::size_t idx =
        static_cast<std::size_t>(uniform_addr / kWindowSize);
    if (idx >= windows_.size())
        fatal("uniform register address 0x%llx outside all windows",
              static_cast<unsigned long long>(uniform_addr));
    return windows_[idx];
}

std::uint32_t
RegInterconnect::read(Addr uniform_addr) const
{
    const Window &w = windowFor(uniform_addr);
    return w.regs->read(uniform_addr - w.base);
}

void
RegInterconnect::write(Addr uniform_addr, std::uint32_t value)
{
    const Window &w = windowFor(uniform_addr);
    w.regs->write(uniform_addr - w.base, value);
}

Addr
RegInterconnect::baseOf(const std::string &module_name) const
{
    auto it = byName_.find(module_name);
    if (it == byName_.end())
        fatal("module '%s' not attached", module_name.c_str());
    return windows_[it->second].base;
}

Addr
RegInterconnect::addrOf(const std::string &module_name,
                        const std::string &reg_name) const
{
    auto it = byName_.find(module_name);
    if (it == byName_.end())
        fatal("module '%s' not attached", module_name.c_str());
    const Window &w = windows_[it->second];
    return w.base + w.regs->addrOf(reg_name);
}

std::size_t
RegInterconnect::totalRegisters() const
{
    std::size_t n = 0;
    for (const Window &w : windows_)
        n += w.regs->count();
    return n;
}

IrqLine &
IrqHub::line(const std::string &name)
{
    auto it = lines_.find(name);
    if (it == lines_.end())
        it = lines_.emplace(name, IrqLine(name)).first;
    return it->second;
}

bool
IrqHub::contains(const std::string &name) const
{
    return lines_.count(name) != 0;
}

std::vector<std::string>
IrqHub::names() const
{
    std::vector<std::string> out;
    out.reserve(lines_.size());
    for (const auto &[name, line] : lines_)
        out.push_back(name);
    return out;
}

} // namespace harmonia
