/**
 * @file
 * The uniform reg control plane: Harmonia "registers diverse control
 * signals and assigns unique addresses to access them through the
 * register read/write approach" (§3.2). A RegInterconnect windows
 * every module's register file into one flat 32-bit address space;
 * raw latency-critical signals bypass it as irq lines.
 */

#ifndef HARMONIA_WRAPPER_REG_WRAPPER_H_
#define HARMONIA_WRAPPER_REG_WRAPPER_H_

#include <map>
#include <string>
#include <vector>

#include "ip/ip_block.h"
#include "wrapper/uniform.h"

namespace harmonia {

/**
 * Routes uniform register addresses to module register files. Windows
 * are fixed-size and allocated in registration order, so addresses are
 * stable for a given shell composition.
 */
class RegInterconnect {
  public:
    /** Bytes reserved per module window. */
    static constexpr Addr kWindowSize = 0x1000;

    /** Attach a module's registers; returns the window base address. */
    Addr attach(const std::string &module_name, RegisterFile &regs);

    std::uint32_t read(Addr uniform_addr) const;
    void write(Addr uniform_addr, std::uint32_t value);

    /** Window base of a module; fatal() when unknown. */
    Addr baseOf(const std::string &module_name) const;

    /** Uniform address of a named register within a module. */
    Addr addrOf(const std::string &module_name,
                const std::string &reg_name) const;

    std::size_t moduleCount() const { return windows_.size(); }

    /** Total registers reachable through the interconnect. */
    std::size_t totalRegisters() const;

  private:
    struct Window {
        std::string name;
        Addr base;
        RegisterFile *regs;
    };
    const Window &windowFor(Addr uniform_addr) const;

    std::vector<Window> windows_;
    std::map<std::string, std::size_t> byName_;
};

/** Registry of raw irq lines exposed beside the reg plane. */
class IrqHub {
  public:
    /** Create (or fetch) a line by name. */
    IrqLine &line(const std::string &name);

    bool contains(const std::string &name) const;
    std::size_t count() const { return lines_.size(); }

    /** Names of all lines, sorted. */
    std::vector<std::string> names() const;

  private:
    std::map<std::string, IrqLine> lines_;
};

} // namespace harmonia

#endif // HARMONIA_WRAPPER_REG_WRAPPER_H_
