#include "wrapper/stream_wrapper.h"

#include "common/logging.h"
#include "fault/fault_plan.h"
#include "sim/clock.h"

namespace harmonia {

namespace {
// Latency buckets: 1 ns per bucket, 64 buckets. Wrapper transit is a
// few cycles, so this resolves any plausible wrapper clock; slower
// paths land in the overflow bucket and still count toward max().
constexpr std::uint64_t kLatBucketPs = 1000;
constexpr std::size_t kLatBuckets = 64;
} // namespace

StreamWrapper::StreamWrapper(std::string name)
    : Component(std::move(name)), ingressLat_(kLatBucketPs, kLatBuckets),
      egressLat_(kLatBucketPs, kLatBuckets), stats_(this->name())
{
    // Translation pipeline + sideband FIFO soft logic.
    resources_ = plannedResources();
}

ResourceVector
StreamWrapper::plannedResources()
{
    return ResourceVector{1750, 2400, 4, 0, 0};
}

void
StreamWrapper::registerTelemetry(MetricsRegistry &reg,
                                 const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addGroup(prefix, &stats_);
    telemetry_.addHistogram(prefix + "/ingress_latency_ps",
                            &ingressLat_);
    telemetry_.addHistogram(prefix + "/egress_latency_ps", &egressLat_);
}

Tick
StreamWrapper::addedLatency() const
{
    if (clock() == nullptr)
        panic("StreamWrapper '%s' used before engine registration",
              name().c_str());
    return kPipelineDepth * clock()->period();
}

void
StreamWrapper::ingressPush(const PacketDesc &pkt)
{
    // Fault hooks: a dropped packet must not enter the delay line or
    // the flight-record deque (they are matched 1:1 on pop).
    if (injectFault(FaultKind::StreamBeatDrop, name(), now())) {
        stats_.counter("fault_drops").inc();
        return;
    }
    PacketDesc p = pkt;
    if (injectFault(FaultKind::StreamBitFlip, name(), now())) {
        p.fcsError = true;
        stats_.counter("fault_corruptions").inc();
    }
    ingress_.push(p, now() + addedLatency());
    ingressFlight_.push_back(
        {now(), Trace::instance().beginSpan(now(), name(), "ingress",
                                            "wrapper")});
    stats_.counter("ingress_packets").inc();
    stats_.counter("ingress_bytes").inc(p.bytes);
}

bool
StreamWrapper::ingressAvailable() const
{
    return ingress_.ready(now());
}

PacketDesc
StreamWrapper::ingressPop()
{
    PacketDesc pkt = ingress_.pop(now());
    // The DelayLine preserves FIFO order, so the oldest in-flight
    // record is the packet that just emerged.
    const InFlight f = ingressFlight_.front();
    ingressFlight_.pop_front();
    ingressLat_.sample(now() - f.pushed);
    Trace::instance().endSpan(f.span, now());
    return pkt;
}

void
StreamWrapper::egressPush(const PacketDesc &pkt)
{
    if (injectFault(FaultKind::StreamBeatDrop, name(), now())) {
        stats_.counter("fault_drops").inc();
        return;
    }
    PacketDesc p = pkt;
    if (injectFault(FaultKind::StreamBitFlip, name(), now())) {
        p.fcsError = true;
        stats_.counter("fault_corruptions").inc();
    }
    egress_.push(p, now() + addedLatency());
    egressFlight_.push_back(
        {now(), Trace::instance().beginSpan(now(), name(), "egress",
                                            "wrapper")});
    stats_.counter("egress_packets").inc();
    stats_.counter("egress_bytes").inc(p.bytes);
}

bool
StreamWrapper::egressAvailable() const
{
    return egress_.ready(now());
}

PacketDesc
StreamWrapper::egressPop()
{
    PacketDesc pkt = egress_.pop(now());
    const InFlight f = egressFlight_.front();
    egressFlight_.pop_front();
    egressLat_.sample(now() - f.pushed);
    Trace::instance().endSpan(f.span, now());
    return pkt;
}

} // namespace harmonia
