#include "wrapper/stream_wrapper.h"

#include "common/logging.h"
#include "sim/clock.h"

namespace harmonia {

StreamWrapper::StreamWrapper(std::string name)
    : Component(std::move(name)), stats_(this->name())
{
    // Translation pipeline + sideband FIFO soft logic.
    resources_ = ResourceVector{1750, 2400, 4, 0, 0};
}

Tick
StreamWrapper::addedLatency() const
{
    if (clock() == nullptr)
        panic("StreamWrapper '%s' used before engine registration",
              name().c_str());
    return kPipelineDepth * clock()->period();
}

void
StreamWrapper::ingressPush(const PacketDesc &pkt)
{
    ingress_.push(pkt, now() + addedLatency());
    stats_.counter("ingress_packets").inc();
    stats_.counter("ingress_bytes").inc(pkt.bytes);
}

bool
StreamWrapper::ingressAvailable() const
{
    return ingress_.ready(now());
}

PacketDesc
StreamWrapper::ingressPop()
{
    return ingress_.pop(now());
}

void
StreamWrapper::egressPush(const PacketDesc &pkt)
{
    egress_.push(pkt, now() + addedLatency());
    stats_.counter("egress_packets").inc();
    stats_.counter("egress_bytes").inc(pkt.bytes);
}

bool
StreamWrapper::egressAvailable() const
{
    return egress_.ready(now());
}

PacketDesc
StreamWrapper::egressPop()
{
    return egress_.pop(now());
}

} // namespace harmonia
