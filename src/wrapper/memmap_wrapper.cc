#include "wrapper/memmap_wrapper.h"

#include "common/logging.h"
#include "sim/clock.h"
#include "sim/trace.h"

namespace harmonia {

namespace {
// Memory accesses span controller queueing + DRAM + wrapper transit:
// 20 ns buckets out to ~2.5 us, overflow beyond.
constexpr std::uint64_t kLatBucketPs = 20'000;
constexpr std::size_t kLatBuckets = 128;
} // namespace

MemMapWrapper::MemMapWrapper(std::string name, MemoryIp &memory)
    : Component(std::move(name)), memory_(memory),
      accessLat_(kLatBucketPs, kLatBuckets), stats_(this->name())
{
    // Command/response reorder + burst alignment soft logic.
    resources_ = plannedResources();
}

ResourceVector
MemMapWrapper::plannedResources()
{
    return ResourceVector{2100, 2900, 4, 0, 0};
}

void
MemMapWrapper::registerTelemetry(MetricsRegistry &reg,
                                 const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addGroup(prefix, &stats_);
    telemetry_.addHistogram(prefix + "/access_latency_ps", &accessLat_);
}

Tick
MemMapWrapper::addedLatency() const
{
    if (clock() == nullptr)
        panic("MemMapWrapper '%s' used before engine registration",
              name().c_str());
    return kPipelineDepth * clock()->period();
}

bool
MemMapWrapper::post(unsigned channel, const UniformMemCommand &cmd,
                    std::uint64_t id)
{
    MemRequest req;
    req.write = cmd.write;
    req.addr = cmd.addr;
    req.bytes = cmd.size;
    req.issued = now();
    req.id = id;
    if (!memory_.post(channel, req))
        return false;
    stats_.counter(cmd.write ? "writes" : "reads").inc();
    stats_.counter("bytes").inc(cmd.size);
    return true;
}

void
MemMapWrapper::tick()
{
    // Completions leave the controller, then traverse the wrapper's
    // return pipeline: one ingress + one egress crossing in total.
    while (memory_.hasCompletion()) {
        MemCompletion c = memory_.popCompletion();
        c.completed += 2 * addedLatency();
        accessLat_.sample(c.latency());
        Trace::instance().completeSpan(c.request.issued, c.completed,
                                       name(),
                                       c.request.write ? "mem_write"
                                                       : "mem_read",
                                       "wrapper");
        out_.push_back(c);
    }
}

bool
MemMapWrapper::hasCompletion() const
{
    return !out_.empty() && out_.front().completed <= now();
}

MemCompletion
MemMapWrapper::popCompletion()
{
    if (!hasCompletion())
        fatal("MemMapWrapper '%s': popCompletion with none ready",
              name().c_str());
    MemCompletion c = out_.front();
    out_.pop_front();
    return c;
}

std::vector<AxiMmCommand>
MemMapWrapper::toAxiBursts(const UniformMemCommand &cmd) const
{
    return axiBurstsFor(cmd.addr, cmd.size,
                        memory_.dataWidthBits() / 8, cmd.write);
}

std::vector<AvalonMmCommand>
MemMapWrapper::toAvalonBursts(const UniformMemCommand &cmd) const
{
    return avalonBurstsFor(cmd.addr, cmd.size,
                           memory_.dataWidthBits() / 8, cmd.write);
}

} // namespace harmonia
