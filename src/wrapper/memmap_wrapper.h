/**
 * @file
 * Memory-mapped interface wrapper: presents the uniform mem map
 * interface (address + size) over a vendor memory controller, issuing
 * the vendor's native burst encoding (AXI arlen/arsize vs Avalon
 * burstcount) underneath and adding only its fixed pipeline latency.
 */

#ifndef HARMONIA_WRAPPER_MEMMAP_WRAPPER_H_
#define HARMONIA_WRAPPER_MEMMAP_WRAPPER_H_

#include <deque>

#include "common/stats.h"
#include "ip/memory_ip.h"
#include "protocol/avalon_mm.h"
#include "protocol/axi_mm.h"
#include "sim/component.h"
#include "telemetry/metrics_registry.h"
#include "wrapper/uniform.h"

namespace harmonia {

/**
 * Wraps one MemoryIp. Requests enter in uniform form; completions
 * surface through the wrapper with kPipelineDepth extra cycles each
 * way. The wrapper also exposes the exact vendor burst commands it
 * would drive, so tests can assert translation correctness.
 */
class MemMapWrapper : public Component {
  public:
    static constexpr unsigned kPipelineDepth = 3;

    MemMapWrapper(std::string name, MemoryIp &memory);

    MemoryIp &memory() { return memory_; }

    /**
     * Issue a uniform command on @p channel.
     * @return false when the controller queue back-pressures.
     */
    bool post(unsigned channel, const UniformMemCommand &cmd,
              std::uint64_t id = 0);

    bool hasCompletion() const;
    MemCompletion popCompletion();

    void tick() override;

    /** Nothing to drain from the controller: tick is a no-op. The
     *  controller's own wake hint covers the completion schedule. */
    bool idle() const override { return !memory_.hasCompletion(); }

    Tick addedLatency() const;

    /**
     * The native burst commands the wrapper drives for a uniform
     * command on this vendor's controller (pure translation).
     */
    std::vector<AxiMmCommand>
    toAxiBursts(const UniformMemCommand &cmd) const;
    std::vector<AvalonMmCommand>
    toAvalonBursts(const UniformMemCommand &cmd) const;

    const ResourceVector &resources() const { return resources_; }

    /** Footprint one instance will occupy, for static planning. */
    static ResourceVector plannedResources();
    StatGroup &stats() { return stats_; }

    /** Issue-to-completion latency through controller + wrapper. */
    const Histogram &accessLatency() const { return accessLat_; }

    /** Export counters and the access-latency histogram. */
    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

  private:
    MemoryIp &memory_;
    std::deque<MemCompletion> out_;
    Histogram accessLat_;
    ResourceVector resources_;
    StatGroup stats_;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_WRAPPER_MEMMAP_WRAPPER_H_
