/**
 * @file
 * Clock domains for the tick-based simulation kernel. FPGA shells are
 * inherently multi-clock (the paper's RBBs run at S MHz while roles run
 * at R MHz); every component belongs to exactly one Clock.
 */

#ifndef HARMONIA_SIM_CLOCK_H_
#define HARMONIA_SIM_CLOCK_H_

#include <string>

#include "common/types.h"

namespace harmonia {

/**
 * A clock domain: a name, a period, and a running cycle count. The
 * Engine advances clocks; components read their cycle count to convert
 * between cycles and wall (simulated) time.
 */
class Clock {
  public:
    /**
     * @param name Human-readable domain name, e.g. "rbb_clk".
     * @param mhz  Frequency in MHz; must be positive.
     */
    Clock(std::string name, double mhz);

    const std::string &name() const { return name_; }
    double mhz() const { return mhz_; }
    Tick period() const { return period_; }

    /** Rising edges seen so far. */
    Cycles cycle() const { return cycle_; }

    /** Time of the next rising edge strictly after @p now. */
    Tick nextEdge(Tick now) const;

    /** Convert a cycle count in this domain to simulated time. */
    Tick cyclesToTicks(Cycles c) const { return c * period_; }

    /** Cycles elapsed in @p t time (floor). */
    Cycles ticksToCycles(Tick t) const { return t / period_; }

  private:
    friend class Engine;
    void advance() { ++cycle_; }

    /**
     * Batch-advance to @p now: the cycle count always equals the number
     * of edges at or before the current time (edges sit at multiples of
     * the period), so a fast-forwarding engine can land a clock at any
     * instant without walking the intermediate edges.
     */
    void syncTo(Tick now) { cycle_ = now / period_; }

    std::string name_;
    double mhz_;
    Tick period_;
    Cycles cycle_ = 0;
};

} // namespace harmonia

#endif // HARMONIA_SIM_CLOCK_H_
