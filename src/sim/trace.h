/**
 * @file
 * Simulation tracing: bounded rings of time-stamped instant events and
 * structured spans that components append to when tracing is enabled.
 * Spans measure end-to-end latencies (command round trips, packet
 * lifetimes through wrappers and CDC FIFOs); the telemetry exporter
 * renders both as Chrome trace_event JSON. Off by default and free
 * when off.
 *
 * Spans are causal: each carries an optional parent span and a 64-bit
 * correlation id, so one host command unfolds into a span *tree*
 * (driver call -> wire -> kernel decode -> RBB execute). Context
 * propagates two ways: in-process via an ambient TraceContext that
 * begin/completeSpan stamp onto new spans, and across the simulated
 * wire via a 16-bit tag the command driver packs into the packet's
 * Options word (armTag / taggedContext).
 */

#ifndef HARMONIA_SIM_TRACE_H_
#define HARMONIA_SIM_TRACE_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace harmonia {

class Component;

/** Identifier of an in-flight or completed span. 0 means "no span". */
using SpanId = std::uint64_t;

/**
 * Causal context a span is born under: the enclosing span and the
 * correlation id of the whole request tree. A default-constructed
 * context is "unarmed" and stamps nothing.
 */
struct TraceContext {
    SpanId parent = 0;
    std::uint64_t corr = 0;

    bool armed() const { return parent != 0 || corr != 0; }
};

/**
 * Fixed-capacity ring with O(1) eviction of the oldest element. The
 * trace's hot path must not allocate per record once warm, so storage
 * is a vector reused in place.
 */
template <typename T>
class BoundedRing {
  public:
    explicit BoundedRing(std::size_t capacity) : capacity_(capacity) {}

    void
    push(T item)
    {
        if (storage_.size() < capacity_) {
            storage_.push_back(std::move(item));
            return;
        }
        storage_[head_] = std::move(item);
        head_ = (head_ + 1) % capacity_;
    }

    std::size_t size() const { return storage_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Element @p i counted from the oldest retained entry. */
    const T &
    at(std::size_t i) const
    {
        return storage_[(head_ + i) % storage_.size()];
    }

    /** Materialize oldest-to-newest (exporters, tests). */
    std::vector<T>
    snapshot() const
    {
        std::vector<T> out;
        out.reserve(storage_.size());
        for (std::size_t i = 0; i < storage_.size(); ++i)
            out.push_back(at(i));
        return out;
    }

    void
    clear()
    {
        storage_.clear();
        head_ = 0;
    }

    void
    setCapacity(std::size_t capacity)
    {
        // Preserve the newest entries that still fit.
        std::vector<T> keep = snapshot();
        if (keep.size() > capacity)
            keep.erase(keep.begin(),
                       keep.begin() +
                           static_cast<long>(keep.size() - capacity));
        capacity_ = capacity;
        storage_ = std::move(keep);
        head_ = 0;
    }

  private:
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::vector<T> storage_;
};

/** Process-wide trace: instant events plus begin/end spans. */
class Trace {
  public:
    /** One instant event. */
    struct Entry {
        Tick tick = 0;
        std::string who;
        std::string what;
    };

    /** One completed (or still-open) span. */
    struct Span {
        SpanId id = 0;
        SpanId parent = 0;         ///< enclosing span, 0 = root
        std::uint64_t corr = 0;    ///< request-tree correlation id
        Tick begin = 0;
        Tick end = 0;
        std::string who;   ///< track the span renders on (component)
        std::string what;  ///< span name
        std::string cat;   ///< category (wrapper, fifo, cmd, ...)
    };

    /** Default ring depth; raise via setCapacity / HARMONIA_TRACE_CAP. */
    static constexpr std::size_t kCapacity = 4096;

    /** Default open-span table bound (leak guard). */
    static constexpr std::size_t kMaxOpenSpans = 4096;

    static Trace &instance();

    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Append an instant event (oldest entries evicted in O(1)). */
    void record(Tick tick, std::string who, std::string what);

    /**
     * Open a span. Returns 0 when tracing is disabled or the open-span
     * table is full; endSpan(0) is a no-op, so callers need no guard.
     * The span is stamped with the ambient context (see setContext).
     */
    SpanId beginSpan(Tick begin, std::string who, std::string what,
                     std::string cat = "span");

    /** Open a span under an explicit context instead of the ambient. */
    SpanId beginSpan(Tick begin, std::string who, std::string what,
                     std::string cat, const TraceContext &ctx);

    /**
     * Close a span and return its duration in ticks. Unknown or zero
     * ids return 0 and are counted, never corrupting recorded spans.
     */
    Tick endSpan(SpanId id, Tick end);

    /** Record an already-measured interval as one completed span. */
    void completeSpan(Tick begin, Tick end, std::string who,
                      std::string what, std::string cat = "span");

    /** Same, under an explicit context instead of the ambient. */
    void completeSpan(Tick begin, Tick end, std::string who,
                      std::string what, std::string cat,
                      const TraceContext &ctx);

    // --- Causal context -------------------------------------------

    /** Allocate a fresh correlation id (never 0). */
    std::uint64_t newCorrelation() { return nextCorr_++; }

    /**
     * Set the ambient context new spans are stamped with. The context
     * really is a thread-local (components tick on worker threads when
     * the engine runs domains in parallel); prefer ScopedTraceContext
     * so nesting restores correctly.
     */
    void setContext(const TraceContext &ctx) { current_ = ctx; }
    const TraceContext &context() const { return current_; }
    void clearContext() { current_ = TraceContext{}; }

    /**
     * Register @p ctx for wire propagation and return the 16-bit tag
     * that names it (the command driver packs the tag into the command
     * packet's Options high half). Returns 0 — meaning "don't write a
     * tag" — when tracing is disabled or the tag space is exhausted.
     */
    std::uint16_t armTag(const TraceContext &ctx);

    /** Context registered under @p tag; unarmed when 0 or unknown. */
    TraceContext taggedContext(std::uint16_t tag) const;

    /** Release a tag (idempotent). */
    void disarmTag(std::uint16_t tag);

    std::size_t armedTagCount() const { return tags_.size(); }

    // --- Introspection --------------------------------------------

    std::vector<Entry> entries() const { return entries_.snapshot(); }
    std::size_t size() const { return entries_.size(); }

    std::vector<Span> spans() const { return spans_.snapshot(); }
    std::size_t spanCount() const { return spans_.size(); }
    std::size_t openSpanCount() const { return open_.size(); }

    /**
     * Begin tick of a still-open span; 0 when unknown. Children use
     * it to clamp their own window inside the parent's, keeping the
     * self-time telescoping identity exact.
     */
    Tick openSpanBegin(SpanId id) const;

    /** endSpan() calls that matched no open span. */
    std::uint64_t unmatchedEnds() const { return unmatchedEnds_; }

    /** beginSpan() calls dropped because the open table was full. */
    std::uint64_t droppedOpens() const { return droppedOpens_; }

    void clear();

    /**
     * Resize both rings (long runs need deeper history). Capacity 0 is
     * clamped to 1; the newest retained entries survive.
     */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const { return entries_.capacity(); }

    /** Bound on concurrently open spans (clamped to >= 1). */
    void setMaxOpenSpans(std::size_t n);
    std::size_t maxOpenSpans() const { return maxOpen_; }

    /**
     * Apply the HARMONIA_TRACE_CAP environment override (ring depth
     * and open-span bound) — a full chaos drill outgrows the default
     * 4096. instance() applies it once at first use; exposed so tests
     * and long-running tools can re-read the environment.
     */
    void applyEnvCapacity();

    /** Render the last @p last_n instant entries, one per line. */
    std::string dump(std::size_t last_n = kCapacity) const;

  private:
    Trace() = default;

    bool enabled_ = false;
    SpanId nextSpanId_ = 1;
    std::uint64_t nextCorr_ = 1;
    std::uint16_t nextTag_ = 1;
    std::uint64_t unmatchedEnds_ = 0;
    std::uint64_t droppedOpens_ = 0;
    std::size_t maxOpen_ = kMaxOpenSpans;
    static thread_local TraceContext current_;
    BoundedRing<Entry> entries_{kCapacity};
    BoundedRing<Span> spans_{kCapacity};
    std::map<SpanId, Span> open_;
    std::map<std::uint16_t, TraceContext> tags_;
};

/**
 * RAII ambient-context scope: sets the trace's current context on
 * construction and restores the previous one on destruction, so
 * nested scopes (kernel dispatch inside a driver call) compose.
 */
class ScopedTraceContext {
  public:
    explicit ScopedTraceContext(const TraceContext &ctx)
        : saved_(Trace::instance().context())
    {
        Trace::instance().setContext(ctx);
    }

    ~ScopedTraceContext() { Trace::instance().setContext(saved_); }

    ScopedTraceContext(const ScopedTraceContext &) = delete;
    ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

  private:
    TraceContext saved_;
};

/**
 * Record an event on behalf of a component. Returns before touching
 * the varargs when tracing is disabled, so un-guarded call sites cost
 * only the test-and-branch; callers may still format eagerly behind
 * enabled() for expensive arguments.
 */
void trace(const Component &component, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace harmonia

#endif // HARMONIA_SIM_TRACE_H_
