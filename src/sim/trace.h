/**
 * @file
 * Lightweight simulation tracing: a bounded ring of time-stamped
 * events that components append to when tracing is enabled. Debugging
 * aid for multi-clock testbenches — off by default and free when off.
 */

#ifndef HARMONIA_SIM_TRACE_H_
#define HARMONIA_SIM_TRACE_H_

#include <deque>
#include <string>

#include "common/types.h"

namespace harmonia {

class Component;

/** Process-wide trace ring. */
class Trace {
  public:
    /** One recorded event. */
    struct Entry {
        Tick tick = 0;
        std::string who;
        std::string what;
    };

    static constexpr std::size_t kCapacity = 4096;

    static Trace &instance();

    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Append an event (oldest entries fall off past kCapacity). */
    void record(Tick tick, std::string who, std::string what);

    const std::deque<Entry> &entries() const { return entries_; }
    std::size_t size() const { return entries_.size(); }
    void clear() { entries_.clear(); }

    /** Render the last @p last_n entries, one per line. */
    std::string dump(std::size_t last_n = kCapacity) const;

  private:
    Trace() = default;

    bool enabled_ = false;
    std::deque<Entry> entries_;
};

/**
 * Record an event on behalf of a component (no-op when tracing is
 * disabled — callers may format eagerly only behind enabled()).
 */
void trace(const Component &component, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace harmonia

#endif // HARMONIA_SIM_TRACE_H_
