/**
 * @file
 * The simulation engine: owns clock domains, registers components, and
 * advances simulated time edge by edge.
 */

#ifndef HARMONIA_SIM_ENGINE_H_
#define HARMONIA_SIM_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/clock.h"
#include "sim/component.h"

namespace harmonia {

/**
 * Tick-based multi-clock simulation engine.
 *
 * Clocks are owned by the engine; components are not (they usually live
 * inside a testbench or platform object). Each step advances time to
 * the earliest pending clock edge and ticks that domain's components in
 * registration order.
 */
class Engine {
  public:
    Engine() = default;

    /** Create a clock domain owned by this engine. */
    Clock *addClock(const std::string &name, double mhz);

    /**
     * Register @p c on domain @p clk. A component may be registered
     * exactly once; @p clk must belong to this engine.
     */
    void add(Component *c, Clock *clk);

    Tick now() const { return now_; }

    /** Advance exactly one clock edge (possibly several domains). */
    void step();

    /** Run for @p duration simulated picoseconds. */
    void runFor(Tick duration);

    /** Run until simulated time reaches @p t. */
    void runUntil(Tick t);

    /** Run @p n cycles of domain @p clk. */
    void runCycles(Clock *clk, Cycles n);

    /**
     * Run until @p done returns true (checked after every edge) or
     * @p max_duration elapses. Returns true if @p done fired.
     */
    bool runUntilDone(const std::function<bool()> &done,
                      Tick max_duration);

  private:
    struct Domain {
        std::unique_ptr<Clock> clock;
        std::vector<Component *> components;
    };

    Domain *findDomain(const Clock *clk);

    Tick now_ = 0;
    std::vector<Domain> domains_;
};

} // namespace harmonia

#endif // HARMONIA_SIM_ENGINE_H_
