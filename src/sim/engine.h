/**
 * @file
 * The simulation engine: owns clock domains, registers components, and
 * advances simulated time edge by edge. Domains can execute in
 * parallel on a persistent worker pool (grouped by declared coupling,
 * see fuseClocks), and an idle fast-forward path jumps over spans of
 * simulated time in which every component reports quiescence. Both
 * modes are bit-identical to the serial reference schedule; serial is
 * the default, HARMONIA_SIM_THREADS opts in.
 */

#ifndef HARMONIA_SIM_ENGINE_H_
#define HARMONIA_SIM_ENGINE_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "sim/clock.h"
#include "sim/component.h"

namespace harmonia {

/**
 * Tick-based multi-clock simulation engine.
 *
 * Clocks are owned by the engine; components are not (they usually live
 * inside a testbench or platform object). Each step advances time to
 * the earliest pending clock edge and ticks that domain's components in
 * registration order.
 *
 * Concurrency model: domains that exchange state through direct calls
 * (a CDC FIFO's two sides, an RBB and the control kernel that commands
 * it) must be fused into one concurrency group with fuseClocks();
 * within a group, domains always tick serially in creation order —
 * exactly the reference schedule. Distinct groups share no state and
 * may tick concurrently. The engine additionally serializes any step
 * where tracing is enabled or a fault plan is armed (both keep global
 * sequential state), so those runs are trivially schedule-independent.
 */
class Engine {
  public:
    Engine();
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Create a clock domain owned by this engine. */
    Clock *addClock(const std::string &name, double mhz);

    /**
     * Register @p c on domain @p clk. A component may be registered
     * exactly once; @p clk must belong to this engine.
     */
    void add(Component *c, Clock *clk);

    /**
     * Deregister @p c from its domain so it can be add()ed again —
     * possibly on a different engine (role failover moves roles
     * between shells this way). @p c must be registered here.
     */
    void remove(Component *c);

    /**
     * Declare that the domains of @p a and @p b exchange state through
     * direct calls and must never tick concurrently. Transitive: fusing
     * a-b and b-c puts all three in one group.
     */
    void fuseClocks(Clock *a, Clock *b);

    Tick now() const { return now_; }

    /** Advance exactly one clock edge (possibly several domains). */
    void step();

    /** Run for @p duration simulated picoseconds. */
    void runFor(Tick duration);

    /** Run until simulated time reaches @p t (never rewinds). */
    void runUntil(Tick t);

    /** Run @p n cycles of domain @p clk. */
    void runCycles(Clock *clk, Cycles n);

    /**
     * Run until @p done returns true (checked after every edge) or
     * @p max_duration elapses. Returns true if @p done fired.
     *
     * Fast-forward contract: @p done must be a function of component
     * state (queues, counters, flags mutated by ticks). A predicate
     * keyed directly on simulated time needs a scheduleEvent() hint so
     * the idle jump lands an edge at the time it watches.
     */
    bool runUntilDone(const std::function<bool()> &done,
                      Tick max_duration);

    // --- Parallel execution & idle fast-forward ---------------------

    /** Enable/disable the worker pool. Serial is the default. */
    void setParallel(bool on);
    bool parallel() const { return parallel_; }

    /** Worker count used when parallel (clamped to >= 1). */
    void setThreads(unsigned n);
    unsigned threads() const { return threads_; }

    /** Enable/disable the idle fast-forward path (default off). */
    void setIdleFastForward(bool on) { fastForward_ = on; }
    bool idleFastForward() const { return fastForward_; }

    /**
     * Hint that something outside the component graph (a host-side DMA
     * deadline, a fault window opening) becomes interesting at @p t:
     * an idle fast-forward never jumps past the first edge at or after
     * a pending hint. Stale hints are discarded harmlessly.
     */
    void scheduleEvent(Tick t);

    /** HARMONIA_SIM_THREADS value; 0 when unset or malformed. */
    static unsigned envThreads();

    /**
     * Enable/disable the dynamic ownership auditor (sim/ownership.h):
     * during every parallel edge, instrumented mutations are checked
     * against the concurrency-group stamps. Defaults to the
     * HARMONIA_SIM_AUDIT environment switch. Costs nothing while the
     * engine runs serially.
     */
    void setOwnershipAudit(bool on) { audit_ = on; }
    bool ownershipAudit() const { return audit_; }

  private:
    struct Domain {
        std::unique_ptr<Clock> clock;
        std::vector<Component *> components;
        std::size_t group = 0;  ///< union-find parent (domain index)
        /// Resolved group root, refreshed as parallel edges are
        /// bucketed; read by workers to tag their audit group.
        std::size_t auditRoot = 0;
    };

    Domain *findDomain(const Clock *clk);
    std::size_t domainIndex(const Clock *clk);
    std::size_t groupOf(std::size_t domain_index);

    /** Earliest edge that must run, honoring idleness; kTickMax when
     *  every component is dormant with no wake and no hint. */
    Tick nextEventEdge();

    /** Land at @p next: sync every clock, tick the fired domains. */
    void commitEdge(Tick next, bool skip_idle);

    /** Tick @p fired (lists of fired domains per group) in parallel
     *  when eligible, serially otherwise. */
    void tickFired(std::vector<std::vector<Domain *>> &fired,
                   bool skip_idle);

    void tickDomain(Domain &d, bool skip_idle);

    void ensureWorkers();
    void stopWorkers();
    void workerLoop();
    void drainTasks(bool skip_idle);

    /** Stamp every component with its group root (audit only). */
    void stampGroups();

    Tick now_ = 0;
    std::vector<Domain> domains_;
    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>>
        events_;

    bool parallel_ = false;
    bool fastForward_ = false;
    unsigned threads_ = 1;
    bool audit_ = false;
    bool groupsDirty_ = true;  ///< component/fuse change since stamp

    // Worker pool state, all guarded by poolMutex_.
    std::vector<std::thread> workers_;
    std::mutex poolMutex_;
    std::condition_variable poolCv_;
    std::condition_variable poolDoneCv_;
    std::vector<std::vector<Domain *>> *work_ = nullptr;
    std::size_t nextTask_ = 0;
    std::size_t tasksLeft_ = 0;
    bool taskSkipIdle_ = false;
    std::uint64_t poolGeneration_ = 0;
    bool poolShutdown_ = false;
};

} // namespace harmonia

#endif // HARMONIA_SIM_ENGINE_H_
