/**
 * @file
 * Dynamic engine-ownership auditor: the runtime complement to the
 * static concurrency checks in src/analysis. During every parallel
 * edge the engine stamps each component with the root of its
 * concurrency group and each worker thread with the group it is
 * ticking; any instrumented state mutation (Component::noteMutation)
 * that crosses groups is a latent data race — exactly the bug class
 * fuseClocks() exists to prevent — and is reported at the edge
 * barrier. Armed only while a parallel edge is in flight, so the
 * serial reference schedule pays one relaxed atomic load per hook.
 */

#ifndef HARMONIA_SIM_OWNERSHIP_H_
#define HARMONIA_SIM_OWNERSHIP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace harmonia {

class Component;

/**
 * Process-wide auditor. The engine arms it around parallel edges
 * (see Engine::setOwnershipAudit and HARMONIA_SIM_AUDIT); components
 * call in through Component::noteMutation(). Violations are recorded
 * thread-safely during the edge and reported at the barrier — by
 * default with fatal(), or counted when trap mode is on (tests).
 */
class OwnershipAuditor {
  public:
    /** "Not stamped / not inside a parallel task" sentinel. */
    static constexpr std::size_t kNoGroup =
        static_cast<std::size_t>(-1);

    static OwnershipAuditor &instance();

    /** True while a parallel edge is in flight with auditing on. */
    static bool armed()
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Group the calling thread is currently ticking. */
    static std::size_t currentGroup() { return currentGroup_; }

    /** Set by the engine's task loops around each group's tick. */
    static void setCurrentGroup(std::size_t group)
    {
        currentGroup_ = group;
    }

    /**
     * Trap mode: count violations instead of throwing at the barrier.
     * Lets a test prove the auditor trips without tearing down the
     * engine mid-edge. Default off.
     */
    void setTrap(bool on) { trap_ = on; }
    bool trap() const { return trap_; }

    /** Violations counted while trap mode was on. */
    std::uint64_t violations() const
    {
        return trapped_.load(std::memory_order_relaxed);
    }
    void clearViolations()
    {
        trapped_.store(0, std::memory_order_relaxed);
    }

    /** Record a mutation of @p c by the calling thread. */
    void checkMutation(const Component &c);

    /** Arm for one parallel edge (engine only). */
    void beginEdge();

    /**
     * Disarm and report (engine only): fatal() on the first recorded
     * violation, or add them to the trap counter when trapping.
     */
    void endEdge();

    /** True when HARMONIA_SIM_AUDIT is set to a non-zero value. */
    static bool envEnabled();

  private:
    OwnershipAuditor() = default;

    inline static std::atomic<bool> armed_{false};
    inline static thread_local std::size_t currentGroup_ = kNoGroup;

    std::mutex mutex_;
    std::vector<std::string> pending_;
    bool trap_ = false;
    std::atomic<std::uint64_t> trapped_{0};
};

} // namespace harmonia

#endif // HARMONIA_SIM_OWNERSHIP_H_
