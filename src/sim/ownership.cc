#include "sim/ownership.h"

#include <cstdlib>

#include "common/logging.h"
#include "sim/component.h"

namespace harmonia {

OwnershipAuditor &
OwnershipAuditor::instance()
{
    static OwnershipAuditor auditor;
    return auditor;
}

bool
OwnershipAuditor::envEnabled()
{
    const char *env = std::getenv("HARMONIA_SIM_AUDIT");
    if (env == nullptr || *env == '\0')
        return false;
    return std::string(env) != "0";
}

void
OwnershipAuditor::checkMutation(const Component &c)
{
    const std::size_t cur = currentGroup_;
    if (cur == kNoGroup)
        return;  // mutation outside any engine task (host-side code)
    const std::size_t owner = c.auditGroup();
    if (owner == kNoGroup || owner == cur)
        return;
    std::lock_guard<std::mutex> lk(mutex_);
    pending_.push_back(format(
        "component '%s' (group %zu) mutated from group %zu during a "
        "parallel edge; fuse the clocks of the caller and the callee",
        c.name().c_str(), owner, cur));
}

void
OwnershipAuditor::beginEdge()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        pending_.clear();
    }
    armed_.store(true, std::memory_order_release);
}

void
OwnershipAuditor::endEdge()
{
    armed_.store(false, std::memory_order_release);
    std::vector<std::string> found;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        found.swap(pending_);
    }
    if (found.empty())
        return;
    if (trap_) {
        trapped_.fetch_add(found.size(), std::memory_order_relaxed);
        return;
    }
    fatal("ownership audit: %s%s", found.front().c_str(),
          found.size() > 1
              ? format(" (+%zu more)", found.size() - 1).c_str()
              : "");
}

} // namespace harmonia
