#include "sim/clock.h"

#include "common/logging.h"

namespace harmonia {

Clock::Clock(std::string name, double mhz)
    : name_(std::move(name)), mhz_(mhz), period_(periodFromMhz(mhz))
{
    if (mhz <= 0.0)
        fatal("clock '%s': frequency must be positive (got %f MHz)",
              name_.c_str(), mhz);
    if (period_ == 0)
        fatal("clock '%s': frequency %f MHz exceeds the ps time base",
              name_.c_str(), mhz);
}

Tick
Clock::nextEdge(Tick now) const
{
    return (now / period_ + 1) * period_;
}

} // namespace harmonia
