#include "sim/trace.h"

#include <cstdarg>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/component.h"

namespace harmonia {

Trace &
Trace::instance()
{
    static Trace t;
    return t;
}

void
Trace::record(Tick tick, std::string who, std::string what)
{
    if (!enabled_)
        return;
    entries_.push({tick, std::move(who), std::move(what)});
}

SpanId
Trace::beginSpan(Tick begin, std::string who, std::string what,
                 std::string cat)
{
    if (!enabled_ || open_.size() >= kMaxOpenSpans)
        return 0;
    const SpanId id = nextSpanId_++;
    open_[id] = {id, begin, begin, std::move(who), std::move(what),
                 std::move(cat)};
    return id;
}

Tick
Trace::endSpan(SpanId id, Tick end)
{
    if (id == 0)
        return 0;
    auto it = open_.find(id);
    if (it == open_.end()) {
        // Unbalanced end (double close, or begun while disabled):
        // count it; the completed-span ring stays consistent.
        ++unmatchedEnds_;
        return 0;
    }
    Span span = std::move(it->second);
    open_.erase(it);
    span.end = end < span.begin ? span.begin : end;
    const Tick duration = span.end - span.begin;
    spans_.push(std::move(span));
    return duration;
}

void
Trace::completeSpan(Tick begin, Tick end, std::string who,
                    std::string what, std::string cat)
{
    if (!enabled_)
        return;
    if (end < begin)
        end = begin;
    spans_.push({nextSpanId_++, begin, end, std::move(who),
                 std::move(what), std::move(cat)});
}

void
Trace::clear()
{
    entries_.clear();
    spans_.clear();
    open_.clear();
    unmatchedEnds_ = 0;
}

void
Trace::setCapacity(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    entries_.setCapacity(capacity);
    spans_.setCapacity(capacity);
}

std::string
Trace::dump(std::size_t last_n) const
{
    std::string out;
    const std::size_t start =
        entries_.size() > last_n ? entries_.size() - last_n : 0;
    for (std::size_t i = start; i < entries_.size(); ++i) {
        const Entry &e = entries_.at(i);
        out += format("%12s  %-24s %s\n",
                      humanTime(e.tick).c_str(), e.who.c_str(),
                      e.what.c_str());
    }
    return out;
}

void
trace(const Component &component, const char *fmt, ...)
{
    Trace &t = Trace::instance();
    if (!t.enabled())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string what = vformat(fmt, ap);
    va_end(ap);
    t.record(component.now(), component.name(), std::move(what));
}

} // namespace harmonia
