#include "sim/trace.h"

#include <cstdarg>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/component.h"

namespace harmonia {

Trace &
Trace::instance()
{
    static Trace t;
    return t;
}

void
Trace::record(Tick tick, std::string who, std::string what)
{
    if (!enabled_)
        return;
    entries_.push_back({tick, std::move(who), std::move(what)});
    if (entries_.size() > kCapacity)
        entries_.pop_front();
}

std::string
Trace::dump(std::size_t last_n) const
{
    std::string out;
    const std::size_t start =
        entries_.size() > last_n ? entries_.size() - last_n : 0;
    for (std::size_t i = start; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        out += format("%12s  %-24s %s\n",
                      humanTime(e.tick).c_str(), e.who.c_str(),
                      e.what.c_str());
    }
    return out;
}

void
trace(const Component &component, const char *fmt, ...)
{
    Trace &t = Trace::instance();
    if (!t.enabled())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string what = vformat(fmt, ap);
    va_end(ap);
    t.record(component.now(), component.name(), std::move(what));
}

} // namespace harmonia
