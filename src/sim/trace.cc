#include "sim/trace.h"

#include <cstdarg>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/component.h"

namespace harmonia {

thread_local TraceContext Trace::current_;

Trace &
Trace::instance()
{
    static bool applied_env = false;
    static Trace t;
    if (!applied_env) {
        applied_env = true;
        t.applyEnvCapacity();
    }
    return t;
}

void
Trace::applyEnvCapacity()
{
    const char *cap = std::getenv("HARMONIA_TRACE_CAP");
    if (cap == nullptr || *cap == '\0')
        return;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(cap, &end, 10);
    if (end == cap || *end != '\0' || v == 0) {
        warn("ignoring malformed HARMONIA_TRACE_CAP='%s'", cap);
        return;
    }
    setCapacity(static_cast<std::size_t>(v));
    setMaxOpenSpans(static_cast<std::size_t>(v));
}

void
Trace::record(Tick tick, std::string who, std::string what)
{
    if (!enabled_)
        return;
    entries_.push({tick, std::move(who), std::move(what)});
}

SpanId
Trace::beginSpan(Tick begin, std::string who, std::string what,
                 std::string cat)
{
    return beginSpan(begin, std::move(who), std::move(what),
                     std::move(cat), current_);
}

SpanId
Trace::beginSpan(Tick begin, std::string who, std::string what,
                 std::string cat, const TraceContext &ctx)
{
    if (!enabled_)
        return 0;
    if (open_.size() >= maxOpen_) {
        ++droppedOpens_;
        return 0;
    }
    const SpanId id = nextSpanId_++;
    open_[id] = {id,     ctx.parent,      ctx.corr,
                 begin,  begin,           std::move(who),
                 std::move(what), std::move(cat)};
    return id;
}

Tick
Trace::endSpan(SpanId id, Tick end)
{
    if (id == 0)
        return 0;
    auto it = open_.find(id);
    if (it == open_.end()) {
        // Unbalanced end (double close, or begun while disabled):
        // count it; the completed-span ring stays consistent.
        ++unmatchedEnds_;
        return 0;
    }
    Span span = std::move(it->second);
    open_.erase(it);
    span.end = end < span.begin ? span.begin : end;
    const Tick duration = span.end - span.begin;
    spans_.push(std::move(span));
    return duration;
}

Tick
Trace::openSpanBegin(SpanId id) const
{
    const auto it = open_.find(id);
    return it == open_.end() ? 0 : it->second.begin;
}

void
Trace::completeSpan(Tick begin, Tick end, std::string who,
                    std::string what, std::string cat)
{
    completeSpan(begin, end, std::move(who), std::move(what),
                 std::move(cat), current_);
}

void
Trace::completeSpan(Tick begin, Tick end, std::string who,
                    std::string what, std::string cat,
                    const TraceContext &ctx)
{
    if (!enabled_)
        return;
    if (end < begin)
        end = begin;
    spans_.push({nextSpanId_++, ctx.parent, ctx.corr, begin, end,
                 std::move(who), std::move(what), std::move(cat)});
}

std::uint16_t
Trace::armTag(const TraceContext &ctx)
{
    if (!enabled_ || tags_.size() >= 0xfffe)
        return 0;
    // Rotating allocation, skipping 0 ("no tag") and live tags so a
    // stale tag in a delayed packet never aliases a newer request.
    while (nextTag_ == 0 || tags_.count(nextTag_) != 0)
        ++nextTag_;
    const std::uint16_t tag = nextTag_++;
    tags_[tag] = ctx;
    return tag;
}

TraceContext
Trace::taggedContext(std::uint16_t tag) const
{
    if (tag == 0)
        return {};
    const auto it = tags_.find(tag);
    return it == tags_.end() ? TraceContext{} : it->second;
}

void
Trace::disarmTag(std::uint16_t tag)
{
    tags_.erase(tag);
}

void
Trace::clear()
{
    entries_.clear();
    spans_.clear();
    open_.clear();
    tags_.clear();
    current_ = TraceContext{};
    unmatchedEnds_ = 0;
    droppedOpens_ = 0;
}

void
Trace::setCapacity(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    entries_.setCapacity(capacity);
    spans_.setCapacity(capacity);
}

void
Trace::setMaxOpenSpans(std::size_t n)
{
    maxOpen_ = n == 0 ? 1 : n;
}

std::string
Trace::dump(std::size_t last_n) const
{
    std::string out;
    const std::size_t start =
        entries_.size() > last_n ? entries_.size() - last_n : 0;
    for (std::size_t i = start; i < entries_.size(); ++i) {
        const Entry &e = entries_.at(i);
        out += format("%12s  %-24s %s\n",
                      humanTime(e.tick).c_str(), e.who.c_str(),
                      e.what.c_str());
    }
    return out;
}

void
trace(const Component &component, const char *fmt, ...)
{
    Trace &t = Trace::instance();
    if (!t.enabled())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string what = vformat(fmt, ap);
    va_end(ap);
    t.record(component.now(), component.name(), std::move(what));
}

} // namespace harmonia
