/**
 * @file
 * Base class for everything that does work on a clock edge: vendor IP
 * models, wrappers, RBB logic, roles, the unified control kernel.
 */

#ifndef HARMONIA_SIM_COMPONENT_H_
#define HARMONIA_SIM_COMPONENT_H_

#include <cstddef>
#include <functional>
#include <string>

#include "common/types.h"
#include "sim/ownership.h"

namespace harmonia {

class Clock;
class Engine;

/**
 * A clocked component. The engine calls tick() once per rising edge of
 * the component's clock, in registration order within the domain —
 * register consumers before producers to model registered outputs.
 */
class Component {
  public:
    explicit Component(std::string name);
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Advance one cycle of this component's clock domain. */
    virtual void tick() = 0;

    /**
     * Quiescence report for the engine's idle fast-forward. Returning
     * true is a contract: tick() at the current instant — and at every
     * later edge up to wakeTime(), absent external input — would change
     * no observable state (no counters, no queues, no trace, no fault
     * queries). The default is the safe answer: never idle.
     */
    virtual bool idle() const { return false; }

    /**
     * Earliest future time at which tick() may stop being a no-op while
     * idle() is true (a scheduled delivery, a sample interval, a busy
     * window expiring). kTickMax means "only external input wakes me".
     * Must be conservative: waking too early is harmless, too late is
     * a simulation bug.
     */
    virtual Tick wakeTime() const { return kTickMax; }

    const std::string &name() const { return name_; }

    /** Clock domain; null until registered with an Engine. */
    Clock *clock() const { return clock_; }

    /** Owning engine; null until registered. Lets host-side code
     *  reached from a component post next-event hints
     *  (Engine::scheduleEvent) for deadlines the engine cannot see. */
    Engine *engine() const { return engine_; }

    /** Current simulated time; 0 until registered. */
    Tick now() const;

    /** Current cycle of this component's clock; 0 until registered. */
    Cycles cycle() const;

    /**
     * Ownership-audit hook: call at the top of every externally
     * reachable state mutator (a push, a pop, a submit). One relaxed
     * atomic load when the auditor is disarmed; during an audited
     * parallel edge it checks that the calling thread's concurrency
     * group owns this component. See sim/ownership.h.
     */
    void noteMutation() const
    {
        if (OwnershipAuditor::armed())
            OwnershipAuditor::instance().checkMutation(*this);
    }

    /** Concurrency-group stamp set by the engine before audited
     *  parallel edges; kNoGroup until then. */
    std::size_t auditGroup() const { return auditGroup_; }

  private:
    friend class Engine;

    std::string name_;
    Clock *clock_ = nullptr;
    Engine *engine_ = nullptr;
    std::size_t auditGroup_ = OwnershipAuditor::kNoGroup;
};

/** Wraps a lambda as a Component — handy in tests and benches. */
class FunctionComponent : public Component {
  public:
    FunctionComponent(std::string name, std::function<void()> fn)
        : Component(std::move(name)), fn_(std::move(fn)) {}

    void tick() override { fn_(); }

  private:
    std::function<void()> fn_;
};

} // namespace harmonia

#endif // HARMONIA_SIM_COMPONENT_H_
