#include "sim/component.h"

#include "sim/engine.h"

namespace harmonia {

Component::Component(std::string name) : name_(std::move(name))
{
}

Tick
Component::now() const
{
    return engine_ ? engine_->now() : 0;
}

Cycles
Component::cycle() const
{
    return clock_ ? clock_->cycle() : 0;
}

} // namespace harmonia
