#include "sim/engine.h"

#include <limits>

#include "common/logging.h"

namespace harmonia {

Clock *
Engine::addClock(const std::string &name, double mhz)
{
    domains_.push_back(Domain{std::make_unique<Clock>(name, mhz), {}});
    return domains_.back().clock.get();
}

Engine::Domain *
Engine::findDomain(const Clock *clk)
{
    for (auto &d : domains_)
        if (d.clock.get() == clk)
            return &d;
    return nullptr;
}

void
Engine::add(Component *c, Clock *clk)
{
    if (c == nullptr || clk == nullptr)
        fatal("Engine::add: null component or clock");
    Domain *d = findDomain(clk);
    if (d == nullptr)
        fatal("clock '%s' does not belong to this engine",
              clk->name().c_str());
    if (c->engine_ != nullptr)
        fatal("component '%s' is already registered", c->name().c_str());
    c->engine_ = this;
    c->clock_ = clk;
    d->components.push_back(c);
}

void
Engine::step()
{
    if (domains_.empty())
        fatal("Engine::step with no clock domains");

    Tick next = std::numeric_limits<Tick>::max();
    for (const auto &d : domains_)
        next = std::min(next, d.clock->nextEdge(now_));

    now_ = next;
    for (auto &d : domains_) {
        if (d.clock->nextEdge(now_ - 1) != now_)
            continue;
        d.clock->advance();
        for (Component *c : d.components)
            c->tick();
    }
}

void
Engine::runFor(Tick duration)
{
    runUntil(now_ + duration);
}

void
Engine::runUntil(Tick t)
{
    while (true) {
        Tick next = std::numeric_limits<Tick>::max();
        for (const auto &d : domains_)
            next = std::min(next, d.clock->nextEdge(now_));
        if (next > t)
            break;
        step();
    }
    now_ = t;
}

void
Engine::runCycles(Clock *clk, Cycles n)
{
    if (findDomain(clk) == nullptr)
        fatal("runCycles: clock '%s' not in this engine",
              clk->name().c_str());
    const Cycles target = clk->cycle() + n;
    while (clk->cycle() < target)
        step();
}

bool
Engine::runUntilDone(const std::function<bool()> &done, Tick max_duration)
{
    const Tick deadline = now_ + max_duration;
    if (done())
        return true;
    while (now_ < deadline) {
        step();
        if (done())
            return true;
    }
    return false;
}

} // namespace harmonia
