#include "sim/engine.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "fault/fault_plan.h"  // harmonia-lint: allow(LAYER-002) serial fallback while a plan is armed
#include "sim/ownership.h"
#include "sim/trace.h"

namespace harmonia {

Engine::Engine()
{
    const unsigned n = envThreads();
    if (n >= 1) {
        threads_ = n;
        parallel_ = n > 1;
        fastForward_ = true;
    }
    audit_ = OwnershipAuditor::envEnabled();
}

Engine::~Engine() { stopWorkers(); }

unsigned
Engine::envThreads()
{
    const char *env = std::getenv("HARMONIA_SIM_THREADS");
    if (env == nullptr || *env == '\0')
        return 0;
    char *end = nullptr;
    const unsigned long n = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0')
        return 0;
    return static_cast<unsigned>(n);
}

Clock *
Engine::addClock(const std::string &name, double mhz)
{
    domains_.push_back(Domain{std::make_unique<Clock>(name, mhz), {},
                              domains_.size(), domains_.size()});
    groupsDirty_ = true;
    return domains_.back().clock.get();
}

Engine::Domain *
Engine::findDomain(const Clock *clk)
{
    for (auto &d : domains_)
        if (d.clock.get() == clk)
            return &d;
    return nullptr;
}

std::size_t
Engine::domainIndex(const Clock *clk)
{
    for (std::size_t i = 0; i < domains_.size(); ++i)
        if (domains_[i].clock.get() == clk)
            return i;
    fatal("clock '%s' does not belong to this engine",
          clk->name().c_str());
    return 0;
}

std::size_t
Engine::groupOf(std::size_t domain_index)
{
    std::size_t root = domain_index;
    while (domains_[root].group != root)
        root = domains_[root].group;
    while (domains_[domain_index].group != root) {
        const std::size_t next = domains_[domain_index].group;
        domains_[domain_index].group = root;
        domain_index = next;
    }
    return root;
}

void
Engine::fuseClocks(Clock *a, Clock *b)
{
    if (a == nullptr || b == nullptr)
        fatal("Engine::fuseClocks: null clock");
    const std::size_t ra = groupOf(domainIndex(a));
    const std::size_t rb = groupOf(domainIndex(b));
    if (ra != rb) {
        domains_[std::max(ra, rb)].group = std::min(ra, rb);
        groupsDirty_ = true;
    }
}

void
Engine::add(Component *c, Clock *clk)
{
    if (c == nullptr || clk == nullptr)
        fatal("Engine::add: null component or clock");
    Domain *d = findDomain(clk);
    if (d == nullptr)
        fatal("clock '%s' does not belong to this engine",
              clk->name().c_str());
    if (c->engine_ != nullptr)
        fatal("component '%s' is already registered", c->name().c_str());
    c->engine_ = this;
    c->clock_ = clk;
    d->components.push_back(c);
    groupsDirty_ = true;
}

void
Engine::remove(Component *c)
{
    if (c == nullptr)
        fatal("Engine::remove: null component");
    if (c->engine_ != this)
        fatal("component '%s' is not registered on this engine",
              c->name().c_str());
    Domain *d = findDomain(c->clock_);
    if (d == nullptr)
        fatal("component '%s' has no domain here", c->name().c_str());
    auto &comps = d->components;
    comps.erase(std::remove(comps.begin(), comps.end(), c),
                comps.end());
    c->engine_ = nullptr;
    c->clock_ = nullptr;
    groupsDirty_ = true;
}

void
Engine::scheduleEvent(Tick t)
{
    events_.push(t);
}

void
Engine::step()
{
    if (domains_.empty())
        fatal("Engine::step with no clock domains");

    Tick next = kTickMax;
    for (const auto &d : domains_)
        next = std::min(next, d.clock->nextEdge(now_));

    commitEdge(next,
               fastForward_ && FaultPlan::active() == nullptr);
}

void
Engine::commitEdge(Tick next, bool skip_idle)
{
    if (domains_.empty())
        fatal("Engine::commitEdge with no clock domains");

    now_ = next;

    // Land every clock at the new instant before any component runs: a
    // cycle count always equals the number of edges at or before now,
    // so batch-syncing is identical to the reference schedule's
    // advance-as-you-go (and is the only order that works once fired
    // domains tick concurrently).
    std::vector<Domain *> fired;
    for (auto &d : domains_) {
        d.clock->syncTo(now_);
        if (d.clock->nextEdge(now_ - 1) == now_)
            fired.push_back(&d);
    }

    std::vector<std::vector<Domain *>> groups;
    if (parallel_ && threads_ > 1 && fired.size() > 1 &&
        !Trace::instance().enabled() &&
        FaultPlan::active() == nullptr) {
        // Bucket fired domains by concurrency group, preserving
        // creation order within each bucket.
        std::vector<std::size_t> roots;
        for (Domain *d : fired) {
            const std::size_t root =
                groupOf(static_cast<std::size_t>(d - domains_.data()));
            d->auditRoot = root;
            std::size_t slot = roots.size();
            for (std::size_t i = 0; i < roots.size(); ++i)
                if (roots[i] == root) {
                    slot = i;
                    break;
                }
            if (slot == roots.size()) {
                roots.push_back(root);
                groups.emplace_back();
            }
            groups[slot].push_back(d);
        }
    }

    if (groups.size() > 1) {
        if (audit_) {
            if (groupsDirty_)
                stampGroups();
            OwnershipAuditor::instance().beginEdge();
        }
        tickFired(groups, skip_idle);
        if (audit_)
            OwnershipAuditor::instance().endEdge();
    } else {
        // Serial reference schedule: creation order across domains.
        for (Domain *d : fired)
            tickDomain(*d, skip_idle);
    }
}

void
Engine::tickDomain(Domain &d, bool skip_idle)
{
    if (skip_idle) {
        // Re-evaluate at tick time, not scan time: a producer that
        // ticked earlier this edge may have just woken this component.
        for (Component *c : d.components)
            if (!c->idle())
                c->tick();
    } else {
        for (Component *c : d.components)
            c->tick();
    }
}

Tick
Engine::nextEventEdge()
{
    while (!events_.empty() && events_.top() <= now_)
        events_.pop();
    const Tick hint = events_.empty() ? kTickMax : events_.top();

    Tick next = kTickMax;
    for (auto &d : domains_) {
        Tick cand = kTickMax;
        bool active = false;
        Tick wake = kTickMax;
        for (Component *c : d.components) {
            if (!c->idle()) {
                active = true;
                break;
            }
            wake = std::min(wake, c->wakeTime());
        }
        if (active)
            cand = d.clock->nextEdge(now_);
        else if (wake != kTickMax)
            cand = d.clock->nextEdge(
                std::max(now_, wake == 0 ? 0 : wake - 1));
        if (hint != kTickMax)
            cand = std::min(
                cand, d.clock->nextEdge(
                          std::max(now_, hint == 0 ? 0 : hint - 1)));
        next = std::min(next, cand);
    }
    return next;
}

void
Engine::runFor(Tick duration)
{
    runUntil(now_ + duration);
}

void
Engine::runUntil(Tick t)
{
    if (domains_.empty())
        fatal("Engine::runUntil with no clock domains");

    while (true) {
        const bool ff =
            fastForward_ && FaultPlan::active() == nullptr;
        Tick next;
        if (ff) {
            next = nextEventEdge();
        } else {
            next = kTickMax;
            for (const auto &d : domains_)
                next = std::min(next, d.clock->nextEdge(now_));
        }
        if (next > t)
            break;
        commitEdge(next, ff);
    }
    // Clamp, never rewind: a runUntilDone-style caller may already sit
    // past t. Sync the clocks so skipped no-op edges still count.
    now_ = std::max(now_, t);
    for (auto &d : domains_)
        d.clock->syncTo(now_);
}

void
Engine::runCycles(Clock *clk, Cycles n)
{
    if (findDomain(clk) == nullptr)
        fatal("runCycles: clock '%s' not in this engine",
              clk->name().c_str());
    runUntil(clk->cyclesToTicks(clk->cycle() + n));
}

bool
Engine::runUntilDone(const std::function<bool()> &done, Tick max_duration)
{
    const Tick deadline = now_ + max_duration;
    if (done())
        return true;
    while (now_ < deadline) {
        const bool ff =
            fastForward_ && FaultPlan::active() == nullptr;
        Tick next;
        if (ff) {
            next = nextEventEdge();
        } else {
            next = kTickMax;
            for (const auto &d : domains_)
                next = std::min(next, d.clock->nextEdge(now_));
        }
        // The reference schedule never runs past the first edge at or
        // after the deadline; an idle jump must land there too, not at
        // some later wake.
        Tick stop = kTickMax;
        for (const auto &d : domains_)
            stop = std::min(
                stop, d.clock->nextEdge(std::max(now_, deadline - 1)));
        next = std::min(next, stop);
        commitEdge(next, ff);
        if (done())
            return true;
    }
    return false;
}

// --- Worker pool ---------------------------------------------------

void
Engine::setParallel(bool on)
{
    parallel_ = on;
}

void
Engine::setThreads(unsigned n)
{
    threads_ = std::max(1u, n);
}

void
Engine::ensureWorkers()
{
    const std::size_t want = threads_ - 1;  // main thread participates
    while (workers_.size() < want)
        workers_.emplace_back([this] { workerLoop(); });
}

void
Engine::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lk(poolMutex_);
        poolShutdown_ = true;
    }
    poolCv_.notify_all();
    for (auto &w : workers_)
        w.join();
    workers_.clear();
    poolShutdown_ = false;
}

void
Engine::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(poolMutex_);
    while (true) {
        poolCv_.wait(lk, [&] {
            return poolShutdown_ || poolGeneration_ != seen;
        });
        if (poolShutdown_)
            return;
        seen = poolGeneration_;
        while (work_ != nullptr && nextTask_ < work_->size()) {
            std::vector<Domain *> &task = (*work_)[nextTask_++];
            const bool skip = taskSkipIdle_;
            lk.unlock();
            OwnershipAuditor::setCurrentGroup(task.front()->auditRoot);
            for (Domain *d : task)
                tickDomain(*d, skip);
            OwnershipAuditor::setCurrentGroup(
                OwnershipAuditor::kNoGroup);
            lk.lock();
            if (--tasksLeft_ == 0)
                poolDoneCv_.notify_all();
        }
    }
}

void
Engine::drainTasks(bool skip_idle)
{
    std::unique_lock<std::mutex> lk(poolMutex_);
    while (work_ != nullptr && nextTask_ < work_->size()) {
        std::vector<Domain *> &task = (*work_)[nextTask_++];
        lk.unlock();
        OwnershipAuditor::setCurrentGroup(task.front()->auditRoot);
        for (Domain *d : task)
            tickDomain(*d, skip_idle);
        OwnershipAuditor::setCurrentGroup(OwnershipAuditor::kNoGroup);
        lk.lock();
        if (--tasksLeft_ == 0)
            poolDoneCv_.notify_all();
    }
}

void
Engine::stampGroups()
{
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        const std::size_t root = groupOf(i);
        for (Component *c : domains_[i].components)
            c->auditGroup_ = root;
    }
    groupsDirty_ = false;
}

void
Engine::tickFired(std::vector<std::vector<Domain *>> &fired,
                  bool skip_idle)
{
    ensureWorkers();
    {
        std::lock_guard<std::mutex> lk(poolMutex_);
        work_ = &fired;
        nextTask_ = 0;
        tasksLeft_ = fired.size();
        taskSkipIdle_ = skip_idle;
        ++poolGeneration_;
    }
    poolCv_.notify_all();
    drainTasks(skip_idle);
    std::unique_lock<std::mutex> lk(poolMutex_);
    poolDoneCv_.wait(lk, [&] { return tasksLeft_ == 0; });
    work_ = nullptr;
}

} // namespace harmonia
