#include "cmd/command.h"

#include "common/checksum.h"
#include "common/logging.h"

namespace harmonia {

namespace {

void
putWord(std::vector<std::uint8_t> &out, std::uint32_t w)
{
    out.push_back(static_cast<std::uint8_t>(w >> 24));
    out.push_back(static_cast<std::uint8_t>(w >> 16));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
    out.push_back(static_cast<std::uint8_t>(w));
}

std::uint32_t
getWord(const std::vector<std::uint8_t> &in, std::size_t off)
{
    return (static_cast<std::uint32_t>(in[off]) << 24) |
           (static_cast<std::uint32_t>(in[off + 1]) << 16) |
           (static_cast<std::uint32_t>(in[off + 2]) << 8) |
           static_cast<std::uint32_t>(in[off + 3]);
}

} // namespace

std::vector<std::uint8_t>
CommandPacket::encode() const
{
    if (version > 0xf)
        fatal("command version %u exceeds the 4-bit field", version);
    const std::size_t payload_words = data.size() + 1;  // + trailer
    if (payload_words > 0xff)
        fatal("command data of %zu words exceeds the 8-bit PayloadLen",
              data.size());

    std::vector<std::uint8_t> out;
    out.reserve(encodedSize());

    const std::uint32_t word0 =
        (static_cast<std::uint32_t>(version) << 28) |
        (static_cast<std::uint32_t>(kHdLenWords) << 24) |
        (static_cast<std::uint32_t>(payload_words) << 16) |
        (static_cast<std::uint32_t>(srcId) << 8) |
        static_cast<std::uint32_t>(dstId);
    const std::uint32_t word1 =
        (static_cast<std::uint32_t>(rbbId) << 24) |
        (static_cast<std::uint32_t>(instanceId) << 16) |
        static_cast<std::uint32_t>(commandCode);
    putWord(out, word0);
    putWord(out, word1);
    putWord(out, options);
    for (std::uint32_t w : data)
        putWord(out, w);

    // Trailer: checksum over everything before it, plus the status.
    const std::uint16_t ck = checksum16(out);
    putWord(out, (static_cast<std::uint32_t>(ck) << 16) |
                     static_cast<std::uint32_t>(status));
    return out;
}

std::string
CommandPacket::toString() const
{
    return format("cmd{v%u %02x->%02x rbb=%02x inst=%02x code=0x%04x "
                  "opts=0x%x status=0x%x data=%zuw}",
                  version, srcId, dstId, rbbId, instanceId, commandCode,
                  options, status, data.size());
}

const char *
toString(DecodeError err)
{
    switch (err) {
      case DecodeError::Truncated:
        return "truncated";
      case DecodeError::BadVersion:
        return "bad version";
      case DecodeError::BadHeaderLen:
        return "bad header length";
      case DecodeError::LengthMismatch:
        return "length mismatch";
      case DecodeError::BadChecksum:
        return "bad checksum";
    }
    return "?";
}

DecodeOutcome
decodeCommand(const std::vector<std::uint8_t> &bytes,
              std::size_t *consumed)
{
    auto fail = [](DecodeError e) {
        DecodeOutcome out;
        out.error = e;
        return out;
    };

    if (bytes.size() < 4)
        return fail(DecodeError::Truncated);
    const std::uint32_t word0 = getWord(bytes, 0);
    const std::uint8_t version =
        static_cast<std::uint8_t>(word0 >> 28);
    const std::uint8_t hd_len =
        static_cast<std::uint8_t>((word0 >> 24) & 0xf);
    const std::uint8_t payload_len =
        static_cast<std::uint8_t>((word0 >> 16) & 0xff);

    if (version != 1)
        return fail(DecodeError::BadVersion);
    if (hd_len != CommandPacket::kHdLenWords)
        return fail(DecodeError::BadHeaderLen);
    if (payload_len < 1)
        return fail(DecodeError::LengthMismatch);

    const std::size_t total =
        (static_cast<std::size_t>(hd_len) + payload_len) * 4;
    if (bytes.size() < total)
        return fail(DecodeError::Truncated);

    // Verify the trailer checksum over the preceding bytes.
    const std::size_t trailer = total - 4;
    const std::uint32_t trail_word = getWord(bytes, trailer);
    const std::uint16_t ck =
        static_cast<std::uint16_t>(trail_word >> 16);
    std::vector<std::uint8_t> head(bytes.begin(),
                                   bytes.begin() +
                                       static_cast<long>(trailer));
    if (checksum16(head) != ck)
        return fail(DecodeError::BadChecksum);

    CommandPacket pkt;
    pkt.version = version;
    pkt.srcId = static_cast<std::uint8_t>(word0 >> 8);
    pkt.dstId = static_cast<std::uint8_t>(word0);
    const std::uint32_t word1 = getWord(bytes, 4);
    pkt.rbbId = static_cast<std::uint8_t>(word1 >> 24);
    pkt.instanceId = static_cast<std::uint8_t>(word1 >> 16);
    pkt.commandCode = static_cast<std::uint16_t>(word1);
    pkt.options = getWord(bytes, 8);
    pkt.status = static_cast<std::uint16_t>(trail_word);
    for (std::size_t off = 12; off < trailer; off += 4)
        pkt.data.push_back(getWord(bytes, off));

    if (consumed != nullptr)
        *consumed = total;
    DecodeOutcome out;
    out.packet = std::move(pkt);
    return out;
}

CommandPacket
makeResponse(const CommandPacket &request, const CommandResult &result)
{
    CommandPacket resp;
    resp.version = request.version;
    resp.srcId = request.dstId;
    resp.dstId = request.srcId;  // routed back by SrcID (step 7)
    resp.rbbId = request.rbbId;
    resp.instanceId = request.instanceId;
    resp.commandCode = request.commandCode;
    resp.options = request.options;
    resp.status = result.status;
    resp.data = result.data;
    return resp;
}

} // namespace harmonia
