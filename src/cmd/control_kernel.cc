#include "cmd/control_kernel.h"

#include "common/logging.h"
#include "sim/clock.h"
#include "sim/trace.h"

namespace harmonia {

namespace {
// Command service time covers buffer queueing plus the soft core's
// 50-cycle execution: 50 ns buckets out to 6.4 us.
constexpr std::uint64_t kServiceBucketPs = 50'000;
constexpr std::size_t kServiceBuckets = 128;

// One named counter per decode failure, so malformed-input telemetry
// distinguishes line noise (checksum) from framing bugs (the rest).
const char *
decodeStatName(DecodeError error)
{
    switch (error) {
      case DecodeError::Truncated:
        return "decode_truncated";
      case DecodeError::BadVersion:
        return "decode_bad_version";
      case DecodeError::BadHeaderLen:
        return "decode_bad_header_len";
      case DecodeError::LengthMismatch:
        return "decode_length_mismatch";
      case DecodeError::BadChecksum:
        return "decode_bad_checksum";
    }
    return "decode_error";
}
} // namespace

UnifiedControlKernel::UnifiedControlKernel(std::string name,
                                           std::size_t buffer_bytes)
    : Component(std::move(name)), bufferBytes_(buffer_bytes),
      stats_(this->name()), serviceLat_(kServiceBucketPs,
                                        kServiceBuckets)
{
    if (buffer_bytes < 64)
        fatal("control kernel buffer of %zu bytes is too small",
              buffer_bytes);
    // Nios-class soft core, instruction memory and command buffer.
    resources_ = plannedResources();
}

ResourceVector
UnifiedControlKernel::plannedResources()
{
    return ResourceVector{5200, 6900, 6, 0, 0};
}

void
UnifiedControlKernel::registerTarget(std::uint8_t rbb_id,
                                     std::uint8_t instance_id,
                                     CommandTarget *target)
{
    if (target == nullptr)
        fatal("null command target for rbb=%02x inst=%02x", rbb_id,
              instance_id);
    const auto key = std::make_pair(rbb_id, instance_id);
    if (targets_.count(key))
        fatal("command target rbb=%02x inst=%02x already registered",
              rbb_id, instance_id);
    targets_[key] = target;
}

void
UnifiedControlKernel::unregisterTarget(std::uint8_t rbb_id,
                                       std::uint8_t instance_id)
{
    targets_.erase(std::make_pair(rbb_id, instance_id));
}

bool
UnifiedControlKernel::hasTarget(std::uint8_t rbb_id,
                                std::uint8_t instance_id) const
{
    return targets_.count(std::make_pair(rbb_id, instance_id)) != 0;
}

std::size_t
UnifiedControlKernel::bufferSpace() const
{
    return bufferBytes_ - buffer_.size();
}

bool
UnifiedControlKernel::submitBytes(const std::vector<std::uint8_t> &bytes)
{
    noteMutation();
    if (bytes.size() > bufferSpace()) {
        stats_.counter("buffer_overflow").inc();
        return false;
    }
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
    // One arrival stamp per submission; the command transport delivers
    // one packet per submit, so this approximates per-packet queueing
    // even when a burst of packets lands back to back.
    arrivals_.push_back(clock() != nullptr ? now() : 0);
    return true;
}

void
UnifiedControlKernel::registerTelemetry(MetricsRegistry &reg,
                                        const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addGroup(prefix, &stats_);
    telemetry_.addHistogram(prefix + "/service_time_ps", &serviceLat_);
    telemetry_.addGauge(prefix + "/buffer_occupancy", [this] {
        return static_cast<double>(buffer_.size());
    });
}

bool
UnifiedControlKernel::submit(const CommandPacket &packet)
{
    return submitBytes(packet.encode());
}

std::vector<std::uint8_t>
UnifiedControlKernel::popResponseBytes()
{
    if (responses_.empty())
        fatal("control kernel '%s': no response pending",
              name().c_str());
    std::vector<std::uint8_t> bytes = std::move(responses_.front());
    responses_.pop_front();
    return bytes;
}

CommandPacket
UnifiedControlKernel::popResponse()
{
    const auto outcome = decodeCommand(popResponseBytes());
    if (!outcome.ok())
        panic("control kernel produced an undecodable response");
    return *outcome.packet;
}

CommandResult
UnifiedControlKernel::systemCommand(const CommandPacket &pkt)
{
    CommandResult res;
    switch (pkt.commandCode) {
      case kCmdFlashErase:
        // Sectors erase instantly in the model; report the sector.
        res.data = {pkt.data.empty() ? 0 : pkt.data[0], 1};
        stats_.counter("flash_erases").inc();
        return res;
      case kCmdTimeCount:
        res.data = {
            static_cast<std::uint32_t>(cycle() >> 32),
            static_cast<std::uint32_t>(cycle()),
        };
        return res;
      case kCmdModuleStatusRead:
        res.data = {1};  // kernel alive
        return res;
      default:
        res.status = kCmdUnknownCode;
        return res;
    }
}

CommandResult
UnifiedControlKernel::execute(const CommandPacket &pkt)
{
    if (pkt.rbbId == kRbbSystem)
        return systemCommand(pkt);

    const auto key = std::make_pair(pkt.rbbId, pkt.instanceId);
    auto it = targets_.find(key);
    if (it == targets_.end()) {
        stats_.counter("unknown_target").inc();
        return {kCmdUnknownTarget, {}};
    }
    return it->second->executeCommand(pkt.commandCode, pkt.data);
}

bool
UnifiedControlKernel::idle() const
{
    if (cycle() < busyUntilCycle_)
        return true;
    if (buffer_.size() < 4)
        return true;
    // A buffer whose size still equals the last Truncated decode is
    // byte-identical to that decode (growth changes the size, erases
    // reset the marker), so another attempt would change nothing.
    return buffer_.size() == lastTruncatedSize_;
}

Tick
UnifiedControlKernel::wakeTime() const
{
    // Only a busy window with decodable work behind it wakes on its
    // own; everything else waits for an external submit.
    if (cycle() < busyUntilCycle_ && buffer_.size() >= 4 &&
        buffer_.size() != lastTruncatedSize_)
        return clock()->cyclesToTicks(busyUntilCycle_);
    return kTickMax;
}

void
UnifiedControlKernel::tick()
{
    // One command per kCyclesPerCommand soft-core cycles.
    if (cycle() < busyUntilCycle_)
        return;
    if (buffer_.size() < 4)
        return;

    std::size_t consumed = 0;
    const DecodeOutcome outcome = decodeCommand(buffer_, &consumed);
    if (!outcome.ok()) {
        if (*outcome.error == DecodeError::Truncated) {
            // Count the stall once per buffer state, not per tick.
            if (buffer_.size() != lastTruncatedSize_) {
                stats_.counter(decodeStatName(*outcome.error)).inc();
                lastTruncatedSize_ = buffer_.size();
            }
            return;  // wait for the rest of the packet
        }
        stats_.counter(decodeStatName(*outcome.error)).inc();
        lastTruncatedSize_ = 0;
        if (*outcome.error == DecodeError::BadChecksum) {
            // Boundary is known: drop the packet, answer with an error.
            const std::uint32_t word0 =
                (static_cast<std::uint32_t>(buffer_[0]) << 24) |
                (static_cast<std::uint32_t>(buffer_[1]) << 16) |
                (static_cast<std::uint32_t>(buffer_[2]) << 8) |
                buffer_[3];
            const std::size_t total =
                (((word0 >> 24) & 0xf) + ((word0 >> 16) & 0xff)) * 4;
            buffer_.erase(buffer_.begin(),
                          buffer_.begin() +
                              static_cast<long>(
                                  std::min(total, buffer_.size())));
            stats_.counter("checksum_errors").inc();
            CommandPacket err;
            err.srcId = 0;
            err.dstId = static_cast<std::uint8_t>(word0 >> 8);
            err.status = kCmdChecksumError;
            responses_.push_back(err.encode());
        } else {
            // No reliable boundary: flush and resynchronize — but
            // answer with an explicit NACK (best-effort routing from
            // the header's SrcID byte) so a well-behaved requester
            // retries immediately instead of waiting out its timeout.
            const std::uint8_t src = buffer_[2];
            buffer_.clear();
            stats_.counter("parse_errors").inc();
            CommandPacket err;
            err.srcId = 0;
            err.dstId = src;
            err.status = kCmdMalformed;
            responses_.push_back(err.encode());
            stats_.counter("nacks_sent").inc();
        }
        // The dropped packet's arrival stamp goes with it.
        if (!arrivals_.empty())
            arrivals_.pop_front();
        busyUntilCycle_ = cycle() + kCyclesPerCommand;
        return;
    }

    const CommandPacket &pkt = *outcome.packet;
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<long>(consumed));
    lastTruncatedSize_ = 0;

    // The driver propagates its trace context across the wire as a
    // tag in the Options high half; resolving it parents this span
    // (and, through the ambient scope, the target's execute span)
    // under the originating host call.
    Trace &tracer = Trace::instance();
    const TraceContext wire_ctx = tracer.taggedContext(
        static_cast<std::uint16_t>(pkt.options >> 16));
    const Tick arrived_at =
        !arrivals_.empty() ? arrivals_.front()
                           : (clock() != nullptr ? now() : 0);
    const SpanId kspan = tracer.beginSpan(
        arrived_at, name(),
        toString(static_cast<CommandCode>(pkt.commandCode)),
        "command", wire_ctx);

    CommandResult result;
    {
        ScopedTraceContext scope(
            TraceContext{kspan, wire_ctx.corr});
        result = execute(pkt);
    }
    trace(*this, "executed %s for src=%02x -> %s",
          toString(static_cast<CommandCode>(pkt.commandCode)),
          pkt.srcId,
          toString(static_cast<CommandStatus>(result.status)));
    responses_.push_back(makeResponse(pkt, result).encode());
    stats_.counter("commands_executed").inc();
    stats_
        .counter(std::string("cmd_") +
                 toString(static_cast<CommandCode>(pkt.commandCode)))
        .inc();
    if (result.status != kCmdOk)
        stats_.counter("commands_failed").inc();
    if (result.status == kCmdUnknownCode)
        stats_.counter("unknown_code").inc();
    busyUntilCycle_ = cycle() + kCyclesPerCommand;

    // Service time: buffer arrival through end of soft-core execution.
    const Tick done = clock()->cyclesToTicks(busyUntilCycle_);
    if (!arrivals_.empty()) {
        const Tick arrived = arrivals_.front();
        arrivals_.pop_front();
        serviceLat_.sample(done >= arrived ? done - arrived : 0);
    }
    // The span ends now, when the response is visible to the host —
    // not at `done`: the remaining soft-core busy tail models
    // throughput, and ending past the caller's observation point
    // would break the span tree's self-time telescoping.
    tracer.endSpan(kspan, now());
}

} // namespace harmonia
