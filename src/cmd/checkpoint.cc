#include "cmd/checkpoint.h"

#include "cmd/command_codes.h"

namespace harmonia {

namespace {

constexpr std::uint32_t kFnvOffset32 = 2166136261u;
constexpr std::uint32_t kFnvPrime32 = 16777619u;

std::uint32_t
fnv1a32(std::uint32_t hash, std::uint32_t word)
{
    for (unsigned b = 0; b < 4; ++b) {
        hash ^= (word >> (8 * b)) & 0xff;
        hash *= kFnvPrime32;
    }
    return hash;
}

/** Pack @p s into words, 4 bytes per word, zero-padded. */
void
packString(const std::string &s, std::vector<std::uint32_t> *out)
{
    out->push_back(static_cast<std::uint32_t>(s.size()));
    for (std::size_t i = 0; i < s.size(); i += 4) {
        std::uint32_t w = 0;
        for (std::size_t b = 0; b < 4 && i + b < s.size(); ++b)
            w |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(s[i + b]))
                 << (8 * b);
        out->push_back(w);
    }
}

/** Bounded cursor over the blob body; sets truncated on overrun. */
struct Reader {
    const std::vector<std::uint32_t> &words;
    std::size_t at = 0;
    std::size_t end = 0;
    bool truncated = false;

    std::uint32_t next()
    {
        if (at >= end) {
            truncated = true;
            return 0;
        }
        return words[at++];
    }
};

} // namespace

const char *
toString(CheckpointError err)
{
    switch (err) {
      case CheckpointError::Ok:
        return "ok";
      case CheckpointError::BadMagic:
        return "bad magic";
      case CheckpointError::BadVersion:
        return "codec version skew";
      case CheckpointError::KindMismatch:
        return "module kind mismatch";
      case CheckpointError::Truncated:
        return "truncated blob";
      case CheckpointError::BadChecksum:
        return "checksum mismatch";
      case CheckpointError::BadPayload:
        return "unusable payload";
    }
    return "?";
}

std::uint32_t
checkpointKindId(const std::string &kind_name)
{
    std::uint32_t hash = kFnvOffset32;
    for (const char c : kind_name) {
        hash ^= static_cast<unsigned char>(c);
        hash *= kFnvPrime32;
    }
    return hash;
}

std::uint32_t
checkpointChecksum(const std::vector<std::uint32_t> &words)
{
    std::uint32_t hash = kFnvOffset32;
    for (const std::uint32_t w : words)
        hash = fnv1a32(hash, w);
    return hash;
}

std::vector<std::uint32_t>
encodeCheckpoint(std::uint32_t kind_id,
                 const std::vector<std::pair<std::string,
                                             std::uint64_t>> &stats,
                 const std::vector<std::uint32_t> &payload)
{
    std::vector<std::uint32_t> out;
    out.push_back(kCheckpointMagic);
    out.push_back(kCheckpointVersion);
    out.push_back(kind_id);
    out.push_back(static_cast<std::uint32_t>(stats.size()));
    for (const auto &[name, value] : stats) {
        packString(name, &out);
        out.push_back(static_cast<std::uint32_t>(value));
        out.push_back(static_cast<std::uint32_t>(value >> 32));
    }
    out.push_back(static_cast<std::uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    out.push_back(checkpointChecksum(out));
    return out;
}

CheckpointError
decodeCheckpoint(const std::vector<std::uint32_t> &blob,
                 std::uint32_t expected_kind_id, CheckpointImage *out)
{
    if (blob.size() < 6)
        return CheckpointError::Truncated;
    if (blob[0] != kCheckpointMagic)
        return CheckpointError::BadMagic;

    // Seal first: every later diagnostic should describe an intact
    // blob, not line noise.
    const std::vector<std::uint32_t> body(blob.begin(),
                                          blob.end() - 1);
    if (blob.back() != checkpointChecksum(body))
        return CheckpointError::BadChecksum;

    if (blob[1] != kCheckpointVersion)
        return CheckpointError::BadVersion;
    if (expected_kind_id != 0 && blob[2] != expected_kind_id)
        return CheckpointError::KindMismatch;

    Reader rd{blob, 3, blob.size() - 1, false};
    CheckpointImage img;
    img.kindId = blob[2];

    const std::uint32_t nstats = rd.next();
    for (std::uint32_t i = 0; i < nstats && !rd.truncated; ++i) {
        const std::uint32_t len = rd.next();
        if (len > 4 * (rd.end - rd.at)) {
            rd.truncated = true;
            break;
        }
        std::string name;
        for (std::uint32_t off = 0; off < len; off += 4) {
            const std::uint32_t w = rd.next();
            for (std::uint32_t b = 0; b < 4 && off + b < len; ++b)
                name.push_back(
                    static_cast<char>((w >> (8 * b)) & 0xff));
        }
        const std::uint64_t lo = rd.next();
        const std::uint64_t hi = rd.next();
        img.stats.emplace_back(std::move(name), (hi << 32) | lo);
    }

    const std::uint32_t npayload = rd.next();
    if (npayload > rd.end - rd.at)
        return CheckpointError::Truncated;
    for (std::uint32_t i = 0; i < npayload; ++i)
        img.payload.push_back(rd.next());

    if (rd.truncated || rd.at != rd.end)
        return CheckpointError::Truncated;

    *out = std::move(img);
    return CheckpointError::Ok;
}

CommandResult
CheckpointStreamer::serveCheckpoint(
    const std::vector<std::uint32_t> &req,
    const std::function<std::vector<std::uint32_t>()> &snapshot)
{
    const std::size_t offset = req.empty() ? 0 : req[0];
    if (offset == 0)
        readCache_ = snapshot();
    if (offset > readCache_.size())
        return {kCmdBadArgument, {}};

    CommandResult res;
    res.data.push_back(
        static_cast<std::uint32_t>(readCache_.size()));
    const std::size_t n =
        std::min(kChunkWords, readCache_.size() - offset);
    for (std::size_t i = 0; i < n; ++i)
        res.data.push_back(readCache_[offset + i]);
    return res;
}

CommandResult
CheckpointStreamer::serveRestore(
    const std::vector<std::uint32_t> &req,
    const std::function<CheckpointError(
        const std::vector<std::uint32_t> &)> &apply)
{
    if (req.size() < 2)
        return {kCmdBadArgument, {}};
    const std::size_t total = req[0];
    const std::size_t offset = req[1];
    const std::size_t n = req.size() - 2;
    if (total > kMaxBlobWords)
        return {kCmdBadArgument, {}};

    if (offset == 0) {
        staging_.clear();
        expected_ = total;
    } else if (expected_ != 0 && total == expected_ &&
               offset + n <= staging_.size()) {
        // Duplicate of an already-staged chunk (the transport is
        // lossy and the driver retries): re-ack, don't re-stage.
        return {kCmdOk,
                {0, static_cast<std::uint32_t>(staging_.size())}};
    } else if (expected_ == 0 && hasApplied_ &&
               total == appliedTotal_ && offset + n == total) {
        // Retried final chunk after the apply already ran: the ack
        // was lost in transit, so repeat the verdict.
        return {appliedErr_ == 0
                    ? static_cast<std::uint16_t>(kCmdOk)
                    : static_cast<std::uint16_t>(kCmdBadArgument),
                {1, appliedErr_}};
    }

    // Otherwise the chunk must extend the staging buffer exactly
    // where it ends — holes are rejected.
    if (total != expected_ || offset != staging_.size() ||
        n > expected_ - offset)
        return {kCmdBadArgument, {}};
    staging_.insert(staging_.end(), req.begin() + 2, req.end());

    if (staging_.size() < expected_)
        return {kCmdOk,
                {0, static_cast<std::uint32_t>(staging_.size())}};

    const CheckpointError err = apply(staging_);
    staging_.clear();
    expected_ = 0;
    hasApplied_ = true;
    appliedTotal_ = total;
    appliedErr_ = static_cast<std::uint32_t>(err);
    return {err == CheckpointError::Ok
                ? static_cast<std::uint16_t>(kCmdOk)
                : static_cast<std::uint16_t>(kCmdBadArgument),
            {1, static_cast<std::uint32_t>(err)}};
}

} // namespace harmonia
