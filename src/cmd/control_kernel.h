/**
 * @file
 * The unified control kernel (§3.3.3): software on a lightweight soft
 * core inside the FPGA that centralizes command execution for every
 * controller on the server (applications, BMC, standalone tools).
 * It parses command packets from its buffer, executes them against
 * registered targets, and encapsulates responses routed back by SrcID.
 */

#ifndef HARMONIA_CMD_CONTROL_KERNEL_H_
#define HARMONIA_CMD_CONTROL_KERNEL_H_

#include <deque>
#include <map>
#include <vector>

#include "cmd/command.h"
#include "common/stats.h"
#include "device/resource.h"
#include "sim/component.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/**
 * The soft-core command executor. Commands arrive as a byte stream
 * (walkthrough step 2: via the DMA control queue into the kernel's
 * buffer), are parsed by HdLen/PayloadLen (step 3), executed
 * sequentially (step 4), distributed to module registers (step 5) and
 * answered with response packets (steps 6-7).
 */
class UnifiedControlKernel : public Component {
  public:
    /** Soft-core execution cost per command, in kernel clock cycles. */
    static constexpr Cycles kCyclesPerCommand = 50;

    /**
     * @param buffer_bytes Command buffer capacity (configurable depth
     *                     per the paper; default 4 KiB).
     */
    explicit UnifiedControlKernel(std::string name,
                                  std::size_t buffer_bytes = 4096);

    /** Route (RBB ID, Instance ID) to a target module. */
    void registerTarget(std::uint8_t rbb_id, std::uint8_t instance_id,
                        CommandTarget *target);

    /**
     * Drop a routing entry (idempotent). Partial reconfiguration uses
     * this to release a scrubbed or unloaded slot's command target so
     * the slot can be re-tenanted.
     */
    void unregisterTarget(std::uint8_t rbb_id,
                          std::uint8_t instance_id);

    /** Whether a routing entry exists for (rbb_id, instance_id). */
    bool hasTarget(std::uint8_t rbb_id,
                   std::uint8_t instance_id) const;

    /** Registered routing entries — the fleet soak suite asserts a
     *  churned kernel holds no stale role targets. */
    std::size_t targetCount() const { return targets_.size(); }

    /** Space left in the command buffer. */
    std::size_t bufferSpace() const;

    /**
     * Append raw command bytes (possibly several packets, possibly a
     * partial tail that completes later). Returns false when the
     * buffer cannot take the bytes.
     */
    bool submitBytes(const std::vector<std::uint8_t> &bytes);

    /** Convenience: submit one packet object. */
    bool submit(const CommandPacket &packet);

    bool hasResponse() const { return !responses_.empty(); }

    /** Pop the next encoded response (already addressed by SrcID). */
    std::vector<std::uint8_t> popResponseBytes();

    /** Pop and decode the next response. */
    CommandPacket popResponse();

    void tick() override;

    /** No decodable work, or soft core busy: tick is a no-op. */
    bool idle() const override;

    /** End of the soft-core busy window when work is queued behind it. */
    Tick wakeTime() const override;

    /** Soft core + buffer footprint (Fig 16: < 0.67%). */
    const ResourceVector &resources() const { return resources_; }

    /** The same footprint, available before construction (DRC). */
    static ResourceVector plannedResources();

    StatGroup &stats() { return stats_; }

    /** Queueing + execution time of completed commands. */
    const Histogram &serviceTime() const { return serviceLat_; }

    /**
     * Publish kernel stats (per-command-code counters, service-time
     * distribution, buffer occupancy) under @p prefix.
     */
    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

  private:
    CommandResult execute(const CommandPacket &pkt);
    CommandResult systemCommand(const CommandPacket &pkt);

    std::size_t bufferBytes_;
    std::vector<std::uint8_t> buffer_;
    std::deque<std::vector<std::uint8_t>> responses_;
    std::map<std::pair<std::uint8_t, std::uint8_t>, CommandTarget *>
        targets_;
    Cycles busyUntilCycle_ = 0;
    /// Buffer size at the last Truncated decode, so a packet waiting
    /// for its tail counts once, not once per tick.
    std::size_t lastTruncatedSize_ = 0;
    ResourceVector resources_;
    StatGroup stats_;
    Histogram serviceLat_;
    std::deque<Tick> arrivals_;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_CMD_CONTROL_KERNEL_H_
