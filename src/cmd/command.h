/**
 * @file
 * The command packet of the command-based interface (§3.3.3,
 * Figure 9): a packetized, versioned, checksummed control message that
 * replaces ad-hoc register sequences. Wire layout (32-bit words,
 * big-endian fields within words):
 *
 *   word0: Version(4) HdLen(4) PayloadLen(8) SrcID(8) DstID(8)
 *   word1: RBB ID(8) Instance ID(8) Command Code(16)
 *   word2: Options(32)
 *   data:  PayloadLen-1 words of command data
 *   trail: Checksum(16) Status(16)
 *
 * HdLen and PayloadLen are measured in 4-byte units; PayloadLen covers
 * the data words plus the trailer word, so parsers can find command
 * boundaries in a byte stream (walkthrough step 3).
 */

#ifndef HARMONIA_CMD_COMMAND_H_
#define HARMONIA_CMD_COMMAND_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cmd/command_codes.h"

namespace harmonia {

/** One command (or command-response) packet. */
struct CommandPacket {
    std::uint8_t version = 1;
    std::uint8_t srcId = kCtrlApplication;
    std::uint8_t dstId = 0;
    std::uint8_t rbbId = 0;
    std::uint8_t instanceId = 0;
    std::uint16_t commandCode = 0;
    std::uint32_t options = 0;
    std::uint16_t status = kCmdOk;  ///< meaningful in responses
    std::vector<std::uint32_t> data;

    /** Header length in 4-byte units (fixed layout). */
    static constexpr std::uint8_t kHdLenWords = 3;

    /** Serialize to wire bytes, computing the checksum. */
    std::vector<std::uint8_t> encode() const;

    /** Total encoded size in bytes. */
    std::size_t encodedSize() const
    {
        return (kHdLenWords + data.size() + 1) * 4;
    }

    std::string toString() const;
};

/** Why a decode failed. */
enum class DecodeError {
    Truncated,       ///< fewer bytes than the header demands
    BadVersion,      ///< unsupported version field
    BadHeaderLen,    ///< HdLen does not match this layout
    LengthMismatch,  ///< PayloadLen disagrees with the buffer
    BadChecksum,     ///< trailer checksum does not verify
};

const char *toString(DecodeError err);

/** Decode result: a packet or an error. */
struct DecodeOutcome {
    std::optional<CommandPacket> packet;
    std::optional<DecodeError> error;

    bool ok() const { return packet.has_value(); }
};

/**
 * Decode one packet from the front of @p bytes. @p consumed receives
 * the byte count of the packet when decoding succeeds (so a stream of
 * back-to-back commands can be walked).
 */
DecodeOutcome decodeCommand(const std::vector<std::uint8_t> &bytes,
                            std::size_t *consumed = nullptr);

/** Result of executing a command at its target. */
struct CommandResult {
    std::uint16_t status = kCmdOk;
    std::vector<std::uint32_t> data;
};

/**
 * Anything addressable by (RBB ID, Instance ID) through the unified
 * control kernel: RBBs, role modules, kernel-local services.
 */
class CommandTarget {
  public:
    virtual ~CommandTarget() = default;

    /** Execute one command; must not throw for bad user input. */
    virtual CommandResult executeCommand(std::uint16_t code,
                                         const std::vector<std::uint32_t>
                                             &data) = 0;
};

/** Build the response packet for a request. */
CommandPacket makeResponse(const CommandPacket &request,
                           const CommandResult &result);

} // namespace harmonia

#endif // HARMONIA_CMD_COMMAND_H_
