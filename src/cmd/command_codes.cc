#include "cmd/command_codes.h"

namespace harmonia {

const char *
toString(CommandCode code)
{
    switch (code) {
      case kCmdModuleStatusRead:
        return "ModuleStatusRead";
      case kCmdModuleStatusWrite:
        return "ModuleStatusWrite";
      case kCmdModuleInit:
        return "ModuleInit";
      case kCmdModuleReset:
        return "ModuleReset";
      case kCmdTableWrite:
        return "TableWrite";
      case kCmdTableRead:
        return "TableRead";
      case kCmdStatsSnapshot:
        return "StatsSnapshot";
      case kCmdQueueConfig:
        return "QueueConfig";
      case kCmdSensorRead:
        return "SensorRead";
      case kCmdPrLoad:
        return "PrLoad";
      case kCmdPrUnload:
        return "PrUnload";
      case kCmdPrStatus:
        return "PrStatus";
      case kCmdFlashErase:
        return "FlashErase";
      case kCmdTimeCount:
        return "TimeCount";
      case kCmdTelemetryList:
        return "TelemetryList";
      case kCmdTelemetrySnapshot:
        return "TelemetrySnapshot";
      case kCmdProfileSnapshot:
        return "ProfileSnapshot";
      case kCmdProfileReset:
        return "ProfileReset";
      case kCmdSloStatus:
        return "SloStatus";
      case kCmdAlertSnapshot:
        return "AlertSnapshot";
      case kCmdFlightDump:
        return "FlightDump";
      case kCmdCheckpoint:
        return "Checkpoint";
      case kCmdRestore:
        return "Restore";
      case kCmdObsSubscribe:
        return "ObsSubscribe";
      case kCmdObsDelta:
        return "ObsDelta";
    }
    return "?";
}

const char *
toString(CommandStatus status)
{
    switch (status) {
      case kCmdOk:
        return "ok";
      case kCmdUnknownCode:
        return "unknown command code";
      case kCmdBadArgument:
        return "bad argument";
      case kCmdUnknownTarget:
        return "unknown target";
      case kCmdChecksumError:
        return "checksum error";
      case kCmdInternalError:
        return "internal error";
      case kCmdMalformed:
        return "malformed packet";
      case kCmdNoResponse:
        return "no response (transport gave up)";
    }
    return "?";
}

} // namespace harmonia
