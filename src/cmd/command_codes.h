/**
 * @file
 * Command codes for the command-based interface (§3.3.3, Figure 9).
 * The low codes are the paper's published examples; higher codes are
 * the extension space each RBB populates for its operational needs.
 */

#ifndef HARMONIA_CMD_COMMAND_CODES_H_
#define HARMONIA_CMD_COMMAND_CODES_H_

#include <cstdint>

namespace harmonia {

/** Well-known command codes (Figure 9). */
enum CommandCode : std::uint16_t {
    kCmdModuleStatusRead = 0x0000,
    kCmdModuleStatusWrite = 0x0001,
    kCmdModuleInit = 0x0002,
    kCmdModuleReset = 0x0003,
    kCmdTableWrite = 0x0004,
    // Extension space used by Harmonia's RBBs and tooling.
    kCmdTableRead = 0x0005,
    kCmdStatsSnapshot = 0x0006,
    kCmdQueueConfig = 0x0007,
    kCmdSensorRead = 0x0008,
    kCmdFlashErase = 0x0010,
    kCmdTimeCount = 0x0011,
    // Partial-reconfiguration management (multi-tenancy, §6).
    kCmdPrLoad = 0x0020,
    kCmdPrUnload = 0x0021,
    kCmdPrStatus = 0x0022,
    // Telemetry plane: enumerate / read the unified metrics registry
    // the same packetized way the BMC reads sensors.
    kCmdTelemetryList = 0x0030,
    kCmdTelemetrySnapshot = 0x0031,
    // Causal-profiling plane: read / reset the cycle-attribution
    // profile folded from the span trace.
    kCmdProfileSnapshot = 0x0032,
    kCmdProfileReset = 0x0033,
    // Operational-intelligence plane: SLO/alert state and the flight
    // recorder, queryable the same packetized way.
    kCmdSloStatus = 0x0034,
    kCmdAlertSnapshot = 0x0035,
    kCmdFlightDump = 0x0036,
    // High-availability plane: chunked state checkpoint/restore so a
    // drained module can be re-seeded on a standby device.
    kCmdCheckpoint = 0x0037,
    kCmdRestore = 0x0038,
    // Fleet-observability federation: streaming telemetry
    // subscriptions. Subscribe negotiates a frozen name-sorted index
    // map (optionally prefix-filtered); Delta moves only the series
    // whose encoded value changed since the last drained delta, with
    // sequence numbers for gap detection and an epoch that bumps when
    // the index map changes.
    kCmdObsSubscribe = 0x0039,
    kCmdObsDelta = 0x003a,
};

/** Command execution status in response packets. */
enum CommandStatus : std::uint16_t {
    kCmdOk = 0x0000,
    kCmdUnknownCode = 0x0001,
    kCmdBadArgument = 0x0002,
    kCmdUnknownTarget = 0x0003,
    kCmdChecksumError = 0x0004,
    kCmdInternalError = 0x0005,
    kCmdMalformed = 0x0006,  ///< undecodable request NACKed by kernel
    // Statuses >= 0x0100 are driver-synthesized: the transport (not
    // the kernel) failed and every recovery attempt was exhausted.
    kCmdNoResponse = 0x0100,
};

/** RBB identifiers used in the DstID/RBB ID routing fields. */
enum RbbId : std::uint8_t {
    kRbbNetwork = 0x01,
    kRbbMemory = 0x02,
    kRbbHost = 0x03,
    kRbbTelemetry = 0x7c,  ///< unified telemetry plane
    kRbbHealth = 0x7d,  ///< board health monitor
    kRbbPrCtrl = 0x7e,  ///< partial-reconfiguration controller
    kRbbSystem = 0x7f,  ///< kernel-local services (flash, time)
};

/** Well-known software controller ids (SrcID). */
enum ControllerId : std::uint8_t {
    kCtrlApplication = 0x01,
    kCtrlBmc = 0x02,
    kCtrlStandaloneTool = 0x03,
};

const char *toString(CommandCode code);
const char *toString(CommandStatus status);

} // namespace harmonia

#endif // HARMONIA_CMD_COMMAND_CODES_H_
