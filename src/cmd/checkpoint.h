/**
 * @file
 * The checkpoint codec: a versioned, deterministic word-stream format
 * for portable module state (role tables, RBB-visible shell knobs),
 * plus the chunked transfer service behind the kCmdCheckpoint /
 * kCmdRestore wire commands. The host drains a module, pulls its
 * state blob over the command plane in 12-word chunks, and later
 * re-seeds a twin — possibly on a different vendor's card — from the
 * same blob. Decoding is total: a truncated, corrupted, version- or
 * kind-skewed blob yields a diagnostic CheckpointError, never a
 * crash.
 *
 * Envelope layout (uint32 words, little end of each field first):
 *
 *   [0] magic 'HCKP'        [1] codec version
 *   [2] kind id (FNV-1a of the module's kind name)
 *   [3] stat count, then per stat:
 *       name length | packed name bytes (4/word) | value lo | hi
 *   [.] payload word count, then the module-specific payload
 *   [last] FNV-1a checksum over every preceding word
 *
 * Versioning rules (DESIGN.md §14): bump kCheckpointVersion on any
 * layout change; a restore target accepts exactly its own version
 * and rejects everything else as BadVersion — state blobs are
 * failover currency inside one fleet generation, not an archival
 * format.
 */

#ifndef HARMONIA_CMD_CHECKPOINT_H_
#define HARMONIA_CMD_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cmd/command.h"

namespace harmonia {

/** 'HCKP' — first word of every checkpoint blob. */
constexpr std::uint32_t kCheckpointMagic = 0x48434b50;

/** Codec generation; restore accepts exactly this version. */
constexpr std::uint32_t kCheckpointVersion = 1;

/** Why a blob was rejected (0 == accepted). */
enum class CheckpointError : std::uint16_t {
    Ok = 0,
    BadMagic,      ///< first word is not 'HCKP'
    BadVersion,    ///< codec version skew between source and target
    KindMismatch,  ///< blob belongs to a different module kind
    Truncated,     ///< envelope runs past the end of the blob
    BadChecksum,   ///< trailer does not match the body
    BadPayload,    ///< envelope fine, module payload unusable
};

const char *toString(CheckpointError err);

/** Stable identity of a module kind: FNV-1a over its kind name. */
std::uint32_t checkpointKindId(const std::string &kind_name);

/** The trailer value sealing @p words (FNV-1a over every word). */
std::uint32_t checkpointChecksum(const std::vector<std::uint32_t> &words);

/** Decoded envelope contents. */
struct CheckpointImage {
    std::uint32_t kindId = 0;
    std::vector<std::pair<std::string, std::uint64_t>> stats;
    std::vector<std::uint32_t> payload;
};

/** Build a sealed blob from counters + module payload. */
std::vector<std::uint32_t>
encodeCheckpoint(std::uint32_t kind_id,
                 const std::vector<std::pair<std::string,
                                             std::uint64_t>> &stats,
                 const std::vector<std::uint32_t> &payload);

/**
 * Validate and unpack @p blob. @p expected_kind_id gates KindMismatch
 * (pass 0 to accept any kind). On error @p out is untouched.
 */
CheckpointError
decodeCheckpoint(const std::vector<std::uint32_t> &blob,
                 std::uint32_t expected_kind_id, CheckpointImage *out);

/**
 * The chunked wire service a CommandTarget delegates kCmdCheckpoint /
 * kCmdRestore to. Checkpoint requests carry [offset]; offset 0
 * rebuilds the blob via the snapshot callback and caches it so later
 * chunks read a consistent image. Responses carry
 * [total, chunk words...]. Restore requests carry
 * [total, offset, chunk words...]; offset 0 resets the staging
 * buffer, and the apply callback runs once the staged blob is
 * complete — its CheckpointError rides back in the response data.
 */
class CheckpointStreamer {
  public:
    /** Chunk budget per packet (the planned-command payload limit). */
    static constexpr std::size_t kChunkWords = 12;

    /** Staging bound: a claimed total past this is BadArgument. */
    static constexpr std::size_t kMaxBlobWords = 1u << 20;

    CommandResult
    serveCheckpoint(const std::vector<std::uint32_t> &req,
                    const std::function<std::vector<std::uint32_t>()>
                        &snapshot);

    CommandResult
    serveRestore(const std::vector<std::uint32_t> &req,
                 const std::function<CheckpointError(
                     const std::vector<std::uint32_t> &)> &apply);

  private:
    std::vector<std::uint32_t> readCache_;
    std::vector<std::uint32_t> staging_;
    std::size_t expected_ = 0;
    // Last applied restore, so a retried final chunk (the apply ran
    // but its ack was lost in transit) is re-acked, not re-staged.
    std::size_t appliedTotal_ = 0;
    std::uint32_t appliedErr_ = 0;
    bool hasApplied_ = false;
};

} // namespace harmonia

#endif // HARMONIA_CMD_CHECKPOINT_H_
