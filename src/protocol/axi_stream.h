/**
 * @file
 * AXI4-Stream beat model — the streaming protocol spoken by the
 * Xilinx-family IPs (CMAC, QDMA stream ports). Framing is tkeep+tlast:
 * there is no start-of-packet marker and byte validity is a per-byte
 * strobe.
 */

#ifndef HARMONIA_PROTOCOL_AXI_STREAM_H_
#define HARMONIA_PROTOCOL_AXI_STREAM_H_

#include <cstdint>
#include <vector>

namespace harmonia {

/** One AXI4-Stream data beat. */
struct AxisBeat {
    std::vector<std::uint8_t> tdata;  ///< bus-width bytes (padded)
    std::uint64_t tkeep = 0;          ///< byte-valid strobes, bit per byte
    bool tlast = false;               ///< end of packet
    std::uint64_t tuser = 0;          ///< sideband (errors, timestamps)
};

/**
 * Segment @p payload into AXI4-Stream beats on a @p width_bytes bus
 * (width <= 64 so tkeep fits one word). Every beat's tdata is exactly
 * bus width, zero-padded past the strobed bytes.
 */
std::vector<AxisBeat>
packetToAxis(const std::vector<std::uint8_t> &payload,
             std::size_t width_bytes);

/**
 * Reassemble a packet from beats. Enforces the AXI4-Stream packet
 * rules the wrapper relies on: contiguous low-aligned tkeep, full
 * strobes on all but the tlast beat, tlast terminating the vector.
 */
std::vector<std::uint8_t> axisToPacket(const std::vector<AxisBeat> &beats);

/** Count of valid bytes in a beat (population of tkeep). */
std::size_t axisValidBytes(const AxisBeat &beat);

} // namespace harmonia

#endif // HARMONIA_PROTOCOL_AXI_STREAM_H_
