/**
 * @file
 * AXI4 memory-mapped transaction model (Xilinx-family DDR/HBM/DMA
 * ports). AXI encodes a burst as (arlen = beats-1, arsize = log2 of
 * bytes per beat) with independent read/write address channels.
 */

#ifndef HARMONIA_PROTOCOL_AXI_MM_H_
#define HARMONIA_PROTOCOL_AXI_MM_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace harmonia {

/** AXI burst types; the models use INCR exclusively, like the IPs. */
enum class AxiBurst : std::uint8_t { Fixed = 0, Incr = 1, Wrap = 2 };

/** An AXI4 address-channel command (AR or AW). */
struct AxiMmCommand {
    Addr addr = 0;
    std::uint8_t len = 0;     ///< beats - 1 (0..255)
    std::uint8_t size = 0;    ///< log2(bytes per beat), 0..7
    AxiBurst burst = AxiBurst::Incr;
    std::uint16_t id = 0;
    bool write = false;

    /** Beats in the burst. */
    unsigned beats() const { return static_cast<unsigned>(len) + 1; }

    /** Bytes per beat. */
    unsigned beatBytes() const { return 1u << size; }

    /** Total burst bytes. */
    std::uint64_t totalBytes() const
    {
        return static_cast<std::uint64_t>(beats()) * beatBytes();
    }
};

/** AXI response codes. */
enum class AxiResp : std::uint8_t { Okay = 0, ExOkay = 1, SlvErr = 2,
                                    DecErr = 3 };

/** A completed AXI transaction (B or last R). */
struct AxiMmResponse {
    std::uint16_t id = 0;
    AxiResp resp = AxiResp::Okay;
    std::vector<std::uint8_t> data;  ///< read data; empty for writes
};

/**
 * Build the AXI command(s) for a transfer of @p bytes at @p addr on a
 * bus of @p beat_bytes. Transfers longer than 256 beats are split into
 * multiple bursts (AXI4 burst-length limit).
 */
std::vector<AxiMmCommand>
axiBurstsFor(Addr addr, std::uint64_t bytes, unsigned beat_bytes,
             bool write, std::uint16_t id = 0);

} // namespace harmonia

#endif // HARMONIA_PROTOCOL_AXI_MM_H_
