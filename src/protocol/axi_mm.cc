#include "protocol/axi_mm.h"

#include "common/bits.h"
#include "common/logging.h"

namespace harmonia {

std::vector<AxiMmCommand>
axiBurstsFor(Addr addr, std::uint64_t bytes, unsigned beat_bytes,
             bool write, std::uint16_t id)
{
    if (!isPowerOf2(beat_bytes) || beat_bytes > 128)
        fatal("AXI beat size must be a power of two <= 128 (got %u)",
              beat_bytes);
    if (bytes == 0)
        fatal("AXI burst of zero bytes");

    const std::uint64_t total_beats = ceilDiv(bytes, beat_bytes);
    std::vector<AxiMmCommand> cmds;
    Addr cur = addr;
    std::uint64_t remaining = total_beats;
    while (remaining > 0) {
        const std::uint64_t n = std::min<std::uint64_t>(remaining, 256);
        AxiMmCommand c;
        c.addr = cur;
        c.len = static_cast<std::uint8_t>(n - 1);
        c.size = static_cast<std::uint8_t>(floorLog2(beat_bytes));
        c.burst = AxiBurst::Incr;
        c.id = id;
        c.write = write;
        cmds.push_back(c);
        cur += n * beat_bytes;
        remaining -= n;
    }
    return cmds;
}

} // namespace harmonia
