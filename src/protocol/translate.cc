#include "protocol/translate.h"

#include "common/bits.h"
#include "common/logging.h"

namespace harmonia {

AvalonStBeat
axisToAvalonSt(const AxisBeat &beat, bool is_first)
{
    const std::size_t width = beat.tdata.size();
    const std::size_t valid = axisValidBytes(beat);
    if (beat.tkeep != mask(static_cast<unsigned>(valid)))
        fatal("axisToAvalonSt: non-contiguous tkeep");
    if (valid == 0)
        fatal("axisToAvalonSt: null beat (tkeep == 0)");

    AvalonStBeat out;
    out.data = beat.tdata;
    out.sop = is_first;
    out.eop = beat.tlast;
    out.empty = beat.tlast
        ? static_cast<std::uint8_t>(width - valid) : 0;
    if (!beat.tlast && valid != width)
        fatal("axisToAvalonSt: partial strobes before tlast");
    return out;
}

AxisBeat
avalonStToAxis(const AvalonStBeat &beat)
{
    const std::size_t width = beat.data.size();
    const std::size_t valid = avalonStValidBytes(beat);
    if (!beat.eop && beat.empty != 0)
        fatal("avalonStToAxis: empty set without eop");

    AxisBeat out;
    out.tdata = beat.data;
    out.tkeep = mask(static_cast<unsigned>(valid));
    out.tlast = beat.eop;
    (void)width;
    return out;
}

std::vector<AvalonStBeat>
axisPacketToAvalonSt(const std::vector<AxisBeat> &beats)
{
    std::vector<AvalonStBeat> out;
    out.reserve(beats.size());
    for (std::size_t i = 0; i < beats.size(); ++i)
        out.push_back(axisToAvalonSt(beats[i], i == 0));
    return out;
}

std::vector<AxisBeat>
avalonStPacketToAxis(const std::vector<AvalonStBeat> &beats)
{
    std::vector<AxisBeat> out;
    out.reserve(beats.size());
    for (const auto &b : beats)
        out.push_back(avalonStToAxis(b));
    return out;
}

} // namespace harmonia
