#include "protocol/axi_stream.h"

#include <bit>

#include "common/bits.h"
#include "common/logging.h"

namespace harmonia {

std::vector<AxisBeat>
packetToAxis(const std::vector<std::uint8_t> &payload,
             std::size_t width_bytes)
{
    if (width_bytes == 0 || width_bytes > 64)
        fatal("AXIS width must be 1..64 bytes (got %zu)", width_bytes);
    if (payload.empty())
        fatal("AXI4-Stream packets must carry at least one byte");

    std::vector<AxisBeat> beats;
    beats.reserve(ceilDiv(payload.size(), width_bytes));
    for (std::size_t off = 0; off < payload.size(); off += width_bytes) {
        const std::size_t n =
            std::min(width_bytes, payload.size() - off);
        AxisBeat b;
        b.tdata.assign(payload.begin() + static_cast<long>(off),
                       payload.begin() + static_cast<long>(off + n));
        b.tdata.resize(width_bytes, 0);
        b.tkeep = mask(static_cast<unsigned>(n));
        b.tlast = off + n == payload.size();
        beats.push_back(std::move(b));
    }
    return beats;
}

std::vector<std::uint8_t>
axisToPacket(const std::vector<AxisBeat> &beats)
{
    if (beats.empty())
        fatal("axisToPacket: empty beat vector");

    std::vector<std::uint8_t> payload;
    for (std::size_t i = 0; i < beats.size(); ++i) {
        const AxisBeat &b = beats[i];
        const std::size_t width = b.tdata.size();
        const std::size_t valid = axisValidBytes(b);
        if (b.tkeep != mask(static_cast<unsigned>(valid)))
            fatal("AXIS beat %zu: tkeep not contiguous low-aligned", i);
        const bool is_final = i + 1 == beats.size();
        if (!is_final && valid != width)
            fatal("AXIS beat %zu: partial strobes before tlast", i);
        if (b.tlast != is_final)
            fatal("AXIS beat %zu: tlast %d but final=%d", i,
                  b.tlast ? 1 : 0, is_final ? 1 : 0);
        payload.insert(payload.end(), b.tdata.begin(),
                       b.tdata.begin() + static_cast<long>(valid));
    }
    return payload;
}

std::size_t
axisValidBytes(const AxisBeat &beat)
{
    return static_cast<std::size_t>(std::popcount(beat.tkeep));
}

} // namespace harmonia
