/**
 * @file
 * Avalon-MM transaction model (Intel-family EMIF/HBM/MCDMA ports).
 * Avalon encodes a burst as a direct beat count (`burstcount`, 1-based)
 * with per-byte `byteenable` lanes and a shared command channel —
 * structurally different from AXI's split channels and len-1 encoding,
 * which is exactly the disparity the interface wrapper hides.
 */

#ifndef HARMONIA_PROTOCOL_AVALON_MM_H_
#define HARMONIA_PROTOCOL_AVALON_MM_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace harmonia {

/** An Avalon-MM command. */
struct AvalonMmCommand {
    Addr address = 0;
    std::uint16_t burstcount = 1;   ///< beats, 1-based (1..2048)
    std::uint64_t byteenable = 0;   ///< lane enables, bit per byte
    bool write = false;
};

/** An Avalon-MM read return (readdatavalid beats collected). */
struct AvalonMmResponse {
    std::vector<std::uint8_t> data;
    bool error = false;
};

/**
 * Build Avalon commands for a transfer of @p bytes at @p addr on a bus
 * of @p beat_bytes. Bursts are capped at 2048 beats per the spec's
 * maximum burstcount width.
 */
std::vector<AvalonMmCommand>
avalonBurstsFor(Addr addr, std::uint64_t bytes, unsigned beat_bytes,
                bool write);

} // namespace harmonia

#endif // HARMONIA_PROTOCOL_AVALON_MM_H_
