#include "protocol/avalon_mm.h"

#include "common/bits.h"
#include "common/logging.h"

namespace harmonia {

std::vector<AvalonMmCommand>
avalonBurstsFor(Addr addr, std::uint64_t bytes, unsigned beat_bytes,
                bool write)
{
    if (!isPowerOf2(beat_bytes) || beat_bytes > 64)
        fatal("Avalon beat size must be a power of two <= 64 (got %u)",
              beat_bytes);
    if (bytes == 0)
        fatal("Avalon burst of zero bytes");

    const std::uint64_t total_beats = ceilDiv(bytes, beat_bytes);
    std::vector<AvalonMmCommand> cmds;
    Addr cur = addr;
    std::uint64_t remaining = total_beats;
    while (remaining > 0) {
        const std::uint64_t n = std::min<std::uint64_t>(remaining, 2048);
        AvalonMmCommand c;
        c.address = cur;
        c.burstcount = static_cast<std::uint16_t>(n);
        c.byteenable = mask(beat_bytes);
        c.write = write;
        cmds.push_back(c);
        cur += n * beat_bytes;
        remaining -= n;
    }
    return cmds;
}

} // namespace harmonia
