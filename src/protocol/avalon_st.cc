#include "protocol/avalon_st.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"

namespace harmonia {

std::vector<AvalonStBeat>
packetToAvalonSt(const std::vector<std::uint8_t> &payload,
                 std::size_t width_bytes, std::uint8_t channel)
{
    if (width_bytes == 0 || width_bytes > 255)
        fatal("Avalon-ST width must be 1..255 bytes (got %zu)",
              width_bytes);
    if (payload.empty())
        fatal("Avalon-ST packets must carry at least one byte");

    std::vector<AvalonStBeat> beats;
    beats.reserve(ceilDiv(payload.size(), width_bytes));
    for (std::size_t off = 0; off < payload.size(); off += width_bytes) {
        const std::size_t n =
            std::min(width_bytes, payload.size() - off);
        AvalonStBeat b;
        b.data.assign(payload.begin() + static_cast<long>(off),
                      payload.begin() + static_cast<long>(off + n));
        b.data.resize(width_bytes, 0);
        b.sop = off == 0;
        b.eop = off + n == payload.size();
        b.empty =
            b.eop ? static_cast<std::uint8_t>(width_bytes - n) : 0;
        b.channel = channel;
        beats.push_back(std::move(b));
    }
    return beats;
}

std::vector<std::uint8_t>
avalonStToPacket(const std::vector<AvalonStBeat> &beats)
{
    if (beats.empty())
        fatal("avalonStToPacket: empty beat vector");

    std::vector<std::uint8_t> payload;
    for (std::size_t i = 0; i < beats.size(); ++i) {
        const AvalonStBeat &b = beats[i];
        const bool is_first = i == 0;
        const bool is_final = i + 1 == beats.size();
        if (b.sop != is_first)
            fatal("Avalon-ST beat %zu: sop %d but first=%d", i,
                  b.sop ? 1 : 0, is_first ? 1 : 0);
        if (b.eop != is_final)
            fatal("Avalon-ST beat %zu: eop %d but final=%d", i,
                  b.eop ? 1 : 0, is_final ? 1 : 0);
        if (!b.eop && b.empty != 0)
            fatal("Avalon-ST beat %zu: empty set without eop", i);
        if (b.empty >= b.data.size() && b.data.size() > 0 && b.empty != 0)
            fatal("Avalon-ST beat %zu: empty %u >= width %zu", i,
                  b.empty, b.data.size());
        const std::size_t valid = avalonStValidBytes(b);
        payload.insert(payload.end(), b.data.begin(),
                       b.data.begin() + static_cast<long>(valid));
    }
    return payload;
}

std::size_t
avalonStValidBytes(const AvalonStBeat &beat)
{
    return beat.data.size() - beat.empty;
}

} // namespace harmonia
