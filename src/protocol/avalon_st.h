/**
 * @file
 * Avalon-ST beat model — the streaming protocol spoken by Intel-family
 * IPs (E-tile Ethernet, MCDMA stream ports). Framing differs from AXI:
 * explicit startofpacket/endofpacket markers and an `empty` count of
 * invalid trailing bytes on the final beat, instead of byte strobes.
 */

#ifndef HARMONIA_PROTOCOL_AVALON_ST_H_
#define HARMONIA_PROTOCOL_AVALON_ST_H_

#include <cstdint>
#include <vector>

namespace harmonia {

/** One Avalon-ST data beat. */
struct AvalonStBeat {
    std::vector<std::uint8_t> data;  ///< bus-width bytes (padded)
    bool sop = false;                ///< start of packet
    bool eop = false;                ///< end of packet
    std::uint8_t empty = 0;          ///< invalid trailing bytes (eop only)
    std::uint8_t channel = 0;        ///< logical channel number
    bool error = false;              ///< error sideband
};

/**
 * Segment @p payload into Avalon-ST beats on a @p width_bytes bus.
 * The first beat carries sop, the last carries eop with the correct
 * `empty` count.
 */
std::vector<AvalonStBeat>
packetToAvalonSt(const std::vector<std::uint8_t> &payload,
                 std::size_t width_bytes, std::uint8_t channel = 0);

/**
 * Reassemble a packet, enforcing Avalon-ST rules: sop only on the
 * first beat, eop only on the last, empty only valid with eop.
 */
std::vector<std::uint8_t>
avalonStToPacket(const std::vector<AvalonStBeat> &beats);

/** Count of valid bytes in a beat. */
std::size_t avalonStValidBytes(const AvalonStBeat &beat);

} // namespace harmonia

#endif // HARMONIA_PROTOCOL_AVALON_ST_H_
