/**
 * @file
 * Beat-level translation between the vendor streaming protocols. These
 * are the pure conversion functions inside the lightweight interface
 * wrappers (§3.2): payload bytes are preserved bit-exactly while the
 * framing convention (tkeep/tlast vs sop/eop/empty) is re-expressed.
 */

#ifndef HARMONIA_PROTOCOL_TRANSLATE_H_
#define HARMONIA_PROTOCOL_TRANSLATE_H_

#include <vector>

#include "protocol/avalon_st.h"
#include "protocol/axi_stream.h"

namespace harmonia {

/**
 * Translate one AXI4-Stream beat into Avalon-ST framing.
 * @param beat     The AXIS beat (contiguous tkeep required).
 * @param is_first True when this beat starts a packet — AXIS carries
 *                 no sop, so the wrapper tracks packet state.
 */
AvalonStBeat axisToAvalonSt(const AxisBeat &beat, bool is_first);

/** Translate one Avalon-ST beat into AXI4-Stream framing. */
AxisBeat avalonStToAxis(const AvalonStBeat &beat);

/** Translate a whole packet's beats AXIS -> Avalon-ST. */
std::vector<AvalonStBeat>
axisPacketToAvalonSt(const std::vector<AxisBeat> &beats);

/** Translate a whole packet's beats Avalon-ST -> AXIS. */
std::vector<AxisBeat>
avalonStPacketToAxis(const std::vector<AvalonStBeat> &beats);

} // namespace harmonia

#endif // HARMONIA_PROTOCOL_TRANSLATE_H_
