/**
 * @file
 * Host RBB (§3.3.1): a vendor PCIe DMA instance plus the multi-queue
 * isolation Ex-function — 1K DMA queues with per-queue active/inactive
 * state, where only active queues are scheduled (raising the
 * scheduling rate) — and per-queue monitoring (depth, packets, speed).
 */

#ifndef HARMONIA_SHELL_HOST_RBB_H_
#define HARMONIA_SHELL_HOST_RBB_H_

#include <deque>
#include <memory>

#include "ip/dma_ip.h"
#include "rtl/arbiter.h"
#include "rtl/fifo.h"
#include "shell/rbb.h"
#include "sim/engine.h"
#include "wrapper/stream_wrapper.h"

namespace harmonia {

/**
 * The Host RBB. mem map and stream data interfaces toward roles, a
 * 32-bit reg control interface, and the command transport's control
 * queue pass-through.
 */
class HostRbb : public Rbb {
  public:
    /** Paper: "1K DMA queues to isolate transmitted data". */
    static constexpr unsigned kDefaultQueues = 1024;

    /** Ex-function + control/monitor + wrapper soft logic one
     *  instance adds, available before construction (DRC). */
    static ResourceVector plannedSoftLogic();

    HostRbb(Engine &engine, Clock *rbb_clk, Vendor chip_vendor,
            unsigned pcie_gen, unsigned lanes,
            unsigned num_queues = kDefaultQueues,
            std::uint8_t instance_id = 0,
            DmaEngineStyle style = DmaEngineStyle::ScatterGather);

    DmaIp &dma() { return *dma_; }
    IpBlock &instance() override { return *dma_; }
    using Rbb::instance;

    unsigned numQueues() const { return numQueues_; }

    // --- Multi-queue isolation Ex-function. ---
    void setQueueActive(std::uint16_t queue, bool active);
    bool queueActive(std::uint16_t queue) const;
    std::size_t activeQueueCount() const
    {
        return arbiter_.activeCount();
    }

    /**
     * Submit a transfer on a tenant queue. Rejected (false) when the
     * queue is inactive or its staging FIFO is full.
     */
    bool submit(DmaDir dir, std::uint16_t queue, std::uint32_t bytes,
                std::uint64_t id = 0);

    bool hasCompletion() const { return !out_.empty(); }
    DmaCompletion popCompletion();

    /** Pending work on a queue (staging + engine). */
    std::size_t queueDepth(std::uint16_t queue) const;

    /** Inject control-channel traffic (the command transport). */
    bool submitControl(std::uint32_t bytes, std::uint64_t id);

    void tick() override;

    /** Nothing staged for the scheduler and no engine completion to
     *  collect. The DMA model's own wake covers in-flight transfers. */
    bool idle() const override
    {
        if (dma_->hasCompletion())
            return false;
        for (const auto &q : staging_)
            if (!q.empty())
                return false;
        return true;
    }

    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix) override;

    std::size_t registerInitOpCount() const override;
    std::size_t commandInitCount() const override;

    ResourceVector wrapperResources() const override
    {
        return wrapper_.resources();
    }

  protected:
    CommandResult
    queueConfig(const std::vector<std::uint32_t> &data) override;
    void onReset() override;

  private:
    void defineCtrlRegs();

    std::unique_ptr<DmaIp> dma_;
    StreamWrapper wrapper_;
    unsigned numQueues_;
    std::vector<Fifo<DmaRequest>> staging_;
    ActiveListArbiter arbiter_;
    std::deque<DmaCompletion> out_;
    std::size_t queuesConfigured_ = 0;
};

} // namespace harmonia

#endif // HARMONIA_SHELL_HOST_RBB_H_
