#include "shell/host_rbb.h"

#include "common/logging.h"

namespace harmonia {

namespace {
// Multi-queue isolation state + scheduler soft logic.
const ResourceVector kExResources{6800, 8200, 52, 0, 0};
// Reusable control + monitoring logic.
const ResourceVector kCmResources{2400, 3300, 4, 0, 0};
} // namespace

ResourceVector
HostRbb::plannedSoftLogic()
{
    return kExResources + kCmResources +
           StreamWrapper::plannedResources();
}

HostRbb::HostRbb(Engine &engine, Clock *rbb_clk, Vendor chip_vendor,
                 unsigned pcie_gen, unsigned lanes, unsigned num_queues,
                 std::uint8_t instance_id, DmaEngineStyle style)
    : Rbb(format("host_rbb%u", instance_id), RbbKind::Host,
          instance_id),
      dma_(makeDma(chip_vendor, pcie_gen, lanes, num_queues,
                   format("h%u", instance_id), style)),
      wrapper_(name() + ".wrap"), numQueues_(num_queues),
      arbiter_(num_queues)
{
    staging_.reserve(num_queues);
    for (unsigned q = 0; q < num_queues; ++q)
        staging_.emplace_back(16);

    defineCtrlRegs();

    setExResources(kExResources);
    setCmResources(kCmResources);
    setReusableWeights(12240, 1500, 920);

    engine.add(this, rbb_clk);
    engine.add(&wrapper_, rbb_clk);
    engine.add(dma_.get(), rbb_clk);
}

void
HostRbb::defineCtrlRegs()
{
    Addr a = 0;
    auto def = [&](const char *n, bool ro = false) {
        ctrlRegs().define({n, a, ro, ""});
        a += 4;
    };
    def("QUEUE_SEL");
    def("QUEUE_RING_LO");
    def("QUEUE_RING_HI");
    def("QUEUE_CTRL");
    def("MON_ACTIVE_QUEUES", true);
    def("MON_SUBMITTED", true);
    def("MON_REJECTED", true);
    def("MON_COMPLETED", true);
    def("MON_BYTES", true);
    def("MON_QUEUE_DEPTH", true);

    ctrlRegs().onWrite(
        ctrlRegs().addrOf("QUEUE_CTRL"), [this](std::uint32_t v) {
            const std::uint32_t q =
                ctrlRegs().peek(ctrlRegs().addrOf("QUEUE_SEL"));
            if (q < numQueues_)
                setQueueActive(static_cast<std::uint16_t>(q), v & 1);
        });

    ctrlRegs().onRead(ctrlRegs().addrOf("MON_ACTIVE_QUEUES"),
                      [this](std::uint32_t) {
                          return static_cast<std::uint32_t>(
                              arbiter_.activeCount());
                      });
    auto bind = [&](const char *reg, const char *stat) {
        ctrlRegs().onRead(ctrlRegs().addrOf(reg),
                          [this, stat](std::uint32_t) {
                              return static_cast<std::uint32_t>(
                                  monitor().value(stat));
                          });
    };
    bind("MON_SUBMITTED", "submitted");
    bind("MON_REJECTED", "rejected");
    bind("MON_COMPLETED", "completed");
    bind("MON_BYTES", "bytes");
    ctrlRegs().onRead(
        ctrlRegs().addrOf("MON_QUEUE_DEPTH"), [this](std::uint32_t) {
            const std::uint32_t q =
                ctrlRegs().peek(ctrlRegs().addrOf("QUEUE_SEL"));
            return q < numQueues_
                       ? static_cast<std::uint32_t>(queueDepth(
                             static_cast<std::uint16_t>(q)))
                       : 0u;
        });
}

void
HostRbb::setQueueActive(std::uint16_t queue, bool active)
{
    if (queue >= numQueues_)
        fatal("queue %u out of range (%u)", queue, numQueues_);
    if (active) {
        if (!arbiter_.isActive(queue))
            ++queuesConfigured_;
        arbiter_.activate(queue);
    } else {
        arbiter_.deactivate(queue);
    }
}

bool
HostRbb::queueActive(std::uint16_t queue) const
{
    return arbiter_.isActive(queue);
}

bool
HostRbb::submit(DmaDir dir, std::uint16_t queue, std::uint32_t bytes,
                std::uint64_t id)
{
    noteMutation();
    if (queue >= numQueues_)
        fatal("queue %u out of range (%u)", queue, numQueues_);
    // Per-cause reject counters: an inactive queue is a tenant
    // configuration problem, a full staging FIFO is back-pressure —
    // they call for different fixes, so they are counted apart (the
    // aggregate feeds the MON_REJECTED register).
    if (!arbiter_.isActive(queue)) {
        monitor().counter("rejected").inc();
        monitor().counter("rejected_inactive").inc();
        return false;
    }
    if (!staging_[queue].canPush()) {
        monitor().counter("rejected").inc();
        monitor().counter("rejected_backpressure").inc();
        return false;
    }
    DmaRequest req;
    req.dir = dir;
    req.queue = queue;
    req.bytes = bytes;
    req.issued = now();
    req.id = id;
    staging_[queue].push(req);
    monitor().counter("submitted").inc();
    return true;
}

bool
HostRbb::submitControl(std::uint32_t bytes, std::uint64_t id)
{
    noteMutation();
    DmaRequest req;
    req.dir = DmaDir::H2C;
    req.bytes = bytes;
    req.issued = now();
    req.id = id;
    req.control = true;
    return dma_->post(req);
}

DmaCompletion
HostRbb::popCompletion()
{
    if (out_.empty())
        fatal("HostRbb '%s': popCompletion with none pending",
              name().c_str());
    DmaCompletion c = out_.front();
    out_.pop_front();
    return c;
}

std::size_t
HostRbb::queueDepth(std::uint16_t queue) const
{
    if (queue >= numQueues_)
        fatal("queue %u out of range (%u)", queue, numQueues_);
    return staging_[queue].size() + dma_->queueDepth(queue);
}

void
HostRbb::tick()
{
    // Schedule active queues into the DMA engine. Several grants per
    // cycle model the scheduler's multi-dequeue datapath.
    for (int grants = 0; grants < 4; ++grants) {
        auto slot = arbiter_.grant([this](std::size_t q) {
            return staging_[q].canPop();
        });
        if (!slot.has_value())
            break;
        const std::size_t q = *slot;
        if (!dma_->post(staging_[q].front()))
            break;  // engine back-pressure; retry next cycle
        staging_[q].pop();
    }

    // Collect completions (control-channel completions surface too).
    while (dma_->hasCompletion()) {
        DmaCompletion c = dma_->popCompletion();
        monitor().counter("completed").inc();
        monitor().counter("bytes").inc(c.request.bytes);
        out_.push_back(c);
    }
}

void
HostRbb::registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix)
{
    Rbb::registerTelemetry(reg, prefix);
    wrapper_.registerTelemetry(reg, prefix + "/wrapper");
    telemetryHandle().addGauge(prefix + "/active_queues", [this] {
        return static_cast<double>(activeQueueCount());
    });
    telemetryHandle().addGauge(prefix + "/completions_pending",
                               [this] {
        return static_cast<double>(out_.size());
    });
}

std::size_t
HostRbb::registerInitOpCount() const
{
    // Instance recipe + per-configured-queue context programming
    // (select, control, ring base, producer index).
    return instance().initSequence().size() + 4 * queuesConfigured_;
}

std::size_t
HostRbb::commandInitCount() const
{
    // ModuleInit + bulk QueueConfig commands (ranges of queues).
    return 1 + std::max<std::size_t>(1, queuesConfigured_ / 256);
}

CommandResult
HostRbb::queueConfig(const std::vector<std::uint32_t> &data)
{
    // data[0]=first queue, data[1]=count, data[2]=active flag.
    if (data.size() < 3)
        return {kCmdBadArgument, {}};
    const std::uint32_t first = data[0];
    const std::uint32_t count = data[1];
    if (first + count > numQueues_)
        return {kCmdBadArgument, {}};
    for (std::uint32_t q = first; q < first + count; ++q)
        setQueueActive(static_cast<std::uint16_t>(q), data[2] & 1);
    return {kCmdOk, {}};
}

void
HostRbb::onReset()
{
    for (unsigned q = 0; q < numQueues_; ++q) {
        staging_[q].clear();
        arbiter_.deactivate(q);
    }
    out_.clear();
    queuesConfigured_ = 0;
}

} // namespace harmonia
