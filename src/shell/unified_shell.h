/**
 * @file
 * The Harmonia shell: a composition of RBBs, interface wrappers, the
 * reg interconnect and the unified control kernel on one FPGA device.
 * Build it unified (every capability of the board) or tailored to a
 * role's requirements; either way the role and host software see the
 * same abstraction.
 */

#ifndef HARMONIA_SHELL_UNIFIED_SHELL_H_
#define HARMONIA_SHELL_UNIFIED_SHELL_H_

#include <memory>
#include <string>
#include <vector>

#include "adapter/device_adapter.h"  // harmonia-lint: allow(LAYER-002) compileJob() emits CompileJobs
#include "adapter/toolchain.h"  // harmonia-lint: allow(LAYER-002) compileJob() emits CompileJobs
#include "cmd/control_kernel.h"
#include "device/database.h"
#include "shell/health.h"
#include "shell/host_rbb.h"
#include "shell/memory_rbb.h"
#include "shell/network_rbb.h"
#include "shell/tailoring.h"
#include "sim/engine.h"
#include "telemetry/profiler.h"
#include "telemetry/telemetry_target.h"
#include "wrapper/reg_wrapper.h"

namespace harmonia {

/**
 * A shell instance on one device. Owns its RBBs, the control kernel
 * and the control plane; clock domains are created in the supplied
 * engine. Non-copyable; typically held by unique_ptr in testbenches.
 */
class Shell {
  public:
    /**
     * Build a shell with an explicit configuration. Pin and clock
     * feasibility is validated through the device adapter.
     */
    Shell(Engine &engine, const FpgaDevice &device, ShellConfig config,
          std::string name = "shell");

    Shell(const Shell &) = delete;
    Shell &operator=(const Shell &) = delete;

    /** The unified (one-size-fits-all) shell for a board. */
    static std::unique_ptr<Shell>
    makeUnified(Engine &engine, const FpgaDevice &device);

    /** A role-specific shell via hierarchical tailoring. */
    static std::unique_ptr<Shell>
    makeTailored(Engine &engine, const FpgaDevice &device,
                 const RoleRequirements &role);

    const FpgaDevice &device() const { return device_; }
    const ShellConfig &config() const { return config_; }
    const std::string &name() const { return name_; }

    std::size_t networkCount() const { return networks_.size(); }
    NetworkRbb &network(std::size_t i = 0);
    std::size_t memoryCount() const { return memories_.size(); }
    MemoryRbb &memory(std::size_t i = 0);
    bool hasHost() const { return host_ != nullptr; }
    HostRbb &host();

    UnifiedControlKernel &kernel() { return kernel_; }
    RegInterconnect &regs() { return regs_; }
    IrqHub &irqs() { return irqs_; }
    HealthMonitor &health() { return health_; }
    DeviceAdapter &deviceAdapter() { return adapter_; }

    /**
     * Cycle-attribution profiler over the causal trace. Also served
     * over the command plane as ProfileSnapshot / ProfileReset at
     * (kRbbTelemetry, 0).
     */
    Profiler &profiler() { return profiler_; }

    /**
     * The command-plane telemetry endpoint at (kRbbTelemetry, 0).
     * Hosts attach the obs plane here (attachSloEngine /
     * attachRecorder) to serve SloStatus / AlertSnapshot /
     * FlightDump over the wire.
     */
    TelemetryTarget &telemetryTarget() { return telemetryTarget_; }

    /**
     * Publish the whole shell — every RBB with its wrappers, the
     * control kernel and the health monitor — into @p reg under this
     * shell's name. Hosts then read the same registry in-process or
     * over TelemetryList/TelemetrySnapshot commands at
     * (kRbbTelemetry, 0).
     */
    void registerTelemetry(MetricsRegistry &reg =
                               MetricsRegistry::instance());

    Clock *userClock() { return userClk_; }
    Clock *kernelClock() { return kernelClk_; }

    /** All RBBs, for uniform iteration. */
    std::vector<Rbb *> rbbs();
    std::vector<const Rbb *> rbbs() const;

    /** Provider-owned logic: RBBs + wrappers + control kernel. */
    ResourceVector shellResources() const;

    /** Just the interface wrappers (Fig 16). */
    ResourceVector wrapperResources() const;

    /** Just the unified control kernel (Fig 16). */
    ResourceVector kernelResources() const
    {
        return kernel_.resources();
    }

    /** Full configuration surface of the included instances. */
    std::vector<ConfigItem> allConfigItems() const;

    /** Property-level tailored surface: role-oriented items only. */
    std::vector<ConfigItem> roleConfigItems() const;

    /** Host-software register ops to initialize every module. */
    std::size_t registerInitOps() const;

    /** Commands replacing that initialization. */
    std::size_t commandInitOps() const;

    /** Register reads to collect all monitoring statistics. */
    std::size_t monitoringRegOps() const;

    /** Commands replacing that collection. */
    std::size_t monitoringCommandOps() const;

    /** Shell development workload (LoC-equivalents) over all RBBs. */
    DevWorkload devWorkload() const;

    /** Compile job for this shell plus a role. The job carries this
     *  shell's configuration so Toolchain::compile runs the platform
     *  DRC before the flow starts. */
    CompileJob compileJob(const std::string &project,
                          const ResourceVector &role_logic) const;

    /**
     * Strict DRC mode: when on, every Shell constructor runs
     * drc::check over the requested configuration and fatal()s if the
     * report is not clean. Off by default so experiments can build
     * deliberately odd shells; CI turns it on to assert that shipped
     * configurations stay lint-free.
     */
    static void setStrictDrc(bool on);
    static bool strictDrc();

  private:
    Engine &engine_;
    const FpgaDevice &device_;
    ShellConfig config_;
    std::string name_;
    DeviceAdapter adapter_;

    Clock *userClk_ = nullptr;
    Clock *kernelClk_ = nullptr;

    std::vector<std::unique_ptr<NetworkRbb>> networks_;
    std::vector<std::unique_ptr<MemoryRbb>> memories_;
    std::unique_ptr<HostRbb> host_;
    UnifiedControlKernel kernel_;
    RegInterconnect regs_;
    IrqHub irqs_;
    HealthMonitor health_;
    TelemetryTarget telemetryTarget_;
    Profiler profiler_;
    ScopedMetrics traceTelemetry_;
};

} // namespace harmonia

#endif // HARMONIA_SHELL_UNIFIED_SHELL_H_
