/**
 * @file
 * The parameterized clock-domain crossing of §3.3.1 (Figure 6): an
 * async FIFO with Gray-coded pointers bridging an RBB at S MHz and
 * M-bit data to user logic at R MHz and U-bit data. Clock and width
 * are configurable; selecting instances with S*M = R*U gives lossless
 * bandwidth.
 */

#ifndef HARMONIA_SHELL_CDC_H_
#define HARMONIA_SHELL_CDC_H_

#include <deque>
#include <memory>
#include <string>

#include "common/packet.h"
#include "common/stats.h"
#include "rtl/async_fifo.h"
#include "sim/component.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/**
 * One direction of packet flow between two clock domains. The write
 * and read ports each serialize packets at their own width: a packet
 * of B bytes occupies the port for ceil(B / width_bytes) cycles.
 */
class ParamCdc {
  public:
    /**
     * @param engine       Simulation engine (registers the tick sides).
     * @param name         Base name for the two side components.
     * @param write_clk    Producer domain.
     * @param read_clk     Consumer domain.
     * @param write_width_bits Producer datapath width (M).
     * @param read_width_bits  Consumer datapath width (U).
     * @param capacity     FIFO depth in packets (power of two).
     * @param sync_stages  Gray-pointer synchronizer flops.
     */
    ParamCdc(Engine &engine, const std::string &name, Clock *write_clk,
             Clock *read_clk, unsigned write_width_bits,
             unsigned read_width_bits, std::size_t capacity = 16,
             unsigned sync_stages = 2);

    /** Producer-side: port free and FIFO not (visibly) full. */
    bool canPush() const;
    void push(const PacketDesc &pkt);

    /** Consumer-side: data (visibly) present and port free. */
    bool canPop() const;
    PacketDesc pop();

    /** Producer-side bandwidth S*M in bits/second. */
    double writeBandwidthBps() const;

    /** Consumer-side bandwidth R*U in bits/second. */
    double readBandwidthBps() const;

    /** True when the consumer side can absorb the producer side. */
    bool lossless() const
    {
        return readBandwidthBps() >= writeBandwidthBps();
    }

    unsigned syncStages() const { return fifo_.syncStages(); }
    std::size_t occupancy() const { return fifo_.trueSize(); }

    /** Peak FIFO occupancy since construction. */
    std::size_t occupancyHighWater() const { return fifo_.highWater(); }

    /** Per-packet residence time in the crossing, in ps. */
    const Histogram &residency() const { return residency_; }

    /** Beats lost to injected CDC faults (see fault/fault_plan.h). */
    std::uint64_t droppedBeats() const { return faultDrops_.value(); }

    /** Export occupancy gauges and the residency histogram. */
    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

  private:
    class Side : public Component {
      public:
        Side(std::string name, ParamCdc &parent, bool is_write)
            : Component(std::move(name)), parent_(parent),
              isWrite_(is_write)
        {
        }
        void tick() override
        {
            if (isWrite_)
                parent_.fifo_.writeTick();
            else
                parent_.fifo_.readTick();
        }

        /**
         * A drained, settled FIFO makes both side ticks pure no-ops;
         * only an external push wakes the crossing again, so no wake
         * time is advertised.
         */
        bool idle() const override
        {
            return parent_.fifo_.quiescent();
        }

      private:
        ParamCdc &parent_;
        bool isWrite_;
    };

    /** Entry-time bookkeeping; the FIFO preserves order. */
    struct InFlight {
        Tick pushed = 0;
        SpanId span = 0;
    };

    std::string name_;
    Clock *writeClk_;
    Clock *readClk_;
    unsigned writeWidthBytes_;
    unsigned readWidthBytes_;
    AsyncFifo<PacketDesc> fifo_;
    std::deque<InFlight> inFlight_;
    Counter faultDrops_;
    Histogram residency_;
    Side writeSide_;
    Side readSide_;
    Cycles writeFreeCycle_ = 0;
    Cycles readFreeCycle_ = 0;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_SHELL_CDC_H_
