#include "shell/tailoring.h"

#include <algorithm>

#include "common/logging.h"

namespace harmonia {

unsigned
cageGbps(PeripheralKind kind)
{
    switch (kind) {
      case PeripheralKind::Qsfp28:
        return 100;
      case PeripheralKind::Qsfp56:
        return 100;  // modelled MAC rates are 25/100/400
      case PeripheralKind::Qsfp112:
        return 400;
      case PeripheralKind::Dsfp:
        return 100;
      default:
        fatal("peripheral %s is not a network cage", toString(kind));
    }
}

std::vector<unsigned>
supportedMacRates()
{
    return {25, 100, 400};
}

ShellConfig
unifiedConfigFor(const FpgaDevice &device)
{
    ShellConfig cfg;
    for (const Peripheral &p : device.peripherals) {
        switch (classOf(p.kind)) {
          case PeripheralClass::Network:
            for (unsigned i = 0; i < p.count; ++i)
                cfg.networks.push_back({cageGbps(p.kind)});
            break;
          case PeripheralClass::Memory:
            cfg.memories.push_back({p.kind, p.channels()});
            break;
          case PeripheralClass::Host:
            cfg.includeHost = true;
            cfg.hostQueues = 1024;
            break;
        }
    }
    return cfg;
}

ShellConfig
tailorConfigFor(const FpgaDevice &device, const RoleRequirements &role)
{
    ShellConfig cfg;
    cfg.dmaStyle = role.dmaStyle;

    // --- Module-level: network RBBs. ---
    if (role.needsNetwork) {
        std::vector<unsigned> cages;
        for (const Peripheral &p : device.peripherals)
            if (classOf(p.kind) == PeripheralClass::Network)
                for (unsigned i = 0; i < p.count; ++i)
                    cages.push_back(cageGbps(p.kind));
        std::sort(cages.begin(), cages.end());

        unsigned placed = 0;
        for (unsigned cage : cages) {
            if (placed == role.networkPorts)
                break;
            if (cage < role.networkGbps)
                continue;
            // Select the smallest supported instance covering the
            // demand, bounded by the cage's own rate.
            unsigned pick = cage;
            for (unsigned rate : supportedMacRates()) {
                if (rate >= role.networkGbps && rate <= cage) {
                    pick = rate;
                    break;
                }
            }
            cfg.networks.push_back({pick});
            ++placed;
        }
        if (placed < role.networkPorts)
            fatal("role '%s' needs %u network port(s) at %uG; device "
                  "'%s' cannot provide them",
                  role.name.c_str(), role.networkPorts,
                  role.networkGbps, device.name.c_str());
    }

    // --- Module-level: memory RBBs. ---
    if (role.needsMemory) {
        const bool has_hbm = device.has(PeripheralKind::Hbm);
        const bool has_ddr = device.has(PeripheralKind::Ddr4) ||
                             device.has(PeripheralKind::Ddr3);
        double ddr_bw = 0;
        unsigned ddr_channels = 0;
        PeripheralKind ddr_kind = PeripheralKind::Ddr4;
        for (const Peripheral &p : device.peripherals) {
            if (p.kind == PeripheralKind::Ddr4 ||
                p.kind == PeripheralKind::Ddr3) {
                ddr_bw += p.peakBandwidth();
                ddr_channels += p.channels();
                ddr_kind = p.kind;
            }
        }

        const double need_bps = role.memoryBandwidthGBps * 1e9;
        if (has_ddr && ddr_bw >= need_bps) {
            cfg.memories.push_back({ddr_kind, ddr_channels});
        } else if (has_hbm) {
            cfg.memories.push_back({PeripheralKind::Hbm, 32});
        } else if (has_ddr) {
            fatal("role '%s' needs %.1f GB/s of memory bandwidth; "
                  "device '%s' DDR peaks at %.1f GB/s",
                  role.name.c_str(), role.memoryBandwidthGBps,
                  device.name.c_str(), ddr_bw / 1e9);
        } else {
            fatal("role '%s' needs external memory; device '%s' has "
                  "none",
                  role.name.c_str(), device.name.c_str());
        }
    }

    // --- Module-level: host RBB. ---
    cfg.includeHost = role.needsHost;
    if (role.needsHost) {
        if (role.hostQueues == 0 || role.hostQueues > 1024)
            fatal("role '%s' requests %u host queues (1..1024)",
                  role.name.c_str(), role.hostQueues);
        cfg.hostQueues = role.hostQueues;
    }
    return cfg;
}

} // namespace harmonia
