#include "shell/partial_reconfig.h"

#include "cmd/command_codes.h"
#include "common/logging.h"
#include "fault/fault_plan.h"
#include "sim/trace.h"

namespace harmonia {

const char *
toString(PrSlotState state)
{
    switch (state) {
      case PrSlotState::Empty:
        return "empty";
      case PrSlotState::Reconfiguring:
        return "reconfiguring";
      case PrSlotState::Active:
        return "active";
    }
    return "?";
}

PrController::PrController(std::string name, Engine &engine,
                           Shell &shell,
                           std::vector<ResourceVector> slot_capacities)
    : Component(std::move(name)), engine_(engine), shell_(shell),
      stats_(this->name())
{
    if (slot_capacities.empty())
        fatal("PR controller needs at least one slot");
    for (std::size_t i = 0; i < slot_capacities.size(); ++i)
        slots_.push_back(Slot{slot_capacities[i], PrSlotState::Empty,
                              nullptr, 0, 0,
                              format("%s/slot%zu",
                                     this->name().c_str(), i)});

    // ICAP wrapper, per-slot decoupling and scrub logic.
    resources_ = ResourceVector{
        2400 + 600 * static_cast<std::uint64_t>(slots_.size()),
        3100 + 800 * static_cast<std::uint64_t>(slots_.size()),
        4, 0, 0};

    engine.add(this, shell.kernelClock());
    shell.kernel().registerTarget(kRbbPrCtrl, 0, this);
}

PrSlotState
PrController::slotState(std::size_t slot) const
{
    if (slot >= slots_.size())
        fatal("PR slot %zu out of range (%zu)", slot, slots_.size());
    return slots_[slot].state;
}

Role *
PrController::occupant(std::size_t slot) const
{
    if (slot >= slots_.size())
        fatal("PR slot %zu out of range (%zu)", slot, slots_.size());
    return slots_[slot].role;
}

Tick
PrController::reconfigTime(std::size_t slot) const
{
    if (slot >= slots_.size())
        fatal("PR slot %zu out of range (%zu)", slot, slots_.size());
    const double bits =
        static_cast<double>(slots_[slot].capacity.lut) * kBitsPerLut;
    return static_cast<Tick>(bits / 8 / kIcapBandwidth *
                             kTicksPerSecond);
}

bool
PrController::load(std::size_t slot, Role &role)
{
    if (slot >= slots_.size())
        fatal("PR slot %zu out of range (%zu)", slot, slots_.size());
    Slot &s = slots_[slot];
    if (s.state != PrSlotState::Empty) {
        stats_.counter("load_rejected").inc();
        return false;
    }
    if (!role.requirements().roleLogic.fitsIn(s.capacity)) {
        stats_.counter("load_too_big").inc();
        return false;
    }

    if (!role.bound()) {
        role.bind(engine_, shell_, static_cast<std::uint8_t>(slot));
    } else if (role.slot() != static_cast<std::uint8_t>(slot)) {
        // A bound role keeps its clock registration and slot id for
        // life; it may only be reloaded into its original slot.
        stats_.counter("load_rejected").inc();
        return false;
    } else {
        // Reload after unload/scrub: re-attach the command target the
        // unload released.
        shell_.kernel().registerTarget(kRoleRbbIdBase,
                                       static_cast<std::uint8_t>(slot),
                                       &role);
    }
    role.setActive(false);  // decoupled while the slot is rewritten
    s.role = &role;
    s.state = PrSlotState::Reconfiguring;
    s.doneAt = now() + reconfigTime(slot);
    s.attempts = 1;
    stats_.counter("loads").inc();
    return true;
}

bool
PrController::unload(std::size_t slot)
{
    if (slot >= slots_.size())
        fatal("PR slot %zu out of range (%zu)", slot, slots_.size());
    Slot &s = slots_[slot];
    if (s.state == PrSlotState::Empty) {
        stats_.counter("unload_rejected").inc();
        return false;
    }
    if (s.role != nullptr) {
        s.role->setActive(false);
        shell_.kernel().unregisterTarget(
            kRoleRbbIdBase, static_cast<std::uint8_t>(slot));
    }
    s.role = nullptr;
    s.state = PrSlotState::Empty;
    s.doneAt = 0;
    s.attempts = 0;
    stats_.counter("unloads").inc();
    return true;
}

bool
PrController::idle() const
{
    for (const Slot &s : slots_)
        if (s.state == PrSlotState::Reconfiguring && now() >= s.doneAt)
            return false;
    return true;
}

Tick
PrController::wakeTime() const
{
    Tick wake = kTickMax;
    for (const Slot &s : slots_)
        if (s.state == PrSlotState::Reconfiguring)
            wake = std::min(wake, s.doneAt);
    return wake;
}

void
PrController::tick()
{
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        Slot &s = slots_[i];
        // Fault hook: a single-event upset wipes an Active slot's
        // configuration. The occupant is deactivated and its command
        // target released — exactly the scrub path — so the tenant
        // must be re-loaded (and re-seeded from a checkpoint) to
        // come back.
        if (s.state == PrSlotState::Active &&
            injectFault(FaultKind::PrSlotCorrupt, s.faultTarget,
                        now())) {
            if (s.role != nullptr) {
                s.role->setActive(false);
                shell_.kernel().unregisterTarget(
                    kRoleRbbIdBase, static_cast<std::uint8_t>(i));
            }
            s.role = nullptr;
            s.state = PrSlotState::Empty;
            s.doneAt = 0;
            s.attempts = 0;
            stats_.counter("slots_corrupted").inc();
            trace(*this, "slot %zu configuration corrupted; scrubbed",
                  i);
            continue;
        }
        if (s.state != PrSlotState::Reconfiguring || now() < s.doneAt)
            continue;
        // Fault hook: the post-load readback CRC failed. Re-stream
        // the partial bitstream; after kMaxLoadAttempts scrub the
        // slot back to Empty rather than wedging in Reconfiguring.
        if (injectFault(FaultKind::PrLoadFail, name(), now())) {
            if (s.attempts < kMaxLoadAttempts) {
                ++s.attempts;
                s.doneAt = now() + reconfigTime(i);
                stats_.counter("load_retries").inc();
                trace(*this, "slot %zu load failed; retry %u/%u", i,
                      s.attempts, kMaxLoadAttempts);
                continue;
            }
            // Scrub releases the command target so the slot can be
            // re-tenanted; the failed role never activates.
            if (s.role != nullptr) {
                s.role->setActive(false);
                shell_.kernel().unregisterTarget(
                    kRoleRbbIdBase, static_cast<std::uint8_t>(i));
            }
            s.role = nullptr;
            s.state = PrSlotState::Empty;
            s.doneAt = 0;
            s.attempts = 0;
            stats_.counter("load_aborted").inc();
            trace(*this, "slot %zu scrubbed after failed loads", i);
            continue;
        }
        s.state = PrSlotState::Active;
        s.attempts = 0;
        if (s.role != nullptr) {
            s.role->setActive(true);
            trace(*this, "slot activated with role '%s'",
                  s.role->name().c_str());
        }
        stats_.counter("activations").inc();
    }
}

CommandResult
PrController::executeCommand(std::uint16_t code,
                             const std::vector<std::uint32_t> &data)
{
    switch (code) {
      case kCmdPrStatus: {
        if (data.empty() || data[0] >= slots_.size())
            return {kCmdBadArgument, {}};
        const Slot &s = slots_[data[0]];
        return {kCmdOk,
                {static_cast<std::uint32_t>(s.state),
                 static_cast<std::uint32_t>(
                     s.state == PrSlotState::Reconfiguring
                         ? (s.doneAt - now()) / 1000
                         : 0)}};
      }
      case kCmdPrUnload: {
        if (data.empty() || data[0] >= slots_.size())
            return {kCmdBadArgument, {}};
        return unload(data[0]) ? CommandResult{kCmdOk, {}}
                               : CommandResult{kCmdBadArgument, {}};
      }
      case kCmdPrLoad:
        // Loading needs a host-resident bitstream handle; the
        // software API is load(). The command reports the modelled
        // reconfiguration cost for the requested slot instead.
        if (data.empty() || data[0] >= slots_.size())
            return {kCmdBadArgument, {}};
        return {kCmdOk,
                {static_cast<std::uint32_t>(
                    reconfigTime(data[0]) / 1000)}};
      case kCmdModuleStatusRead: {
        std::uint32_t active = 0;
        for (const Slot &s : slots_)
            if (s.state == PrSlotState::Active)
                ++active;
        return {kCmdOk,
                {static_cast<std::uint32_t>(slots_.size()), active}};
      }
      default:
        return {kCmdUnknownCode, {}};
    }
}

} // namespace harmonia
