/**
 * @file
 * Network RBB (§3.3.1): a vendor MAC instance wrapped by the uniform
 * stream interface, plus reusable Ex-functions — a packet filter for
 * multicast scenarios and a flow director for multi-tenant isolation —
 * and real-time monitoring (throughput, packet loss, queue usage).
 */

#ifndef HARMONIA_SHELL_NETWORK_RBB_H_
#define HARMONIA_SHELL_NETWORK_RBB_H_

#include <memory>
#include <set>
#include <vector>

#include "ip/mac_ip.h"
#include "rtl/fifo.h"
#include "shell/rbb.h"
#include "sim/engine.h"
#include "wrapper/stream_wrapper.h"

namespace harmonia {

/** Flow-director operating modes. */
enum class DirectorMode {
    Hash,   ///< queue = flowHash % active queues (default)
    Table,  ///< queue from the programmable flow table
};

/**
 * The Network RBB. RX path: MAC -> wrapper -> packet filter -> flow
 * director -> role; TX path: role -> wrapper -> MAC. Stream data
 * interface, 32-bit reg control interface.
 */
class NetworkRbb : public Rbb {
  public:
    /** Programmable flow-table entries. */
    static constexpr std::size_t kFlowTableSize = 256;

    /** Ex-function + control/monitor + wrapper soft logic one
     *  instance adds, available before construction (DRC). */
    static ResourceVector plannedSoftLogic();

    NetworkRbb(Engine &engine, Clock *rbb_clk, Vendor chip_vendor,
               unsigned gbps, std::uint8_t instance_id = 0);

    MacIp &mac() { return *mac_; }
    StreamWrapper &wrapper() { return wrapper_; }
    IpBlock &instance() override { return *mac_; }
    using Rbb::instance;

    /** Role-facing RX (post filter + director). */
    bool rxAvailable() const { return !rxOut_.empty(); }
    PacketDesc rxPop();

    /** Role-facing TX. */
    bool txReady() const { return txIn_.canPush(); }
    void txPush(const PacketDesc &pkt);

    // --- Ex-function configuration (mirrored in ctrl registers). ---
    void setLocalMac(std::uint64_t mac);
    std::uint64_t localMac() const { return localMac_; }
    void setFilterEnabled(bool on);
    bool filterEnabled() const { return filterEnabled_; }
    void addMulticastGroup(std::uint64_t mac);
    bool inMulticastGroup(std::uint64_t mac) const;
    void setDirectorMode(DirectorMode mode);
    DirectorMode directorMode() const { return directorMode_; }
    void setDirectorQueues(std::uint16_t n);
    void setFlowTableEntry(std::uint32_t index, std::uint16_t queue);
    std::uint16_t flowTableEntry(std::uint32_t index) const;

    /** Queue the director would pick for a flow hash. */
    std::uint16_t directQueue(std::uint64_t flow_hash) const;

    /** Real-time RX throughput in bits/second (monitoring logic). */
    double rxBitsPerSecond() const;

    /** Real-time RX packet rate in packets/second. */
    double rxPacketsPerSecond() const;

    /** Loop the MAC line side back (Fig 10a test). */
    void setLoopback(bool on) { mac_->setLoopback(on); }

    /**
     * Degraded mode (driven by RecoveryManager on over-temp): shed
     * every other role-bound RX packet to halve the ingress rate.
     * Shed packets are counted in the `rx_shed` monitor stat — the
     * degradation is declared, never silent.
     */
    void setRxShed(bool on);
    bool rxShedding() const { return rxShed_; }

    void tick() override;

    /** No packet movable on either path this cycle. (rxOut_ waits for
     *  the role to pop; no tick needed for that.) */
    bool idle() const override
    {
        return !mac_->rxAvailable() && !wrapper_.ingressAvailable() &&
               !txIn_.canPop() &&
               !(wrapper_.egressAvailable() && mac_->txReady());
    }

    /** Next maturation inside the wrapper pipelines. */
    Tick wakeTime() const override { return wrapper_.nextReadyAt(); }

    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix) override;

    std::size_t registerInitOpCount() const override;
    std::size_t commandInitCount() const override;

    ResourceVector wrapperResources() const override
    {
        return wrapper_.resources();
    }

  protected:
    CommandResult
    tableWrite(const std::vector<std::uint32_t> &data) override;
    CommandResult
    tableRead(const std::vector<std::uint32_t> &data) override;
    void onReset() override;

  private:
    void defineCtrlRegs();
    bool filterPass(const PacketDesc &pkt);

    std::unique_ptr<MacIp> mac_;
    StreamWrapper wrapper_;
    Fifo<PacketDesc> rxOut_{64};
    Fifo<PacketDesc> txIn_{64};

    std::uint64_t localMac_ = 0;
    bool filterEnabled_ = false;
    std::set<std::uint64_t> multicastGroups_;
    DirectorMode directorMode_ = DirectorMode::Hash;
    std::uint16_t directorQueues_ = 16;
    bool rxShed_ = false;
    std::uint64_t rxShedPhase_ = 0;
    std::vector<std::uint16_t> flowTable_;
    std::size_t flowEntriesProgrammed_ = 0;
    RateMeter rxBytesMeter_;
    RateMeter rxPacketsMeter_;
};

} // namespace harmonia

#endif // HARMONIA_SHELL_NETWORK_RBB_H_
