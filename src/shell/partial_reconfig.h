/**
 * @file
 * Partial-reconfiguration multi-tenancy (§6): the role region is
 * divided into slots; tenants' roles are loaded and unloaded at
 * runtime through the ICAP-style configuration port while the shell
 * and the other tenants keep running. Managed over the command
 * interface like every other module.
 */

#ifndef HARMONIA_SHELL_PARTIAL_RECONFIG_H_
#define HARMONIA_SHELL_PARTIAL_RECONFIG_H_

#include <vector>

#include "roles/role.h"  // harmonia-lint: allow(LAYER-002) PR slots re-tenant Roles

namespace harmonia {

/** Lifecycle of one role slot. */
enum class PrSlotState {
    Empty,          ///< no role configured
    Reconfiguring,  ///< partial bitstream streaming in
    Active,         ///< role running
};

const char *toString(PrSlotState state);

/**
 * The PR controller. Owns the slot table and the (modelled) ICAP
 * port: loading a slot streams a partial bitstream whose size scales
 * with the slot's logic capacity, during which the incoming role is
 * inactive; the shell and other slots are unaffected.
 */
class PrController : public Component, public CommandTarget {
  public:
    /** Modelled ICAP bandwidth (bytes/second). */
    static constexpr double kIcapBandwidth = 800e6;

    /** Partial-bitstream bits per LUT of slot capacity. */
    static constexpr double kBitsPerLut = 96.0;

    /**
     * Bitstream-load attempts (initial + retries) before the
     * controller gives up and scrubs the slot back to Empty. A load
     * whose readback CRC fails (the PrLoadFail fault) is re-streamed
     * through the ICAP; a slot never wedges in Reconfiguring.
     */
    static constexpr unsigned kMaxLoadAttempts = 3;

    /**
     * @param slot_capacities Logic capacity of each slot; together
     *        they partition the role region.
     */
    PrController(std::string name, Engine &engine, Shell &shell,
                 std::vector<ResourceVector> slot_capacities);

    std::size_t slotCount() const { return slots_.size(); }
    PrSlotState slotState(std::size_t slot) const;
    Role *occupant(std::size_t slot) const;

    /** Time to stream a slot's partial bitstream. */
    Tick reconfigTime(std::size_t slot) const;

    /**
     * Begin loading @p role into @p slot. The role must fit the
     * slot's capacity and the slot must be empty. The role is bound
     * to the shell (on the slot's command instance id) but stays
     * inactive until reconfiguration completes.
     * @return false when the slot is busy or the role does not fit
     *         (a tenant-level error, not fatal).
     */
    bool load(std::size_t slot, Role &role);

    /** Unload a slot's role (immediate deactivation + scrub). */
    bool unload(std::size_t slot);

    void tick() override;

    /** No slot mid-reconfiguration, or none done streaming yet. */
    bool idle() const override;

    /** Earliest pending bitstream completion. */
    Tick wakeTime() const override;

    /** PrLoad/PrUnload/PrStatus over the command interface operate
     *  on slots whose roles were registered by prior load() calls. */
    CommandResult
    executeCommand(std::uint16_t code,
                   const std::vector<std::uint32_t> &data) override;

    /** ICAP controller + decoupling logic footprint. */
    const ResourceVector &resources() const { return resources_; }

    StatGroup &stats() { return stats_; }

  private:
    struct Slot {
        ResourceVector capacity;
        PrSlotState state = PrSlotState::Empty;
        Role *role = nullptr;
        Tick doneAt = 0;
        unsigned attempts = 0;  ///< bitstream loads this occupancy
        /// Fault-plan target ("<ctrl>/slotN"), cached at construction
        /// so the per-tick fault hook never formats a string.
        std::string faultTarget;
    };

    Engine &engine_;
    Shell &shell_;
    std::vector<Slot> slots_;
    ResourceVector resources_;
    StatGroup stats_;
};

} // namespace harmonia

#endif // HARMONIA_SHELL_PARTIAL_RECONFIG_H_
