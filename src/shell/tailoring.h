/**
 * @file
 * Hierarchical shell tailoring (§3.3.2, Figure 7). Module-level
 * tailoring removes non-essential RBBs and selects instances matching
 * the role's data-transfer performance demands; property-level
 * tailoring then exposes only the role-oriented properties of what
 * remains. The outputs here are ShellConfigs consumed by Shell.
 */

#ifndef HARMONIA_SHELL_TAILORING_H_
#define HARMONIA_SHELL_TAILORING_H_

#include <string>
#include <vector>

#include "device/database.h"
#include "ip/ip_block.h"

namespace harmonia {

/** DMA instance styles a role can select (§3.3.2). */
enum class DmaStyle {
    Bdma,   ///< bulk transfers
    Sgdma,  ///< scatter/gather (discrete) transfers
};

/** One network RBB instance to build. */
struct NetworkInstanceCfg {
    unsigned gbps = 100;
};

/** One memory RBB instance to build. */
struct MemoryInstanceCfg {
    PeripheralKind kind = PeripheralKind::Ddr4;
    unsigned channels = 1;
};

/** What a shell instance contains after (or without) tailoring. */
struct ShellConfig {
    std::vector<NetworkInstanceCfg> networks;
    std::vector<MemoryInstanceCfg> memories;
    bool includeHost = true;
    unsigned hostQueues = 1024;
    DmaStyle dmaStyle = DmaStyle::Sgdma;
    double userClockMhz = 250.0;
};

/**
 * A role's acceleration requirements — the "Role Demands" input of
 * Figure 7 plus the role's own logic footprint for compilation and
 * workload accounting.
 */
struct RoleRequirements {
    std::string name;

    bool needsNetwork = false;
    unsigned networkGbps = 0;   ///< per-port line rate demanded
    unsigned networkPorts = 1;

    bool needsMemory = false;
    double memoryBandwidthGBps = 0;
    std::uint64_t memoryCapacityBytes = 0;

    bool needsHost = true;
    unsigned hostQueues = 64;
    DmaStyle dmaStyle = DmaStyle::Sgdma;

    ResourceVector roleLogic;   ///< the role's own resources
    std::uint32_t roleLoc = 0;  ///< role development workload
};

/**
 * The one-size-fits-all configuration: every peripheral the board has
 * gets its RBB, at the board's full capability.
 */
ShellConfig unifiedConfigFor(const FpgaDevice &device);

/**
 * Module-level tailoring: the minimal configuration satisfying
 * @p role on @p device. fatal() when the board lacks a capability the
 * role requires (roles migrate only to platforms with appropriate
 * hardware, per the paper's portability definition).
 */
ShellConfig tailorConfigFor(const FpgaDevice &device,
                            const RoleRequirements &role);

/** The line rate an RBB instance must use for a network cage. */
unsigned cageGbps(PeripheralKind kind);

/** Supported MAC instance rates, ascending. */
std::vector<unsigned> supportedMacRates();

} // namespace harmonia

#endif // HARMONIA_SHELL_TAILORING_H_
