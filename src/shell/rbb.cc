#include "shell/rbb.h"

#include "cmd/command_codes.h"
#include "common/logging.h"
#include "sim/clock.h"
#include "sim/trace.h"

namespace harmonia {

const char *
toString(RbbKind kind)
{
    switch (kind) {
      case RbbKind::Network:
        return "Network";
      case RbbKind::Memory:
        return "Memory";
      case RbbKind::Host:
        return "Host";
    }
    return "?";
}

std::uint8_t
rbbIdFor(RbbKind kind)
{
    switch (kind) {
      case RbbKind::Network:
        return kRbbNetwork;
      case RbbKind::Memory:
        return kRbbMemory;
      case RbbKind::Host:
        return kRbbHost;
    }
    panic("unreachable RBB kind");
}

Rbb::Rbb(std::string name, RbbKind kind, std::uint8_t instance_id)
    : Component(std::move(name)), kind_(kind), instanceId_(instance_id),
      monitor_(this->name())
{
}

ResourceVector
Rbb::totalResources() const
{
    return instance().resources() + exRes_ + cmRes_;
}

DevWorkload
Rbb::devWorkload() const
{
    DevWorkload w;
    w.instanceLoc = instance().devWorkload().instanceLoc;
    w.reusableLoc = reusableLoc_;
    w.controlLoc = controlLoc_;
    w.monitorLoc = monitorLoc_;
    return w;
}

void
Rbb::registerTelemetry(MetricsRegistry &reg, const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addGroup(prefix, &monitor_);
}

void
Rbb::setReusableWeights(std::uint32_t reusable, std::uint32_t ctrl,
                        std::uint32_t monitor)
{
    reusableLoc_ = reusable;
    controlLoc_ = ctrl;
    monitorLoc_ = monitor;
}

std::vector<ConfigItem>
Rbb::allConfigItems() const
{
    std::vector<ConfigItem> out = instance().configItems();
    // RBB-level items: instance selection is always role-oriented.
    out.push_back({std::string(toString(kind_)) + ".INSTANCE_SELECT",
                   ConfigScope::RoleOriented, "auto", ""});
    return out;
}

std::vector<ConfigItem>
Rbb::roleConfigItems() const
{
    std::vector<ConfigItem> out;
    for (const ConfigItem &c : allConfigItems())
        if (c.scope == ConfigScope::RoleOriented)
            out.push_back(c);
    return out;
}

std::size_t
Rbb::registerInitOpCount() const
{
    return instance().initSequence().size();
}

std::size_t
Rbb::monitoringRegCount() const
{
    // One register read per statistic the reusable monitor keeps plus
    // the instance's read-only status/counter registers.
    std::size_t n = monitor_.snapshot().size();
    for (const RegisterDesc &d : instance().regs().descriptors())
        if (d.readOnly)
            ++n;
    return n;
}

CommandResult
Rbb::statusRead(const std::vector<std::uint32_t> &data)
{
    if (data.empty())
        return {kCmdBadArgument, {}};
    const std::uint32_t bank = data[0] >> 16;
    const Addr offset = data[0] & 0xffff;
    RegisterFile &regs = bank == 0 ? ctrlRegs_ : instance().regs();
    if (!regs.contains(offset))
        return {kCmdBadArgument, {}};
    return {kCmdOk, {regs.read(offset)}};
}

CommandResult
Rbb::statusWrite(const std::vector<std::uint32_t> &data)
{
    if (data.size() < 2)
        return {kCmdBadArgument, {}};
    const std::uint32_t bank = data[0] >> 16;
    const Addr offset = data[0] & 0xffff;
    RegisterFile &regs = bank == 0 ? ctrlRegs_ : instance().regs();
    if (!regs.contains(offset))
        return {kCmdBadArgument, {}};
    regs.write(offset, data[1]);
    return {kCmdOk, {}};
}

CommandResult
Rbb::statsSnapshot(const std::vector<std::uint32_t> &data)
{
    const std::uint32_t start = data.empty() ? 0 : data[0];
    const auto snap = monitor_.snapshot();
    CommandResult res;
    res.data.push_back(static_cast<std::uint32_t>(snap.size()));
    for (std::size_t i = start; i < snap.size() && res.data.size() < 16;
         ++i)
        res.data.push_back(
            static_cast<std::uint32_t>(snap[i].second));
    return res;
}

CommandResult
Rbb::executeCommand(std::uint16_t code,
                    const std::vector<std::uint32_t> &data)
{
    // Child hop of the command's span tree: parents under the kernel
    // span through the ambient context the kernel arms around this
    // dispatch. Modeled as the two user-clock cycles ending at the
    // execution instant, clamped inside the parent's window so the
    // tree's self times telescope exactly. Unclocked RBBs (unit tests
    // poking executeCommand directly) record nothing.
    if (clock() != nullptr && Trace::instance().enabled()) {
        Trace &tracer = Trace::instance();
        const Tick two_cycles = 2 * clock()->period();
        Tick begin = now() >= two_cycles ? now() - two_cycles : 0;
        const Tick parent_begin =
            tracer.openSpanBegin(tracer.context().parent);
        if (begin < parent_begin)
            begin = parent_begin;
        tracer.completeSpan(
            begin, now(), name(),
            format("execute:%s",
                   toString(static_cast<CommandCode>(code))),
            "rbb");
    }
    switch (code) {
      case kCmdModuleStatusRead:
        return statusRead(data);
      case kCmdModuleStatusWrite:
        return statusWrite(data);
      case kCmdModuleInit: {
        const std::size_t ops = instance().applyInitSequence();
        onInit();
        return {kCmdOk, {static_cast<std::uint32_t>(ops)}};
      }
      case kCmdModuleReset:
        instance().reset();
        monitor_.resetAll();
        onReset();
        return {kCmdOk, {}};
      case kCmdTableWrite:
        return tableWrite(data);
      case kCmdTableRead:
        return tableRead(data);
      case kCmdQueueConfig:
        return queueConfig(data);
      case kCmdStatsSnapshot:
        return statsSnapshot(data);
      default:
        return {kCmdUnknownCode, {}};
    }
}

CommandResult
Rbb::tableWrite(const std::vector<std::uint32_t> &data)
{
    (void)data;
    return {kCmdUnknownCode, {}};
}

CommandResult
Rbb::tableRead(const std::vector<std::uint32_t> &data)
{
    (void)data;
    return {kCmdUnknownCode, {}};
}

CommandResult
Rbb::queueConfig(const std::vector<std::uint32_t> &data)
{
    (void)data;
    return {kCmdUnknownCode, {}};
}

} // namespace harmonia
