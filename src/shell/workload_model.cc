#include "shell/workload_model.h"

namespace harmonia {

/*
 * Calibration note
 * ----------------
 * Workload weights are handcrafted-LoC equivalents assigned once, in
 * the constructors of the vendor IPs (instance integration) and RBBs
 * (reusable / control / monitor logic):
 *
 *   RBB      instance  reusable  control  monitor  total
 *   Network     ~820      3540      470      300   ~5130
 *   Memory      ~560      6240      750      450   ~8000
 *   Host       ~1450     12240     1500      920  ~16110
 *
 * They are calibrated so the model reproduces the paper's measured
 * reuse ratios (Fig 14): cross-vendor reuse = reusable/total lands at
 * 0.69 (Network), 0.78 (Memory), 0.76 (Host); cross-chip reuse =
 * (total - instance)/total lands at 0.84, 0.93, 0.91. The ratios --
 * not the absolute LoC -- are what the experiments report, matching
 * the paper's methodology of measuring relative proportions of
 * manually developed versus reusable hardware logic.
 */

const char *
toString(MigrationKind kind)
{
    switch (kind) {
      case MigrationKind::CrossVendor:
        return "cross-vendor";
      case MigrationKind::CrossChip:
        return "cross-chip";
    }
    return "?";
}

ReuseBreakdown
rbbReuse(const Rbb &rbb, MigrationKind kind)
{
    const DevWorkload w = rbb.devWorkload();
    ReuseBreakdown out;
    switch (kind) {
      case MigrationKind::CrossVendor:
        // New vendor: instance integration is rewritten, and the
        // control/monitor logic depends on hardware details that
        // changed with it.
        out.reusedLoc = w.reusableLoc;
        out.redevelopedLoc =
            w.instanceLoc + w.controlLoc + w.monitorLoc;
        break;
      case MigrationKind::CrossChip:
        // Same vendor, new chip family: modules share design
        // similarities, so only the instance integration changes.
        out.reusedLoc = w.reusableLoc + w.controlLoc + w.monitorLoc;
        out.redevelopedLoc = w.instanceLoc;
        break;
    }
    return out;
}

double
rbbReuseFraction(const Rbb &rbb, MigrationKind kind)
{
    return rbbReuse(rbb, kind).reuseFraction();
}

WorkloadSplit
appWorkloadSplit(const Shell &shell, std::uint32_t role_loc)
{
    WorkloadSplit split;
    split.shellLoc = shell.devWorkload().total();
    split.roleLoc = role_loc;
    return split;
}

double
appShellReuse(const Shell &shell, MigrationKind kind)
{
    std::uint64_t reused = 0;
    std::uint64_t total = 0;
    for (const Rbb *rbb : shell.rbbs()) {
        const ReuseBreakdown b = rbbReuse(*rbb, kind);
        reused += b.reusedLoc;
        total += b.reusedLoc + b.redevelopedLoc;
    }
    return total == 0 ? 0.0 : static_cast<double>(reused) / total;
}

} // namespace harmonia
