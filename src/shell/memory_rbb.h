/**
 * @file
 * Memory RBB (§3.3.1): a vendor DDR/HBM controller instance behind the
 * uniform mem map interface, plus reusable Ex-functions — address
 * interleaving across bank groups/channels and a hot cache holding
 * consecutively accessed data on chip — with access monitoring.
 */

#ifndef HARMONIA_SHELL_MEMORY_RBB_H_
#define HARMONIA_SHELL_MEMORY_RBB_H_

#include <deque>
#include <memory>

#include "ip/memory_ip.h"
#include "rtl/pipeline.h"
#include "shell/rbb.h"
#include "sim/engine.h"
#include "wrapper/memmap_wrapper.h"

namespace harmonia {

/**
 * The Memory RBB. 512-bit mem map data interface, 32-bit reg control
 * interface; channel count follows the device (2-ish for DDR, 32 for
 * HBM). Roles pick the DDR or HBM instance by bandwidth demand.
 */
class MemoryRbb : public Rbb {
  public:
    /** Hot-cache geometry: direct-mapped, 64B lines. */
    static constexpr std::size_t kCacheLines = 4096;
    static constexpr std::uint32_t kCacheLineBytes = 64;

    /** Interleave stripe across channels. */
    static constexpr std::uint32_t kStripeBytes = 256;

    /** Ex-function + control/monitor + wrapper soft logic one
     *  instance adds, available before construction (DRC). */
    static ResourceVector plannedSoftLogic();

    MemoryRbb(Engine &engine, Clock *rbb_clk, Vendor chip_vendor,
              PeripheralKind kind, unsigned channels,
              std::uint8_t instance_id = 0);

    MemoryIp &controller() { return *controller_; }
    MemMapWrapper &wrapper() { return wrapper_; }
    IpBlock &instance() override { return *controller_; }
    using Rbb::instance;

    /** Issue a timed read; false on controller back-pressure. */
    bool read(Addr addr, std::uint32_t bytes, std::uint64_t id = 0);

    /** Issue a timed write; false on controller back-pressure. */
    bool write(Addr addr, std::uint32_t bytes, std::uint64_t id = 0);

    bool hasCompletion() const { return !out_.empty(); }
    MemCompletion popCompletion();

    /** Functional store (byte-addressed, independent of timing). */
    void storeWrite(Addr addr, const std::vector<std::uint8_t> &data);
    std::vector<std::uint8_t> storeRead(Addr addr, std::size_t len);

    // --- Ex-function controls. ---
    void setInterleaveEnabled(bool on);
    bool interleaveEnabled() const { return interleave_; }
    void setHotCacheEnabled(bool on);
    bool hotCacheEnabled() const { return hotCache_; }

    /** Channel selection under the current interleave policy. */
    unsigned channelFor(Addr addr) const;

    void tick() override;

    /** No wrapper completion to collect and no cache hit matured. */
    bool idle() const override
    {
        return !wrapper_.hasCompletion() && !cacheHits_.ready(now());
    }

    /** Next hot-cache hit maturation. */
    Tick wakeTime() const override { return cacheHits_.frontReadyAt(); }

    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix) override;

    std::size_t registerInitOpCount() const override;
    std::size_t commandInitCount() const override { return 2; }

    ResourceVector wrapperResources() const override
    {
        return wrapper_.resources();
    }

  protected:
    void onReset() override;

  private:
    struct CacheLine {
        bool valid = false;
        std::uint64_t tag = 0;
    };

    void defineCtrlRegs();
    bool cacheLookup(Addr addr);
    void cacheFill(Addr addr);
    void cacheInvalidate(Addr addr);

    std::unique_ptr<MemoryIp> controller_;
    MemMapWrapper wrapper_;
    std::deque<MemCompletion> out_;
    DelayLine<MemCompletion> cacheHits_;
    std::vector<CacheLine> lines_;
    bool interleave_ = true;
    bool hotCache_ = true;
};

} // namespace harmonia

#endif // HARMONIA_SHELL_MEMORY_RBB_H_
