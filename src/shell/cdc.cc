#include "shell/cdc.h"

#include "common/bits.h"
#include "common/logging.h"
#include "fault/fault_plan.h"

namespace harmonia {

ParamCdc::ParamCdc(Engine &engine, const std::string &name,
                   Clock *write_clk, Clock *read_clk,
                   unsigned write_width_bits, unsigned read_width_bits,
                   std::size_t capacity, unsigned sync_stages)
    : name_(name), writeClk_(write_clk), readClk_(read_clk),
      writeWidthBytes_(write_width_bits / 8),
      readWidthBytes_(read_width_bits / 8),
      fifo_(capacity, sync_stages),
      residency_(1000, 256),  // 1 ns buckets out to 256 ns
      writeSide_(name + ".wr", *this, true),
      readSide_(name + ".rd", *this, false)
{
    if (write_width_bits % 8 != 0 || read_width_bits % 8 != 0 ||
        write_width_bits == 0 || read_width_bits == 0) {
        fatal("CDC '%s': widths must be whole non-zero bytes",
              name.c_str());
    }
    engine.add(&writeSide_, write_clk);
    engine.add(&readSide_, read_clk);
    // Both sides touch the shared FIFO (and producers/consumers call
    // push/pop across the boundary), so the two domains must never
    // tick concurrently.
    engine.fuseClocks(write_clk, read_clk);
}

bool
ParamCdc::canPush() const
{
    return fifo_.canPush() && writeClk_->cycle() >= writeFreeCycle_;
}

void
ParamCdc::push(const PacketDesc &pkt)
{
    writeSide_.noteMutation();
    if (!canPush())
        panic("ParamCdc push without canPush");
    const Tick t = writeClk_->cyclesToTicks(writeClk_->cycle());
    // Fault hook: a beat lost in the crossing never reaches the FIFO
    // or the residency bookkeeping, but it did occupy the write port.
    if (injectFault(FaultKind::CdcBeatDrop, name_, t)) {
        faultDrops_.inc();
        writeFreeCycle_ = writeClk_->cycle() +
                          ceilDiv(pkt.bytes, writeWidthBytes_);
        return;
    }
    fifo_.push(pkt);
    inFlight_.push_back(
        {t, Trace::instance().beginSpan(t, name_, "cdc_cross",
                                        "fifo")});
    writeFreeCycle_ =
        writeClk_->cycle() + ceilDiv(pkt.bytes, writeWidthBytes_);
}

bool
ParamCdc::canPop() const
{
    return fifo_.canPop() && readClk_->cycle() >= readFreeCycle_;
}

PacketDesc
ParamCdc::pop()
{
    readSide_.noteMutation();
    if (!canPop())
        panic("ParamCdc pop without canPop");
    PacketDesc pkt = fifo_.pop();
    const Tick t = readClk_->cyclesToTicks(readClk_->cycle());
    const InFlight f = inFlight_.front();
    inFlight_.pop_front();
    residency_.sample(t >= f.pushed ? t - f.pushed : 0);
    Trace::instance().endSpan(f.span, t);
    readFreeCycle_ =
        readClk_->cycle() + ceilDiv(pkt.bytes, readWidthBytes_);
    return pkt;
}

void
ParamCdc::registerTelemetry(MetricsRegistry &reg,
                            const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addGauge(prefix + "/occupancy", [this] {
        return static_cast<double>(fifo_.trueSize());
    });
    telemetry_.addGauge(prefix + "/occupancy_high_water", [this] {
        return static_cast<double>(fifo_.highWater());
    });
    telemetry_.addHistogram(prefix + "/residency_ps", &residency_);
    telemetry_.addGauge(prefix + "/fault_drops", [this] {
        return static_cast<double>(faultDrops_.value());
    });
}

double
ParamCdc::writeBandwidthBps() const
{
    return writeClk_->mhz() * 1e6 * writeWidthBytes_ * 8;
}

double
ParamCdc::readBandwidthBps() const
{
    return readClk_->mhz() * 1e6 * readWidthBytes_ * 8;
}

} // namespace harmonia
