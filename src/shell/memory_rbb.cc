#include "shell/memory_rbb.h"

#include "common/logging.h"
#include "sim/clock.h"

namespace harmonia {

namespace {
// Address interleaver + hot cache (BRAM-heavy) soft logic.
const ResourceVector kExResources{5200, 6400, 64, 0, 0};
// Reusable control + monitoring logic.
const ResourceVector kCmResources{1900, 2600, 2, 0, 0};
} // namespace

ResourceVector
MemoryRbb::plannedSoftLogic()
{
    return kExResources + kCmResources +
           MemMapWrapper::plannedResources();
}

MemoryRbb::MemoryRbb(Engine &engine, Clock *rbb_clk, Vendor chip_vendor,
                     PeripheralKind kind, unsigned channels,
                     std::uint8_t instance_id)
    : Rbb(format("mem_rbb%u", instance_id), RbbKind::Memory,
          instance_id),
      controller_(makeMemory(chip_vendor, kind, channels,
                             format("m%u", instance_id))),
      wrapper_(name() + ".wrap", *controller_),
      lines_(kCacheLines)
{
    defineCtrlRegs();

    setExResources(kExResources);
    setCmResources(kCmResources);
    setReusableWeights(6240, 750, 450);

    engine.add(this, rbb_clk);
    engine.add(&wrapper_, rbb_clk);
    engine.add(controller_.get(), rbb_clk);
}

void
MemoryRbb::defineCtrlRegs()
{
    Addr a = 0;
    auto def = [&](const char *n, bool ro = false) {
        ctrlRegs().define({n, a, ro, ""});
        a += 4;
    };
    def("INTERLEAVE_EN");
    def("HOTCACHE_EN");
    def("STRIPE_BYTES");
    def("MON_READS", true);
    def("MON_WRITES", true);
    def("MON_BYTES", true);
    def("MON_CACHE_HITS", true);
    def("MON_CACHE_MISSES", true);

    ctrlRegs().poke(ctrlRegs().addrOf("INTERLEAVE_EN"), 1);
    ctrlRegs().poke(ctrlRegs().addrOf("HOTCACHE_EN"), 1);
    ctrlRegs().poke(ctrlRegs().addrOf("STRIPE_BYTES"), kStripeBytes);

    ctrlRegs().onWrite(ctrlRegs().addrOf("INTERLEAVE_EN"),
                       [this](std::uint32_t v) {
                           interleave_ = v & 1;
                       });
    ctrlRegs().onWrite(ctrlRegs().addrOf("HOTCACHE_EN"),
                       [this](std::uint32_t v) { hotCache_ = v & 1; });

    auto bind = [&](const char *reg, const char *stat) {
        ctrlRegs().onRead(ctrlRegs().addrOf(reg),
                          [this, stat](std::uint32_t) {
                              return static_cast<std::uint32_t>(
                                  monitor().value(stat));
                          });
    };
    bind("MON_READS", "reads");
    bind("MON_WRITES", "writes");
    bind("MON_BYTES", "bytes");
    bind("MON_CACHE_HITS", "cache_hits");
    bind("MON_CACHE_MISSES", "cache_misses");
}

unsigned
MemoryRbb::channelFor(Addr addr) const
{
    const unsigned n = controller_->channels();
    if (n == 1)
        return 0;
    if (interleave_)
        return static_cast<unsigned>((addr / kStripeBytes) % n);
    // Without interleaving, channels carve out large linear regions.
    return static_cast<unsigned>((addr >> 30) % n);
}

bool
MemoryRbb::cacheLookup(Addr addr)
{
    const std::uint64_t line = addr / kCacheLineBytes;
    const std::size_t idx = line % kCacheLines;
    return lines_[idx].valid && lines_[idx].tag == line / kCacheLines;
}

void
MemoryRbb::cacheFill(Addr addr)
{
    const std::uint64_t line = addr / kCacheLineBytes;
    const std::size_t idx = line % kCacheLines;
    lines_[idx].valid = true;
    lines_[idx].tag = line / kCacheLines;
}

void
MemoryRbb::cacheInvalidate(Addr addr)
{
    const std::uint64_t line = addr / kCacheLineBytes;
    const std::size_t idx = line % kCacheLines;
    if (lines_[idx].valid && lines_[idx].tag == line / kCacheLines)
        lines_[idx].valid = false;
}

bool
MemoryRbb::read(Addr addr, std::uint32_t bytes, std::uint64_t id)
{
    noteMutation();
    monitor().counter("reads").inc();
    monitor().counter("bytes").inc(bytes);

    if (hotCache_ && bytes <= kCacheLineBytes && cacheLookup(addr)) {
        monitor().counter("cache_hits").inc();
        MemCompletion c;
        c.request = {false, addr, bytes, now(), id};
        const Tick hit_latency =
            clock() ? 4 * clock()->period() : 4000;
        c.completed = now() + hit_latency;
        cacheHits_.push(c, c.completed);
        return true;
    }
    if (hotCache_)
        monitor().counter("cache_misses").inc();

    UniformMemCommand cmd{addr, bytes, false};
    return wrapper_.post(channelFor(addr), cmd, id);
}

bool
MemoryRbb::write(Addr addr, std::uint32_t bytes, std::uint64_t id)
{
    noteMutation();
    monitor().counter("writes").inc();
    monitor().counter("bytes").inc(bytes);
    cacheInvalidate(addr);
    UniformMemCommand cmd{addr, bytes, true};
    return wrapper_.post(channelFor(addr), cmd, id);
}

MemCompletion
MemoryRbb::popCompletion()
{
    if (out_.empty())
        fatal("MemoryRbb '%s': popCompletion with none pending",
              name().c_str());
    MemCompletion c = out_.front();
    out_.pop_front();
    return c;
}

void
MemoryRbb::storeWrite(Addr addr, const std::vector<std::uint8_t> &data)
{
    noteMutation();
    controller_->storeWrite(addr, data);
}

std::vector<std::uint8_t>
MemoryRbb::storeRead(Addr addr, std::size_t len)
{
    return controller_->storeRead(addr, len);
}

void
MemoryRbb::setInterleaveEnabled(bool on)
{
    ctrlRegs().write(ctrlRegs().addrOf("INTERLEAVE_EN"), on ? 1 : 0);
}

void
MemoryRbb::setHotCacheEnabled(bool on)
{
    ctrlRegs().write(ctrlRegs().addrOf("HOTCACHE_EN"), on ? 1 : 0);
}

void
MemoryRbb::tick()
{
    while (wrapper_.hasCompletion()) {
        MemCompletion c = wrapper_.popCompletion();
        if (!c.request.write && hotCache_)
            cacheFill(c.request.addr);
        out_.push_back(c);
    }
    while (cacheHits_.ready(now()))
        out_.push_back(cacheHits_.pop(now()));
}

void
MemoryRbb::registerTelemetry(MetricsRegistry &reg,
                             const std::string &prefix)
{
    Rbb::registerTelemetry(reg, prefix);
    wrapper_.registerTelemetry(reg, prefix + "/wrapper");
    telemetryHandle().addGauge(prefix + "/completions_pending",
                               [this] {
        return static_cast<double>(out_.size());
    });
}

std::size_t
MemoryRbb::registerInitOpCount() const
{
    // Instance recipe + per-channel enablement + Ex-function regs.
    return instance().initSequence().size() +
           3 * controller_->channels() + 3;
}

void
MemoryRbb::onReset()
{
    for (CacheLine &l : lines_)
        l.valid = false;
    out_.clear();
    interleave_ = true;
    hotCache_ = true;
}

} // namespace harmonia
