/**
 * @file
 * Board health monitoring — one of the production-shell
 * functionalities §2.1 enumerates. Models the sensors a cloud card
 * exposes (die temperature, rail voltages, per-RBB heartbeats),
 * alarm thresholds that raise an irq (the latency-critical signal
 * class of §3.2), and the SensorRead command the BMC and standalone
 * tools poll with.
 */

#ifndef HARMONIA_SHELL_HEALTH_H_
#define HARMONIA_SHELL_HEALTH_H_

#include <vector>

#include "cmd/command.h"
#include "common/stats.h"
#include "device/resource.h"
#include "sim/component.h"
#include "telemetry/metrics_registry.h"
#include "wrapper/reg_wrapper.h"

namespace harmonia {

/** Sensor indices in the SensorRead command's data[0]. */
enum HealthSensor : std::uint32_t {
    kSensorTempMilliC = 0,    ///< die temperature, milli-degC
    kSensorVccIntMilliV = 1,  ///< core rail, mV
    kSensorVccAuxMilliV = 2,  ///< aux rail, mV
    kSensorPowerMilliW = 3,   ///< estimated power draw, mW
    kSensorAlarms = 4,        ///< latched alarm bit mask
    kSensorCount = 5,
};

/** Alarm bits in kSensorAlarms. */
enum HealthAlarm : std::uint32_t {
    kAlarmOverTemp = 0x1,
    kAlarmVccIntLow = 0x2,
    kAlarmVccAuxLow = 0x4,
};

/**
 * The health monitor. Temperature and power follow a first-order
 * model of the design's utilization plus a deterministic activity
 * ripple; voltage rails droop slightly under power. Crossing a
 * threshold latches an alarm and raises the `health_alarm` irq line
 * immediately — management software clears it via ModuleReset.
 */
class HealthMonitor : public Component, public CommandTarget {
  public:
    /** Default over-temperature threshold (production cards: ~95C). */
    static constexpr std::uint32_t kDefaultTempLimitMilliC = 95'000;

    HealthMonitor(std::string name, IrqHub &irqs);

    /**
     * Tell the monitor how loaded the fabric is; utilization drives
     * the steady-state temperature and power. Typically called once
     * after the shell is composed.
     */
    void setUtilization(double fraction);

    /** Inject thermal stress (testing / failure injection). */
    void setAmbientMilliC(std::uint32_t milli_c);

    void setTempLimitMilliC(std::uint32_t limit);
    std::uint32_t tempLimitMilliC() const { return tempLimitMilliC_; }

    std::uint32_t temperatureMilliC() const { return tempMilliC_; }
    std::uint32_t vccIntMilliV() const { return vccIntMilliV_; }
    std::uint32_t vccAuxMilliV() const { return vccAuxMilliV_; }
    std::uint32_t powerMilliW() const { return powerMilliW_; }
    std::uint32_t alarms() const { return alarms_; }

    /** The raw alarm line (subscribe for immediate notification). */
    IrqLine &alarmLine() { return *alarm_; }

    void tick() override;

    /**
     * Idle between ADC conversions. Sample edges are never skippable:
     * the stored sensor values are observable (SensorRead, gauges), so
     * the fast-forward must land on every conversion cycle.
     */
    bool idle() const override { return cycle() % 16 != 0; }

    /** The next conversion edge. */
    Tick wakeTime() const override;

    /** SensorRead / StatsSnapshot / ModuleReset handling. */
    CommandResult
    executeCommand(std::uint16_t code,
                   const std::vector<std::uint32_t> &data) override;

    /** Sensor + alarm soft logic (SYSMON wrapper scale). */
    const ResourceVector &resources() const { return resources_; }

    /** Publish sensor gauges under @p prefix. */
    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

  private:
    void refreshSensors();

    IrqLine *alarm_;
    double utilization_ = 0.1;
    std::uint32_t ambientMilliC_ = 35'000;
    std::uint32_t tempLimitMilliC_ = kDefaultTempLimitMilliC;
    std::uint32_t tempMilliC_ = 35'000;
    std::uint32_t vccIntMilliV_ = 850;
    std::uint32_t vccAuxMilliV_ = 1800;
    std::uint32_t powerMilliW_ = 0;
    std::uint32_t alarms_ = 0;
    ResourceVector resources_;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_SHELL_HEALTH_H_
