/**
 * @file
 * Development-workload accounting for the reuse experiments (Figs 3a,
 * 14, 15). Workload is measured in handcrafted-LoC equivalents
 * attached to module parts; the calibration rationale is documented in
 * workload_model.cc.
 */

#ifndef HARMONIA_SHELL_WORKLOAD_MODEL_H_
#define HARMONIA_SHELL_WORKLOAD_MODEL_H_

#include "shell/rbb.h"
#include "shell/unified_shell.h"

namespace harmonia {

/** What kind of platform migration a port represents (§5.3). */
enum class MigrationKind {
    CrossVendor,  ///< e.g. device A (Xilinx) -> device C (Intel chip)
    CrossChip,    ///< same vendor, new chip family (device A -> B)
};

const char *toString(MigrationKind kind);

/**
 * Fraction of an RBB's development workload reused when porting it.
 * Cross-vendor ports redevelop the instance integration and the
 * hardware-detail-bound control/monitor logic; cross-chip ports
 * redevelop only the instance integration.
 */
double rbbReuseFraction(const Rbb &rbb, MigrationKind kind);

/** Reused / redeveloped LoC for one RBB port. */
struct ReuseBreakdown {
    std::uint32_t reusedLoc = 0;
    std::uint32_t redevelopedLoc = 0;

    double reuseFraction() const
    {
        const double total = reusedLoc + redevelopedLoc;
        return total == 0 ? 0.0 : reusedLoc / total;
    }
};

ReuseBreakdown rbbReuse(const Rbb &rbb, MigrationKind kind);

/** Fig 3a: handcraft workload split between shell and role. */
struct WorkloadSplit {
    std::uint32_t shellLoc = 0;
    std::uint32_t roleLoc = 0;

    double shellFraction() const
    {
        const double total = shellLoc + roleLoc;
        return total == 0 ? 0.0 : shellLoc / total;
    }
};

WorkloadSplit appWorkloadSplit(const Shell &shell,
                               std::uint32_t role_loc);

/** Fig 15: whole-shell reuse fraction for an application migration. */
double appShellReuse(const Shell &shell, MigrationKind kind);

} // namespace harmonia

#endif // HARMONIA_SHELL_WORKLOAD_MODEL_H_
