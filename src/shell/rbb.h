/**
 * @file
 * The Reusable Building Block abstraction (§3.3.1, Figure 6). Each RBB
 * pairs a vendor-specific instance (an IpBlock) with reusable logic:
 * Ex-functions for performance/feature enhancement, plus control and
 * monitoring logic. RBBs are also command targets: the unified control
 * kernel routes commands to them by (RBB ID, Instance ID).
 */

#ifndef HARMONIA_SHELL_RBB_H_
#define HARMONIA_SHELL_RBB_H_

#include <memory>
#include <string>
#include <vector>

#include "cmd/command.h"
#include "common/stats.h"
#include "device/resource.h"
#include "ip/ip_block.h"
#include "sim/component.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/** The RBB families Harmonia ships (§3.3.1). */
enum class RbbKind { Network, Memory, Host };

const char *toString(RbbKind kind);

/** RBB ID used in command routing for a kind. */
std::uint8_t rbbIdFor(RbbKind kind);

/**
 * Base RBB: owns the reusable control registers and monitoring stats,
 * executes the common command set, and accounts resources and
 * development workload for the reuse experiments.
 */
class Rbb : public Component, public CommandTarget {
  public:
    Rbb(std::string name, RbbKind kind, std::uint8_t instance_id);

    RbbKind kind() const { return kind_; }
    std::uint8_t rbbId() const { return rbbIdFor(kind_); }
    std::uint8_t instanceId() const { return instanceId_; }

    /** The vendor-specific instance inside this RBB. */
    virtual IpBlock &instance() = 0;
    const IpBlock &instance() const
    {
        return const_cast<Rbb *>(this)->instance();
    }

    /** Reusable control registers (RBB-level, vendor-independent). */
    RegisterFile &ctrlRegs() { return ctrlRegs_; }
    const RegisterFile &ctrlRegs() const { return ctrlRegs_; }

    /** Monitoring statistics maintained by the reusable logic. */
    StatGroup &monitor() { return monitor_; }
    const StatGroup &monitor() const { return monitor_; }

    /**
     * Publish this RBB's monitoring surface into the telemetry plane
     * under @p prefix (typically "<shell>/<rbb>"). The base exports
     * the monitor StatGroup; subclasses add wrapper latency, rates
     * and queue gauges. Re-registration releases the previous ids;
     * destruction unregisters everything.
     */
    virtual void registerTelemetry(MetricsRegistry &reg,
                                   const std::string &prefix);

    /** Ex-function soft logic footprint. */
    const ResourceVector &exFunctionResources() const { return exRes_; }

    /** Control + monitoring soft logic footprint. */
    const ResourceVector &controlMonitorResources() const
    {
        return cmRes_;
    }

    /** Instance + all reusable logic (wrapper accounted separately). */
    ResourceVector totalResources() const;

    /** This RBB's interface-wrapper footprint (Fig 16). */
    virtual ResourceVector wrapperResources() const = 0;

    /**
     * Development workload: the instance integration LoC from the
     * vendor IP plus this RBB's reusable/control/monitor weights
     * (calibration documented in workload_model.cc).
     */
    DevWorkload devWorkload() const;

    /** Full configuration surface: instance + RBB-level items. */
    std::vector<ConfigItem> allConfigItems() const;

    /** Only what a role must set after property-level tailoring. */
    std::vector<ConfigItem> roleConfigItems() const;

    /**
     * Register operations host software performs to initialize this
     * module through the raw register interface (includes per-queue /
     * per-channel / per-table-entry programming).
     */
    virtual std::size_t registerInitOpCount() const;

    /** Commands that replace the same initialization (§3.3.3). */
    virtual std::size_t commandInitCount() const { return 1; }

    /** Register reads needed to collect every monitoring statistic. */
    virtual std::size_t monitoringRegCount() const;

    /** Commands that collect the same statistics. */
    virtual std::size_t monitoringCommandCount() const { return 1; }

    // CommandTarget: the common command set. data[0] of status
    // read/write selects bank<<16 | offset (bank 0 = RBB ctrl regs,
    // bank 1 = instance regs).
    CommandResult
    executeCommand(std::uint16_t code,
                   const std::vector<std::uint32_t> &data) override;

  protected:
    /** Extension hooks for RBB-specific commands. */
    virtual CommandResult
    tableWrite(const std::vector<std::uint32_t> &data);
    virtual CommandResult
    tableRead(const std::vector<std::uint32_t> &data);
    virtual CommandResult
    queueConfig(const std::vector<std::uint32_t> &data);

    /** Called after ModuleInit / ModuleReset commands. */
    virtual void onInit() {}
    virtual void onReset() {}

    void setExResources(ResourceVector r) { exRes_ = r; }
    void setCmResources(ResourceVector r) { cmRes_ = r; }
    void setReusableWeights(std::uint32_t reusable, std::uint32_t ctrl,
                            std::uint32_t monitor);

    /** Registration bundle subclasses extend in registerTelemetry. */
    ScopedMetrics &telemetryHandle() { return telemetry_; }

  private:
    CommandResult statusRead(const std::vector<std::uint32_t> &data);
    CommandResult statusWrite(const std::vector<std::uint32_t> &data);
    CommandResult statsSnapshot(const std::vector<std::uint32_t> &data);

    RbbKind kind_;
    std::uint8_t instanceId_;
    RegisterFile ctrlRegs_;
    StatGroup monitor_;
    ResourceVector exRes_;
    ResourceVector cmRes_;
    std::uint32_t reusableLoc_ = 0;
    std::uint32_t controlLoc_ = 0;
    std::uint32_t monitorLoc_ = 0;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_SHELL_RBB_H_
