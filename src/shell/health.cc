#include "shell/health.h"

#include "cmd/command_codes.h"
#include "common/logging.h"
#include "fault/fault_plan.h"
#include "sim/clock.h"

namespace harmonia {

HealthMonitor::HealthMonitor(std::string name, IrqHub &irqs)
    : Component(std::move(name)),
      alarm_(&irqs.line("health_alarm"))
{
    resources_ = ResourceVector{900, 1200, 1, 0, 0};
    refreshSensors();
}

void
HealthMonitor::setUtilization(double fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        fatal("utilization %f outside [0,1]", fraction);
    utilization_ = fraction;
}

void
HealthMonitor::setAmbientMilliC(std::uint32_t milli_c)
{
    ambientMilliC_ = milli_c;
}

void
HealthMonitor::setTempLimitMilliC(std::uint32_t limit)
{
    tempLimitMilliC_ = limit;
}

void
HealthMonitor::registerTelemetry(MetricsRegistry &reg,
                                 const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addGauge(prefix + "/temp_milli_c", [this] {
        return static_cast<double>(tempMilliC_);
    });
    telemetry_.addGauge(prefix + "/power_milli_w", [this] {
        return static_cast<double>(powerMilliW_);
    });
    telemetry_.addGauge(prefix + "/alarms", [this] {
        return static_cast<double>(alarms_);
    });
}

void
HealthMonitor::refreshSensors()
{
    // First-order thermal model: ambient + utilization-driven rise
    // plus a small deterministic ripple from switching activity.
    const std::uint32_t rise =
        static_cast<std::uint32_t>(45'000 * utilization_);
    const std::uint32_t ripple =
        static_cast<std::uint32_t>((cycle() / 64) % 16) * 125;
    tempMilliC_ = ambientMilliC_ + rise + ripple;

    // Fault hook: a thermal excursion adds param milli-degC to this
    // conversion — enough (by default) to cross the alarm threshold.
    std::uint64_t excursion = 0;
    if (injectFault(FaultKind::ThermalExcursion, name(), now(),
                    &excursion)) {
        tempMilliC_ += static_cast<std::uint32_t>(
            excursion != 0 ? excursion : 30'000);
    }

    powerMilliW_ = static_cast<std::uint32_t>(
        18'000 + 120'000 * utilization_);

    // Rails droop ~1 mV per 4 W of draw.
    const std::uint32_t droop = powerMilliW_ / 4000;
    vccIntMilliV_ = 850 - std::min<std::uint32_t>(droop, 40);
    vccAuxMilliV_ = 1800 - std::min<std::uint32_t>(droop / 2, 40);

    std::uint32_t new_alarms = 0;
    if (tempMilliC_ >= tempLimitMilliC_)
        new_alarms |= kAlarmOverTemp;
    if (vccIntMilliV_ < 820)
        new_alarms |= kAlarmVccIntLow;
    if (vccAuxMilliV_ < 1750)
        new_alarms |= kAlarmVccAuxLow;

    if (new_alarms & ~alarms_) {
        alarms_ |= new_alarms;
        alarm_->raise();  // latency-critical: bypasses the reg plane
    }
}

void
HealthMonitor::tick()
{
    // Sensor ADCs convert at a fraction of the fabric clock.
    if (cycle() % 16 == 0)
        refreshSensors();
}

Tick
HealthMonitor::wakeTime() const
{
    return clock()->cyclesToTicks((cycle() / 16 + 1) * 16);
}

CommandResult
HealthMonitor::executeCommand(std::uint16_t code,
                              const std::vector<std::uint32_t> &data)
{
    switch (code) {
      case kCmdSensorRead: {
        if (data.empty()) {
            // No index: the full sensor block in one response.
            return {kCmdOk,
                    {tempMilliC_, vccIntMilliV_, vccAuxMilliV_,
                     powerMilliW_, alarms_}};
        }
        switch (data[0]) {
          case kSensorTempMilliC:
            return {kCmdOk, {tempMilliC_}};
          case kSensorVccIntMilliV:
            return {kCmdOk, {vccIntMilliV_}};
          case kSensorVccAuxMilliV:
            return {kCmdOk, {vccAuxMilliV_}};
          case kSensorPowerMilliW:
            return {kCmdOk, {powerMilliW_}};
          case kSensorAlarms:
            return {kCmdOk, {alarms_}};
          default:
            return {kCmdBadArgument, {}};
        }
      }
      case kCmdModuleStatusRead:
        return {kCmdOk, {alarms_ == 0 ? 1u : 0u}};
      case kCmdModuleReset:
        alarms_ = 0;
        alarm_->clear();
        return {kCmdOk, {}};
      default:
        return {kCmdUnknownCode, {}};
    }
}

} // namespace harmonia
