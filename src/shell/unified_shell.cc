#include "shell/unified_shell.h"

#include <map>

#include "common/logging.h"
#include "drc/checker.h"  // harmonia-lint: allow(LAYER-002) strict-DRC construction gate

namespace harmonia {

namespace {
bool g_strictDrc = false;
} // namespace

void
Shell::setStrictDrc(bool on)
{
    g_strictDrc = on;
}

bool
Shell::strictDrc()
{
    return g_strictDrc;
}

Shell::Shell(Engine &engine, const FpgaDevice &device, ShellConfig config,
             std::string name)
    : engine_(engine), device_(device), config_(std::move(config)),
      name_(std::move(name)), adapter_(device),
      kernel_(name_ + ".uck"), health_(name_ + ".health", irqs_)
{
    if (g_strictDrc) {
        const drc::DrcReport report =
            drc::check(device_, config_, nullptr, name_);
        if (!report.clean())
            fatal("shell '%s': strict DRC found %zu error(s); "
                  "first: %s %s",
                  name_.c_str(), report.errorCount(),
                  report.firstError().ruleId.c_str(),
                  report.firstError().message.c_str());
    }

    const Vendor chip_vendor = device_.chip().vendor();

    // Clocks for the role and the soft core.
    userClk_ = engine_.addClock(name_ + ".user_clk",
                                config_.userClockMhz);
    adapter_.mapClock("user_clk", config_.userClockMhz);
    kernelClk_ = engine_.addClock(name_ + ".kernel_clk", 250.0);
    adapter_.mapClock("kernel_clk", 250.0);
    engine_.add(&kernel_, kernelClk_);

    // One shell is one concurrency group: the command plane reaches
    // every RBB from the kernel domain and roles touch RBB FIFOs from
    // the user domain, so none of these clocks may tick concurrently.
    engine_.fuseClocks(userClk_, kernelClk_);

    // Expand the board's network cages to (kind, per-kind index).
    std::vector<std::pair<PeripheralKind, unsigned>> cages;
    {
        std::map<PeripheralKind, unsigned> next;
        for (const Peripheral &p : device_.peripherals)
            if (classOf(p.kind) == PeripheralClass::Network)
                for (unsigned c = 0; c < p.count; ++c)
                    cages.emplace_back(p.kind, next[p.kind]++);
    }

    // --- Network RBBs. ---
    if (config_.networks.size() > cages.size())
        fatal("shell '%s': %zu network RBBs requested but device '%s' "
              "has %zu cages",
              name_.c_str(), config_.networks.size(),
              device_.name.c_str(), cages.size());
    for (std::size_t i = 0; i < config_.networks.size(); ++i) {
        const auto &[cage_kind, kind_index] = cages[i];
        if (config_.networks[i].gbps > cageGbps(cage_kind))
            fatal("shell '%s': %uG MAC exceeds %s cage rate",
                  name_.c_str(), config_.networks[i].gbps,
                  toString(cage_kind));
        adapter_.mapPins(format("net%zu", i), cage_kind, kind_index);
        auto rbb = std::make_unique<NetworkRbb>(
            engine_,
            engine_.addClock(format("%s.net_clk%zu", name_.c_str(), i),
                             MacIp::clockMhzFor(
                                 config_.networks[i].gbps)),
            chip_vendor, config_.networks[i].gbps,
            static_cast<std::uint8_t>(i));
        engine_.fuseClocks(userClk_, rbb->clock());
        kernel_.registerTarget(rbb->rbbId(), rbb->instanceId(),
                               rbb.get());
        regs_.attach(rbb->name(), rbb->ctrlRegs());
        regs_.attach(rbb->name() + ".inst", rbb->instance().regs());
        networks_.push_back(std::move(rbb));
    }

    // --- Memory RBBs. ---
    {
        std::map<PeripheralKind, unsigned> next;
        for (std::size_t i = 0; i < config_.memories.size(); ++i) {
            const MemoryInstanceCfg &m = config_.memories[i];
            adapter_.mapPins(format("mem%zu", i), m.kind,
                             next[m.kind]++);
            auto rbb = std::make_unique<MemoryRbb>(
                engine_,
                engine_.addClock(
                    format("%s.mem_clk%zu", name_.c_str(), i),
                    m.kind == PeripheralKind::Hbm ? 450.0 : 300.0),
                chip_vendor, m.kind, m.channels,
                static_cast<std::uint8_t>(i));
            engine_.fuseClocks(userClk_, rbb->clock());
            kernel_.registerTarget(rbb->rbbId(), rbb->instanceId(),
                                   rbb.get());
            regs_.attach(rbb->name(), rbb->ctrlRegs());
            regs_.attach(rbb->name() + ".inst",
                         rbb->instance().regs());
            memories_.push_back(std::move(rbb));
        }
    }

    // --- Host RBB. ---
    if (config_.includeHost) {
        const Peripheral &pcie = device_.pcie();
        unsigned gen = 3;
        if (pcie.kind == PeripheralKind::PcieGen4)
            gen = 4;
        else if (pcie.kind == PeripheralKind::PcieGen5)
            gen = 5;
        adapter_.mapPins("host0", pcie.kind, 0);
        host_ = std::make_unique<HostRbb>(
            engine_,
            engine_.addClock(name_ + ".host_clk",
                             DmaIp::clockMhzFor(gen)),
            chip_vendor, gen, pcie.lanes, config_.hostQueues, 0,
            config_.dmaStyle == DmaStyle::Bdma
                ? DmaEngineStyle::Bulk
                : DmaEngineStyle::ScatterGather);
        engine_.fuseClocks(userClk_, host_->clock());
        kernel_.registerTarget(host_->rbbId(), host_->instanceId(),
                               host_.get());
        regs_.attach(host_->name(), host_->ctrlRegs());
        regs_.attach(host_->name() + ".inst", host_->instance().regs());
    }

    // --- Health monitoring (production-shell functionality). ---
    engine_.add(&health_, kernelClk_);
    kernel_.registerTarget(kRbbHealth, 0, &health_);
    health_.setUtilization(
        shellResources().maxUtilization(device_.chip().budget));

    // --- Telemetry plane: registry access over the command path. ---
    kernel_.registerTarget(kRbbTelemetry, 0, &telemetryTarget_);
    telemetryTarget_.attachProfiler(&profiler_);
}

void
Shell::registerTelemetry(MetricsRegistry &reg)
{
    for (std::size_t i = 0; i < networks_.size(); ++i)
        networks_[i]->registerTelemetry(
            reg, format("%s/net%zu", name_.c_str(), i));
    for (std::size_t i = 0; i < memories_.size(); ++i)
        memories_[i]->registerTelemetry(
            reg, format("%s/mem%zu", name_.c_str(), i));
    if (host_)
        host_->registerTelemetry(reg, name_ + "/host0");
    kernel_.registerTelemetry(reg, name_ + "/uck");
    health_.registerTelemetry(reg, name_ + "/health");
    profiler_.registerTelemetry(reg, name_ + "/profile");
    traceTelemetry_.reset(reg);
    registerTraceGauges(traceTelemetry_, name_ + "/trace");
}

std::unique_ptr<Shell>
Shell::makeUnified(Engine &engine, const FpgaDevice &device)
{
    return std::make_unique<Shell>(engine, device,
                                   unifiedConfigFor(device),
                                   "unified_" + device.name);
}

std::unique_ptr<Shell>
Shell::makeTailored(Engine &engine, const FpgaDevice &device,
                    const RoleRequirements &role)
{
    return std::make_unique<Shell>(engine, device,
                                   tailorConfigFor(device, role),
                                   role.name + "_" + device.name);
}

NetworkRbb &
Shell::network(std::size_t i)
{
    if (i >= networks_.size())
        fatal("shell '%s' has %zu network RBB(s); index %zu",
              name_.c_str(), networks_.size(), i);
    return *networks_[i];
}

MemoryRbb &
Shell::memory(std::size_t i)
{
    if (i >= memories_.size())
        fatal("shell '%s' has %zu memory RBB(s); index %zu",
              name_.c_str(), memories_.size(), i);
    return *memories_[i];
}

HostRbb &
Shell::host()
{
    if (host_ == nullptr)
        fatal("shell '%s' was tailored without a host RBB",
              name_.c_str());
    return *host_;
}

std::vector<Rbb *>
Shell::rbbs()
{
    std::vector<Rbb *> out;
    for (auto &n : networks_)
        out.push_back(n.get());
    for (auto &m : memories_)
        out.push_back(m.get());
    if (host_)
        out.push_back(host_.get());
    return out;
}

std::vector<const Rbb *>
Shell::rbbs() const
{
    std::vector<const Rbb *> out;
    for (const auto &n : networks_)
        out.push_back(n.get());
    for (const auto &m : memories_)
        out.push_back(m.get());
    if (host_)
        out.push_back(host_.get());
    return out;
}

ResourceVector
Shell::shellResources() const
{
    ResourceVector total = kernel_.resources() + health_.resources();
    for (const Rbb *rbb : rbbs())
        total += rbb->totalResources() + rbb->wrapperResources();
    return total;
}

ResourceVector
Shell::wrapperResources() const
{
    ResourceVector total;
    for (const Rbb *rbb : rbbs())
        total += rbb->wrapperResources();
    return total;
}

std::vector<ConfigItem>
Shell::allConfigItems() const
{
    std::vector<ConfigItem> out;
    for (const Rbb *rbb : rbbs()) {
        const auto items = rbb->allConfigItems();
        out.insert(out.end(), items.begin(), items.end());
    }
    return out;
}

std::vector<ConfigItem>
Shell::roleConfigItems() const
{
    std::vector<ConfigItem> out;
    for (const Rbb *rbb : rbbs()) {
        const auto items = rbb->roleConfigItems();
        out.insert(out.end(), items.begin(), items.end());
    }
    return out;
}

std::size_t
Shell::registerInitOps() const
{
    std::size_t n = 0;
    for (const Rbb *rbb : rbbs())
        n += rbb->registerInitOpCount();
    return n;
}

std::size_t
Shell::commandInitOps() const
{
    std::size_t n = 0;
    for (const Rbb *rbb : rbbs())
        n += rbb->commandInitCount();
    return n;
}

std::size_t
Shell::monitoringRegOps() const
{
    std::size_t n = 0;
    for (const Rbb *rbb : rbbs())
        n += rbb->monitoringRegCount();
    return n;
}

std::size_t
Shell::monitoringCommandOps() const
{
    std::size_t n = 0;
    for (const Rbb *rbb : rbbs())
        n += rbb->monitoringCommandCount();
    return n;
}

DevWorkload
Shell::devWorkload() const
{
    DevWorkload total;
    for (const Rbb *rbb : rbbs()) {
        const DevWorkload w = rbb->devWorkload();
        total.instanceLoc += w.instanceLoc;
        total.reusableLoc += w.reusableLoc;
        total.controlLoc += w.controlLoc;
        total.monitorLoc += w.monitorLoc;
    }
    return total;
}

CompileJob
Shell::compileJob(const std::string &project,
                  const ResourceVector &role_logic) const
{
    CompileJob job;
    job.projectName = project;
    job.device = &device_;
    for (const Rbb *rbb : rbbs())
        job.modules.push_back(&rbb->instance());
    ResourceVector soft = kernel_.resources();
    for (const Rbb *rbb : rbbs()) {
        soft += rbb->exFunctionResources();
        soft += rbb->controlMonitorResources();
        soft += rbb->wrapperResources();
    }
    job.shellLogic = soft;
    job.roleLogic = role_logic;
    job.shellConfig = &config_;
    return job;
}

} // namespace harmonia
