#include "shell/network_rbb.h"

#include "common/bits.h"
#include "common/logging.h"

namespace harmonia {

namespace {
// Packet filter + flow director soft logic.
const ResourceVector kExResources{4200, 5600, 12, 0, 0};
// Reusable control + monitoring logic.
const ResourceVector kCmResources{2100, 3000, 2, 0, 0};
} // namespace

ResourceVector
NetworkRbb::plannedSoftLogic()
{
    return kExResources + kCmResources +
           StreamWrapper::plannedResources();
}

NetworkRbb::NetworkRbb(Engine &engine, Clock *rbb_clk,
                       Vendor chip_vendor, unsigned gbps,
                       std::uint8_t instance_id)
    : Rbb(format("net_rbb%u", instance_id), RbbKind::Network,
          instance_id),
      mac_(makeMac(chip_vendor, gbps,
                   format("n%u", instance_id))),
      wrapper_(name() + ".wrap"),
      flowTable_(kFlowTableSize, 0)
{
    defineCtrlRegs();

    setExResources(kExResources);
    setCmResources(kCmResources);
    // Workload calibration: see shell/workload_model.cc.
    setReusableWeights(3540, 470, 300);

    // Registration order: RBB (consumer) before MAC (producer).
    engine.add(this, rbb_clk);
    engine.add(&wrapper_, rbb_clk);
    engine.add(mac_.get(), rbb_clk);
}

void
NetworkRbb::defineCtrlRegs()
{
    Addr a = 0;
    auto def = [&](const char *n, bool ro = false) {
        ctrlRegs().define({n, a, ro, ""});
        a += 4;
    };
    def("FILTER_ENABLE");
    def("LOCAL_MAC_LO");
    def("LOCAL_MAC_HI");
    def("DIRECTOR_MODE");
    def("DIRECTOR_QUEUES");
    def("FLOW_TBL_IDX");
    def("FLOW_TBL_DATA");
    def("MON_RX_PACKETS", true);
    def("MON_RX_BYTES", true);
    def("MON_TX_PACKETS", true);
    def("MON_TX_BYTES", true);
    def("MON_FILTERED", true);
    def("MON_RX_DROPS", true);
    def("MON_QUEUE_USAGE", true);

    ctrlRegs().onWrite(ctrlRegs().addrOf("FILTER_ENABLE"),
                       [this](std::uint32_t v) {
                           filterEnabled_ = v & 1;
                       });
    ctrlRegs().onWrite(ctrlRegs().addrOf("LOCAL_MAC_LO"),
                       [this](std::uint32_t v) {
                           localMac_ = (localMac_ & ~0xffffffffULL) | v;
                       });
    ctrlRegs().onWrite(ctrlRegs().addrOf("LOCAL_MAC_HI"),
                       [this](std::uint32_t v) {
                           localMac_ =
                               (localMac_ & 0xffffffffULL) |
                               (static_cast<std::uint64_t>(v) << 32);
                       });
    ctrlRegs().onWrite(ctrlRegs().addrOf("DIRECTOR_MODE"),
                       [this](std::uint32_t v) {
                           directorMode_ = v == 0 ? DirectorMode::Hash
                                                  : DirectorMode::Table;
                       });
    ctrlRegs().onWrite(ctrlRegs().addrOf("DIRECTOR_QUEUES"),
                       [this](std::uint32_t v) {
                           setDirectorQueues(
                               static_cast<std::uint16_t>(v));
                       });
    ctrlRegs().onWrite(
        ctrlRegs().addrOf("FLOW_TBL_DATA"), [this](std::uint32_t v) {
            const std::uint32_t idx =
                ctrlRegs().peek(ctrlRegs().addrOf("FLOW_TBL_IDX"));
            setFlowTableEntry(idx, static_cast<std::uint16_t>(v));
        });

    auto bind = [&](const char *reg, const char *stat) {
        ctrlRegs().onRead(ctrlRegs().addrOf(reg),
                          [this, stat](std::uint32_t) {
                              return static_cast<std::uint32_t>(
                                  monitor().value(stat));
                          });
    };
    bind("MON_RX_PACKETS", "rx_packets");
    bind("MON_RX_BYTES", "rx_bytes");
    bind("MON_TX_PACKETS", "tx_packets");
    bind("MON_TX_BYTES", "tx_bytes");
    bind("MON_FILTERED", "filtered_packets");
    bind("MON_RX_DROPS", "rx_drops");
    ctrlRegs().onRead(ctrlRegs().addrOf("MON_QUEUE_USAGE"),
                      [this](std::uint32_t) {
                          return static_cast<std::uint32_t>(
                              rxOut_.size());
                      });
}

PacketDesc
NetworkRbb::rxPop()
{
    noteMutation();
    if (rxOut_.empty())
        fatal("NetworkRbb '%s': rxPop with nothing available",
              name().c_str());
    return rxOut_.pop();
}

void
NetworkRbb::txPush(const PacketDesc &pkt)
{
    noteMutation();
    if (!txIn_.canPush())
        fatal("NetworkRbb '%s': txPush without txReady",
              name().c_str());
    txIn_.push(pkt);
}

void
NetworkRbb::setLocalMac(std::uint64_t mac)
{
    ctrlRegs().write(ctrlRegs().addrOf("LOCAL_MAC_LO"),
                     static_cast<std::uint32_t>(mac));
    ctrlRegs().write(ctrlRegs().addrOf("LOCAL_MAC_HI"),
                     static_cast<std::uint32_t>(mac >> 32));
}

void
NetworkRbb::setFilterEnabled(bool on)
{
    ctrlRegs().write(ctrlRegs().addrOf("FILTER_ENABLE"), on ? 1 : 0);
}

void
NetworkRbb::addMulticastGroup(std::uint64_t mac)
{
    multicastGroups_.insert(mac);
}

bool
NetworkRbb::inMulticastGroup(std::uint64_t mac) const
{
    return multicastGroups_.count(mac) != 0;
}

void
NetworkRbb::setDirectorMode(DirectorMode mode)
{
    ctrlRegs().write(ctrlRegs().addrOf("DIRECTOR_MODE"),
                     mode == DirectorMode::Hash ? 0 : 1);
}

void
NetworkRbb::setDirectorQueues(std::uint16_t n)
{
    if (n == 0)
        fatal("flow director needs at least one queue");
    directorQueues_ = n;
}

void
NetworkRbb::setFlowTableEntry(std::uint32_t index, std::uint16_t queue)
{
    if (index >= flowTable_.size())
        fatal("flow table index %u out of range (%zu)", index,
              flowTable_.size());
    if (flowTable_[index] == 0 && queue != 0)
        ++flowEntriesProgrammed_;
    flowTable_[index] = queue;
}

std::uint16_t
NetworkRbb::flowTableEntry(std::uint32_t index) const
{
    if (index >= flowTable_.size())
        fatal("flow table index %u out of range (%zu)", index,
              flowTable_.size());
    return flowTable_[index];
}

void
NetworkRbb::setRxShed(bool on)
{
    if (rxShed_ != on)
        monitor()
            .counter(on ? "shed_enters" : "shed_exits")
            .inc();
    rxShed_ = on;
    rxShedPhase_ = 0;
}

double
NetworkRbb::rxBitsPerSecond() const
{
    return rxBytesMeter_.ratePerSecond() * 8;
}

double
NetworkRbb::rxPacketsPerSecond() const
{
    return rxPacketsMeter_.ratePerSecond();
}

void
NetworkRbb::registerTelemetry(MetricsRegistry &reg,
                              const std::string &prefix)
{
    Rbb::registerTelemetry(reg, prefix);
    wrapper_.registerTelemetry(reg, prefix + "/wrapper");
    telemetryHandle().addRate(prefix + "/rx_pps", &rxPacketsMeter_);
    telemetryHandle().addRate(prefix + "/rx_Bps", &rxBytesMeter_);
    telemetryHandle().addGauge(prefix + "/rx_queue_usage", [this] {
        return static_cast<double>(rxOut_.size());
    });
}

std::uint16_t
NetworkRbb::directQueue(std::uint64_t flow_hash) const
{
    if (directorMode_ == DirectorMode::Hash)
        return static_cast<std::uint16_t>(flow_hash % directorQueues_);
    return flowTable_[flow_hash % flowTable_.size()];
}

bool
NetworkRbb::filterPass(const PacketDesc &pkt)
{
    if (!filterEnabled_)
        return true;
    if (pkt.dstMac == localMac_)
        return true;
    if (pkt.multicast && inMulticastGroup(pkt.dstMac))
        return true;
    monitor().counter("filtered_packets").inc();
    return false;
}

void
NetworkRbb::tick()
{
    // RX: MAC -> wrapper (translation latency).
    while (mac_->rxAvailable())
        wrapper_.ingressPush(mac_->rxPop());

    // Wrapper -> filter -> director -> role queue.
    while (wrapper_.ingressAvailable()) {
        if (!rxOut_.canPush()) {
            monitor().counter("rx_drops").inc();
            wrapper_.ingressPop();
            continue;
        }
        PacketDesc pkt = wrapper_.ingressPop();
        if (pkt.fcsError) {
            // Corrupted on a shell-internal link (injected fault);
            // the filter stage drops it like the MAC drops bad FCS.
            monitor().counter("rx_bad_fcs").inc();
            continue;
        }
        if (rxShed_ && (rxShedPhase_++ & 1)) {
            monitor().counter("rx_shed").inc();
            continue;
        }
        if (!filterPass(pkt))
            continue;
        pkt.queue = directQueue(pkt.flowHash);
        monitor().counter("rx_packets").inc();
        monitor().counter("rx_bytes").inc(pkt.bytes);
        rxBytesMeter_.record(now(), pkt.bytes);
        rxPacketsMeter_.record(now());
        rxOut_.push(pkt);
    }

    // TX: role -> wrapper -> MAC.
    while (txIn_.canPop())
        wrapper_.egressPush(txIn_.pop());
    while (wrapper_.egressAvailable() && mac_->txReady()) {
        PacketDesc pkt = wrapper_.egressPop();
        monitor().counter("tx_packets").inc();
        monitor().counter("tx_bytes").inc(pkt.bytes);
        mac_->txPush(pkt);
    }
}

std::size_t
NetworkRbb::registerInitOpCount() const
{
    // Instance recipe + filter programming (enable, MAC lo/hi) +
    // director setup + per-entry table programming (index + data
    // registers per entry).
    std::size_t n = instance().initSequence().size() + 3 + 2;
    n += 2 * flowEntriesProgrammed_;
    return n;
}

std::size_t
NetworkRbb::commandInitCount() const
{
    // ModuleInit + one StatusWrite batch for filter/director config;
    // bulk TableWrite commands cover 12 entries each.
    return 2 + ceilDiv(flowEntriesProgrammed_, 12);
}

CommandResult
NetworkRbb::tableWrite(const std::vector<std::uint32_t> &data)
{
    if (data.size() < 2)
        return {kCmdBadArgument, {}};
    const std::uint32_t table = data[0];
    if (table == 0) {
        // Flow table bulk write: data[1]=start, data[2..]=queues.
        const std::uint32_t start = data[1];
        for (std::size_t i = 2; i < data.size(); ++i) {
            const std::uint32_t idx =
                start + static_cast<std::uint32_t>(i - 2);
            if (idx >= flowTable_.size())
                return {kCmdBadArgument, {}};
            setFlowTableEntry(idx,
                              static_cast<std::uint16_t>(data[i]));
        }
        return {kCmdOk, {}};
    }
    if (table == 1) {
        // Multicast group: data[1]=mac lo, data[2]=mac hi.
        if (data.size() < 3)
            return {kCmdBadArgument, {}};
        addMulticastGroup(
            (static_cast<std::uint64_t>(data[2]) << 32) | data[1]);
        return {kCmdOk, {}};
    }
    return {kCmdBadArgument, {}};
}

CommandResult
NetworkRbb::tableRead(const std::vector<std::uint32_t> &data)
{
    if (data.size() < 2 || data[0] != 0)
        return {kCmdBadArgument, {}};
    const std::uint32_t idx = data[1];
    if (idx >= flowTable_.size())
        return {kCmdBadArgument, {}};
    return {kCmdOk, {flowTable_[idx]}};
}

void
NetworkRbb::onReset()
{
    filterEnabled_ = false;
    localMac_ = 0;
    multicastGroups_.clear();
    directorMode_ = DirectorMode::Hash;
    rxShed_ = false;
    rxShedPhase_ = 0;
    flowTable_.assign(kFlowTableSize, 0);
    flowEntriesProgrammed_ = 0;
    rxOut_.clear();
    txIn_.clear();
    rxBytesMeter_.reset();
    rxPacketsMeter_.reset();
}

} // namespace harmonia
