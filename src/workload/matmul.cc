#include "workload/matmul.h"

#include <cmath>

#include "common/logging.h"
#include "workload/packet_gen.h"

namespace harmonia {

MatMulWorkload::MatMulWorkload(const MatMulConfig &config)
    : cfg_(config)
{
    if (cfg_.dim == 0 || cfg_.parallelism == 0)
        fatal("matmul dimension and parallelism must be non-zero");
    if (cfg_.dim % cfg_.parallelism != 0)
        fatal("parallelism %u must divide dimension %u",
              cfg_.parallelism, cfg_.dim);
}

std::vector<float>
MatMulWorkload::reference(const std::vector<float> &a,
                          const std::vector<float> &b, unsigned dim)
{
    std::vector<float> c(static_cast<std::size_t>(dim) * dim, 0.0f);
    for (unsigned i = 0; i < dim; ++i)
        for (unsigned k = 0; k < dim; ++k)
            for (unsigned j = 0; j < dim; ++j)
                c[i * dim + j] += a[i * dim + k] * b[k * dim + j];
    return c;
}

std::vector<float>
MatMulWorkload::laneProduct(const std::vector<float> &a,
                            const std::vector<float> &b, unsigned dim,
                            unsigned parallelism)
{
    std::vector<float> c(static_cast<std::size_t>(dim) * dim, 0.0f);
    std::vector<float> lanes(parallelism);
    for (unsigned i = 0; i < dim; ++i) {
        for (unsigned j = 0; j < dim; ++j) {
            for (unsigned l = 0; l < parallelism; ++l)
                lanes[l] = 0.0f;
            for (unsigned k = 0; k < dim; ++k)
                lanes[k % parallelism] +=
                    a[i * dim + k] * b[k * dim + j];
            float sum = 0.0f;
            for (unsigned l = 0; l < parallelism; ++l)
                sum += lanes[l];
            c[i * dim + j] = sum;
        }
    }
    return c;
}

MatMulResult
MatMulWorkload::run() const
{
    const unsigned dim = cfg_.dim;
    Rng rng(cfg_.seed);
    auto rand_matrix = [&] {
        std::vector<float> m(static_cast<std::size_t>(dim) * dim);
        for (float &v : m)
            v = static_cast<float>(rng.nextDouble()) - 0.5f;
        return m;
    };

    const std::vector<float> a = rand_matrix();
    const std::vector<float> b = rand_matrix();
    const std::vector<float> ref = reference(a, b, dim);
    const std::vector<float> got =
        laneProduct(a, b, dim, cfg_.parallelism);

    float max_err = 0.0f;
    for (std::size_t i = 0; i < ref.size(); ++i)
        max_err = std::max(max_err, std::fabs(ref[i] - got[i]));

    // Timing: dim^2 outputs, each needing dim MACs spread over the
    // unrolled lanes, plus a fill/drain overhead per matrix.
    const std::uint64_t mac_cycles =
        static_cast<std::uint64_t>(dim) * dim * dim /
        cfg_.parallelism;
    const std::uint64_t overhead = 2ULL * dim + 32;
    const std::uint64_t cycles = mac_cycles + overhead;

    MatMulResult result;
    result.cyclesPerMatrix = cycles;
    result.matricesPerSecond = cfg_.clockMhz * 1e6 / cycles;
    result.dspUsed = cfg_.parallelism * kDspPerLane;
    result.maxAbsError = max_err;
    // Reduction-order differences stay within float rounding noise.
    result.verified = max_err < 1e-3f;
    return result;
}

} // namespace harmonia
