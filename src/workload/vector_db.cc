#include "workload/vector_db.h"

#include "common/logging.h"

namespace harmonia {

const char *
toString(AccessPattern p)
{
    switch (p) {
      case AccessPattern::Sequential:
        return "sequential";
      case AccessPattern::Fixed:
        return "fixed";
      case AccessPattern::Random:
        return "random";
    }
    return "?";
}

VectorDbWorkload::VectorDbWorkload(Engine &engine, MemoryRbb &memory,
                                   const VectorDbConfig &config)
    : engine_(engine), memory_(memory), cfg_(config)
{
    if (cfg_.dbVectors == 0 || cfg_.accesses == 0)
        fatal("vector DB needs a non-empty store and access count");
    if (cfg_.maxInFlight == 0)
        fatal("vector DB needs at least one in-flight slot");
}

Addr
VectorDbWorkload::addrOf(std::uint64_t index) const
{
    return index * cfg_.vectorBytes;
}

std::uint32_t
VectorDbWorkload::expectedVector(std::uint64_t index) const
{
    // Deterministic mix of index and seed; cheap to recompute.
    std::uint64_t z = index * 0x9e3779b97f4a7c15ULL + cfg_.seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::uint32_t>(z >> 32);
}

void
VectorDbWorkload::populate()
{
    // Page-sized batches keep the sparse store efficient.
    std::vector<std::uint8_t> batch;
    const std::uint64_t per_batch = 1024;
    for (std::uint64_t base = 0; base < cfg_.dbVectors;
         base += per_batch) {
        const std::uint64_t n =
            std::min(per_batch, cfg_.dbVectors - base);
        batch.assign(n * cfg_.vectorBytes, 0);
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint32_t v = expectedVector(base + i);
            for (unsigned b = 0; b < 4 && b < cfg_.vectorBytes; ++b)
                batch[i * cfg_.vectorBytes + b] =
                    static_cast<std::uint8_t>(v >> (8 * b));
        }
        memory_.storeWrite(addrOf(base), batch);
    }
}

VectorDbResult
VectorDbWorkload::run(AccessPattern pattern, bool write)
{
    Rng rng(cfg_.seed ^ (write ? 0xface : 0) ^
            static_cast<std::uint64_t>(pattern));

    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t latency_sum = 0;
    std::uint64_t seq_cursor = 0;
    const Tick started = engine_.now();

    auto next_index = [&]() -> std::uint64_t {
        switch (pattern) {
          case AccessPattern::Sequential:
            return seq_cursor++ % cfg_.dbVectors;
          case AccessPattern::Fixed:
            return 42 % cfg_.dbVectors;
          case AccessPattern::Random:
            return rng.nextBounded(cfg_.dbVectors);
        }
        return 0;
    };

    while (completed < cfg_.accesses) {
        // Keep the pipe full.
        while (issued < cfg_.accesses &&
               in_flight < cfg_.maxInFlight) {
            const std::uint64_t index = next_index();
            const bool ok =
                write ? memory_.write(addrOf(index), cfg_.vectorBytes,
                                      index)
                      : memory_.read(addrOf(index), cfg_.vectorBytes,
                                     index);
            if (!ok)
                break;  // controller back-pressure; tick and retry
            ++issued;
            ++in_flight;
        }

        engine_.step();

        while (memory_.hasCompletion()) {
            const MemCompletion c = memory_.popCompletion();
            latency_sum += c.latency();
            ++completed;
            --in_flight;
            if (!write) {
                const auto bytes = memory_.storeRead(
                    c.request.addr, cfg_.vectorBytes);
                std::uint32_t got = 0;
                for (unsigned b = 0;
                     b < 4 && b < bytes.size(); ++b)
                    got |= static_cast<std::uint32_t>(bytes[b])
                           << (8 * b);
                const std::uint64_t index =
                    c.request.addr / cfg_.vectorBytes;
                if (got != expectedVector(index))
                    panic("vector %llu corrupted: got %u want %u",
                          static_cast<unsigned long long>(index), got,
                          expectedVector(index));
            }
        }
    }

    const double seconds =
        static_cast<double>(engine_.now() - started) / kTicksPerSecond;
    VectorDbResult result;
    result.pattern = pattern;
    result.write = write;
    result.vectors = completed;
    result.vectorsPerSecond =
        seconds > 0 ? completed / seconds : 0;
    result.avgLatencyNs =
        completed ? latency_sum / 1000.0 / completed : 0;
    return result;
}

} // namespace harmonia
