#include "workload/packet_gen.h"

#include "common/logging.h"

namespace harmonia {

PacketGenerator::PacketGenerator(const PacketGenConfig &config)
    : cfg_(config), rng_(config.seed)
{
    if (cfg_.flows == 0)
        fatal("packet generator needs at least one flow");
    if (cfg_.sizeMode == SizeMode::Fixed &&
        (cfg_.fixedBytes < 64 || cfg_.fixedBytes > 9600))
        fatal("fixed packet size %u outside 64..9600", cfg_.fixedBytes);
    if (cfg_.foreignFraction + cfg_.multicastFraction > 1.0)
        fatal("foreign + multicast fractions exceed 1.0");
}

PacketDesc
PacketGenerator::next(Tick now)
{
    PacketDesc pkt;
    pkt.id = nextId_++;
    pkt.injected = now;
    pkt.flowHash = rng_.nextBounded(cfg_.flows);

    switch (cfg_.sizeMode) {
      case SizeMode::Fixed:
        pkt.bytes = cfg_.fixedBytes;
        break;
      case SizeMode::Imix: {
        const std::uint64_t r = rng_.nextBounded(12);
        pkt.bytes = r < 7 ? 64 : (r < 11 ? 576 : 1500);
        break;
      }
    }

    const double draw = rng_.nextDouble();
    if (draw < cfg_.multicastFraction) {
        pkt.multicast = true;
        pkt.dstMac = 0x01005e000000ULL | rng_.nextBounded(256);
    } else if (draw < cfg_.multicastFraction + cfg_.foreignFraction) {
        pkt.dstMac = 0xddccbbaa0000ULL | rng_.nextBounded(4096);
    } else {
        pkt.dstMac = cfg_.localMac;
    }
    return pkt;
}

} // namespace harmonia
