/**
 * @file
 * Stateful flow workload for the Layer-4 load balancer: flows open,
 * carry a packet train, and close, so connection-table behaviour
 * (insert, hit, evict) is exercised the way a public-facing VIP sees
 * traffic.
 */

#ifndef HARMONIA_WORKLOAD_FLOW_GEN_H_
#define HARMONIA_WORKLOAD_FLOW_GEN_H_

#include <vector>

#include "workload/packet_gen.h"

namespace harmonia {

/** Flow lifecycle markers carried on packets. */
enum class FlowPhase { Syn, Data, Fin };

/** One packet of a stateful flow workload. */
struct FlowPacket {
    PacketDesc packet;
    FlowPhase phase = FlowPhase::Data;
};

/** Configuration for the flow workload. */
struct FlowGenConfig {
    std::uint64_t seed = 7;
    std::uint64_t concurrentFlows = 4096;
    std::uint32_t packetsPerFlow = 16;  ///< data packets per flow
    std::uint32_t packetBytes = 256;
};

/**
 * Generates an interleaved schedule of flow packets: each active flow
 * emits SYN, N data packets, FIN; finished flows are replaced by new
 * ones so the concurrent-flow level stays constant.
 */
class FlowGenerator {
  public:
    explicit FlowGenerator(const FlowGenConfig &config);

    /** Next packet in the interleaved schedule. */
    FlowPacket next(Tick now);

    std::uint64_t flowsOpened() const { return opened_; }
    std::uint64_t flowsClosed() const { return closed_; }

  private:
    struct ActiveFlow {
        std::uint64_t hash;
        std::uint32_t sent = 0;  ///< data packets emitted
        bool synSent = false;
    };

    FlowGenConfig cfg_;
    Rng rng_;
    std::vector<ActiveFlow> active_;
    std::uint64_t nextFlowId_ = 0;
    std::uint64_t nextPktId_ = 0;
    std::uint64_t opened_ = 0;
    std::uint64_t closed_ = 0;
    std::size_t cursor_ = 0;
};

} // namespace harmonia

#endif // HARMONIA_WORKLOAD_FLOW_GEN_H_
