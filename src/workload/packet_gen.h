/**
 * @file
 * Deterministic synthetic packet workloads standing in for the
 * production traffic the paper measures against: configurable packet
 * sizes, flow counts, destination mixes and multicast fractions.
 */

#ifndef HARMONIA_WORKLOAD_PACKET_GEN_H_
#define HARMONIA_WORKLOAD_PACKET_GEN_H_

#include <cstdint>

#include "common/packet.h"

namespace harmonia {

/** SplitMix64: small, fast, reproducible PRNG for workloads. */
class Rng {
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, bound). bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t state_;
};

/** Packet-size regimes. */
enum class SizeMode {
    Fixed,  ///< every packet is `fixedBytes`
    Imix,   ///< 7:4:1 mix of 64/576/1500B (classic IMIX)
};

/** Generator configuration. */
struct PacketGenConfig {
    std::uint64_t seed = 1;
    SizeMode sizeMode = SizeMode::Fixed;
    std::uint32_t fixedBytes = 256;
    std::uint64_t flows = 1024;          ///< concurrent flow hashes
    std::uint64_t localMac = 0x112233445566ULL;
    double foreignFraction = 0.0;        ///< unicast to other machines
    double multicastFraction = 0.0;
};

/** Deterministic packet source. */
class PacketGenerator {
  public:
    explicit PacketGenerator(const PacketGenConfig &config);

    /** Produce the next packet, stamped at @p now. */
    PacketDesc next(Tick now);

    std::uint64_t generated() const { return nextId_; }

  private:
    PacketGenConfig cfg_;
    Rng rng_;
    std::uint64_t nextId_ = 0;
};

} // namespace harmonia

#endif // HARMONIA_WORKLOAD_PACKET_GEN_H_
