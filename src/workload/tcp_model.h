/**
 * @file
 * TCP transmission workload (§5.1): two servers whose FPGAs forward
 * the hosts' TCP traffic, measuring end-to-end throughput and latency
 * versus packet size — the communication-intensive benchmark of
 * Fig 18d. Windowed segment/ACK exchange over two peer-connected
 * Network RBBs.
 */

#ifndef HARMONIA_WORKLOAD_TCP_MODEL_H_
#define HARMONIA_WORKLOAD_TCP_MODEL_H_

#include <map>

#include "shell/network_rbb.h"
#include "sim/engine.h"

namespace harmonia {

/** Session parameters. */
struct TcpConfig {
    std::uint32_t segmentBytes = 512;
    std::uint32_t windowSegments = 32;
    std::uint64_t totalSegments = 4000;
};

/** Session outcome. */
struct TcpResult {
    std::uint64_t segmentsDelivered = 0;
    double throughputBps = 0;   ///< goodput (payload bits/s)
    double avgRttUs = 0;        ///< segment-send to ACK-receive
};

/**
 * A windowed reliable byte stream between two Network RBBs whose MACs
 * are peer-connected (caller wires the link). The sender keeps
 * `windowSegments` in flight; the receiver ACKs every segment.
 */
class TcpSession {
  public:
    TcpSession(Engine &engine, NetworkRbb &sender, NetworkRbb &receiver,
               const TcpConfig &config);

    /** Run to completion; fatal() if @p max_time elapses first. */
    TcpResult run(Tick max_time = kTicksPerSecond);

  private:
    Engine &engine_;
    NetworkRbb &sender_;
    NetworkRbb &receiver_;
    TcpConfig cfg_;
};

} // namespace harmonia

#endif // HARMONIA_WORKLOAD_TCP_MODEL_H_
