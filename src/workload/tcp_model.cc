#include "workload/tcp_model.h"

#include "common/logging.h"

namespace harmonia {

namespace {
/** ACK packets carry this flow hash so endpoints can tell them apart. */
constexpr std::uint64_t kAckFlow = 0xac4ac4ac4ULL;
} // namespace

TcpSession::TcpSession(Engine &engine, NetworkRbb &sender,
                       NetworkRbb &receiver, const TcpConfig &config)
    : engine_(engine), sender_(sender), receiver_(receiver),
      cfg_(config)
{
    if (cfg_.segmentBytes < 64)
        fatal("TCP segments below the 64B minimum frame");
    if (cfg_.windowSegments == 0 || cfg_.totalSegments == 0)
        fatal("TCP window and segment count must be non-zero");
}

TcpResult
TcpSession::run(Tick max_time)
{
    const Tick started = engine_.now();
    const Tick deadline = started + max_time;

    std::uint64_t sent = 0;
    std::uint64_t acked = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t rtt_sum = 0;
    std::map<std::uint64_t, Tick> send_time;

    while (acked < cfg_.totalSegments) {
        if (engine_.now() >= deadline)
            fatal("TCP session stalled: %llu/%llu segments ACKed",
                  static_cast<unsigned long long>(acked),
                  static_cast<unsigned long long>(cfg_.totalSegments));

        // Sender: fill the window.
        while (sent < cfg_.totalSegments &&
               in_flight < cfg_.windowSegments && sender_.txReady()) {
            PacketDesc seg;
            seg.id = sent;
            seg.bytes = cfg_.segmentBytes;
            seg.injected = engine_.now();
            seg.flowHash = 1;
            send_time[sent] = engine_.now();
            sender_.txPush(seg);
            ++sent;
            ++in_flight;
        }

        engine_.step();

        // Receiver: consume segments, emit ACKs.
        while (receiver_.rxAvailable()) {
            PacketDesc seg = receiver_.rxPop();
            if (!receiver_.txReady())
                fatal("receiver TX back-pressured on ACK path");
            PacketDesc ack;
            ack.id = seg.id;
            ack.bytes = 64;
            ack.injected = engine_.now();
            ack.flowHash = kAckFlow;
            receiver_.txPush(ack);
        }

        // Sender: absorb ACKs.
        while (sender_.rxAvailable()) {
            PacketDesc ack = sender_.rxPop();
            auto it = send_time.find(ack.id);
            if (it == send_time.end())
                continue;  // duplicate
            rtt_sum += engine_.now() - it->second;
            send_time.erase(it);
            ++acked;
            --in_flight;
        }
    }

    const double seconds =
        static_cast<double>(engine_.now() - started) / kTicksPerSecond;
    TcpResult result;
    result.segmentsDelivered = acked;
    result.throughputBps =
        seconds > 0
            ? acked * cfg_.segmentBytes * 8.0 / seconds
            : 0;
    result.avgRttUs = acked ? rtt_sum / 1e6 / acked : 0;
    return result;
}

} // namespace harmonia
