/**
 * @file
 * Vector-database workload (§5.1 "Database access"): a store of 32-bit
 * vectors in external memory, accessed sequentially, at a fixed
 * location, or randomly, measuring vectors processed per second —
 * the storage-intensive benchmark of Figs 10c and 18c.
 */

#ifndef HARMONIA_WORKLOAD_VECTOR_DB_H_
#define HARMONIA_WORKLOAD_VECTOR_DB_H_

#include <string>

#include "shell/memory_rbb.h"
#include "sim/engine.h"
#include "workload/packet_gen.h"

namespace harmonia {

/** Access patterns the benchmark sweeps. */
enum class AccessPattern { Sequential, Fixed, Random };

const char *toString(AccessPattern p);

/** Result of one access-pattern run. */
struct VectorDbResult {
    AccessPattern pattern;
    bool write = false;
    std::uint64_t vectors = 0;
    double vectorsPerSecond = 0;
    double avgLatencyNs = 0;
};

/** Workload parameters. */
struct VectorDbConfig {
    std::uint64_t seed = 11;
    std::uint32_t vectorBytes = 4;       ///< 32-bit vectors
    std::uint64_t dbVectors = 1 << 20;   ///< store size in vectors
    std::uint64_t accesses = 20000;      ///< operations per run
    std::uint64_t maxInFlight = 32;
};

/**
 * Drives a Memory RBB with the configured pattern. populate() fills
 * the functional store (verifiable reads); run() measures timing.
 */
class VectorDbWorkload {
  public:
    VectorDbWorkload(Engine &engine, MemoryRbb &memory,
                     const VectorDbConfig &config);

    /** Fill the functional store with deterministic vectors. */
    void populate();

    /** Expected value of vector @p index (for read verification). */
    std::uint32_t expectedVector(std::uint64_t index) const;

    /** Timed run of one pattern; reads verify data integrity. */
    VectorDbResult run(AccessPattern pattern, bool write);

  private:
    Addr addrOf(std::uint64_t index) const;

    Engine &engine_;
    MemoryRbb &memory_;
    VectorDbConfig cfg_;
};

} // namespace harmonia

#endif // HARMONIA_WORKLOAD_VECTOR_DB_H_
