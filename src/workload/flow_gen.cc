#include "workload/flow_gen.h"

#include "common/logging.h"

namespace harmonia {

FlowGenerator::FlowGenerator(const FlowGenConfig &config)
    : cfg_(config), rng_(config.seed)
{
    if (cfg_.concurrentFlows == 0)
        fatal("flow generator needs at least one flow");
    active_.reserve(cfg_.concurrentFlows);
    for (std::uint64_t i = 0; i < cfg_.concurrentFlows; ++i) {
        active_.push_back({rng_.next(), 0, false});
        ++opened_;
    }
}

FlowPacket
FlowGenerator::next(Tick now)
{
    ActiveFlow &flow = active_[cursor_];

    FlowPacket out;
    out.packet.id = nextPktId_++;
    out.packet.bytes = cfg_.packetBytes;
    out.packet.injected = now;
    out.packet.flowHash = flow.hash;

    if (!flow.synSent) {
        flow.synSent = true;
        out.phase = FlowPhase::Syn;
        out.packet.flags = kFlagSyn;
        out.packet.bytes = 64;  // SYNs are minimum-size
    } else if (flow.sent < cfg_.packetsPerFlow) {
        ++flow.sent;
        out.phase = FlowPhase::Data;
    } else {
        out.phase = FlowPhase::Fin;
        out.packet.flags = kFlagFin;
        out.packet.bytes = 64;
        ++closed_;
        // Replace with a fresh flow at the same slot.
        flow = {rng_.next(), 0, false};
        ++opened_;
    }

    cursor_ = (cursor_ + 1) % active_.size();
    return out;
}

} // namespace harmonia
