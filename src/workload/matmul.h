/**
 * @file
 * Matrix-multiplication workload (§5.1): single-precision 64x64
 * matrix products, the compute-intensive benchmark of Fig 18b. The
 * functional path computes real results with lane-partitioned
 * accumulation (as a loop-unrolled FPGA datapath would) and verifies
 * them against a reference; the timing path counts datapath cycles as
 * a function of the unroll parallelism.
 */

#ifndef HARMONIA_WORKLOAD_MATMUL_H_
#define HARMONIA_WORKLOAD_MATMUL_H_

#include <cstdint>
#include <vector>

namespace harmonia {

/** Workload parameters. */
struct MatMulConfig {
    unsigned dim = 64;           ///< square matrix dimension
    unsigned iterations = 1024;  ///< matrices per measurement
    unsigned parallelism = 4;    ///< unrolled MAC lanes (x4/x8/x16)
    double clockMhz = 300.0;     ///< kernel clock
    std::uint64_t seed = 3;
};

/** Result of a run. */
struct MatMulResult {
    double matricesPerSecond = 0;
    std::uint64_t cyclesPerMatrix = 0;
    unsigned dspUsed = 0;
    bool verified = false;       ///< FPGA result matches reference
    float maxAbsError = 0;
};

/** The matmul kernel model. */
class MatMulWorkload {
  public:
    explicit MatMulWorkload(const MatMulConfig &config);

    /** DSP slices one single-precision MAC lane consumes. */
    static constexpr unsigned kDspPerLane = 5;

    /** Functional + timing run. */
    MatMulResult run() const;

    /** Reference product (row-major, straight accumulation). */
    static std::vector<float>
    reference(const std::vector<float> &a, const std::vector<float> &b,
              unsigned dim);

    /**
     * Datapath product: the inner dimension is strided across
     * `parallelism` accumulator lanes that are summed at the end,
     * matching the hardware's reduction order.
     */
    static std::vector<float>
    laneProduct(const std::vector<float> &a, const std::vector<float> &b,
                unsigned dim, unsigned parallelism);

  private:
    MatMulConfig cfg_;
};

} // namespace harmonia

#endif // HARMONIA_WORKLOAD_MATMUL_H_
