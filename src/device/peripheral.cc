#include "device/peripheral.h"

#include "common/logging.h"

namespace harmonia {

const char *
toString(PeripheralKind k)
{
    switch (k) {
      case PeripheralKind::Qsfp28:
        return "QSFP28";
      case PeripheralKind::Qsfp56:
        return "QSFP56";
      case PeripheralKind::Qsfp112:
        return "QSFP112";
      case PeripheralKind::Dsfp:
        return "DSFP";
      case PeripheralKind::Ddr3:
        return "DDR3";
      case PeripheralKind::Ddr4:
        return "DDR4";
      case PeripheralKind::Hbm:
        return "HBM";
      case PeripheralKind::PcieGen3:
        return "PCIe-Gen3";
      case PeripheralKind::PcieGen4:
        return "PCIe-Gen4";
      case PeripheralKind::PcieGen5:
        return "PCIe-Gen5";
    }
    return "?";
}

PeripheralClass
classOf(PeripheralKind k)
{
    switch (k) {
      case PeripheralKind::Qsfp28:
      case PeripheralKind::Qsfp56:
      case PeripheralKind::Qsfp112:
      case PeripheralKind::Dsfp:
        return PeripheralClass::Network;
      case PeripheralKind::Ddr3:
      case PeripheralKind::Ddr4:
      case PeripheralKind::Hbm:
        return PeripheralClass::Memory;
      case PeripheralKind::PcieGen3:
      case PeripheralKind::PcieGen4:
      case PeripheralKind::PcieGen5:
        return PeripheralClass::Host;
    }
    panic("unreachable peripheral kind");
}

double
unitBandwidth(PeripheralKind k)
{
    // Network cages: line rate in bytes/s. Memories: per channel/stack.
    // PCIe: per lane (effective, after encoding overhead).
    switch (k) {
      case PeripheralKind::Qsfp28:
        return 100e9 / 8;
      case PeripheralKind::Qsfp56:
        return 200e9 / 8;
      case PeripheralKind::Qsfp112:
        return 400e9 / 8;
      case PeripheralKind::Dsfp:
        return 200e9 / 8;
      case PeripheralKind::Ddr3:
        return 12.8e9;   // DDR3-1600, 64-bit channel
      case PeripheralKind::Ddr4:
        return 19.2e9;   // DDR4-2400, 64-bit channel (paper's figure)
      case PeripheralKind::Hbm:
        return 460e9;    // full stack, 32 pseudo-channels (paper)
      case PeripheralKind::PcieGen3:
        return 0.985e9;  // per lane
      case PeripheralKind::PcieGen4:
        return 1.969e9;
      case PeripheralKind::PcieGen5:
        return 3.938e9;
    }
    panic("unreachable peripheral kind");
}

double
Peripheral::peakBandwidth() const
{
    const double unit = unitBandwidth(kind);
    if (classOf(kind) == PeripheralClass::Host) {
        if (lanes == 0)
            fatal("PCIe peripheral requires a lane count");
        return unit * lanes * count;
    }
    return unit * count;
}

unsigned
Peripheral::channels() const
{
    if (kind == PeripheralKind::Hbm)
        return 32 * count;
    return count;
}

std::string
Peripheral::toString() const
{
    if (classOf(kind) == PeripheralClass::Host)
        return format("%sx%u", harmonia::toString(kind), lanes);
    if (count > 1)
        return format("%sx%u", harmonia::toString(kind), count);
    return harmonia::toString(kind);
}

} // namespace harmonia
