#include "device/chip.h"

#include "common/logging.h"

namespace harmonia {

const char *
toString(ChipFamily f)
{
    switch (f) {
      case ChipFamily::VirtexUltraScalePlus:
        return "Virtex-UltraScale+";
      case ChipFamily::VirtexUltraScale:
        return "Virtex-UltraScale";
      case ChipFamily::Zynq7000:
        return "Zynq-7000";
      case ChipFamily::Agilex:
        return "Agilex";
      case ChipFamily::Stratix10:
        return "Stratix-10";
      case ChipFamily::Arria10:
        return "Arria-10";
    }
    return "?";
}

Vendor
vendorOf(ChipFamily f)
{
    switch (f) {
      case ChipFamily::VirtexUltraScalePlus:
      case ChipFamily::VirtexUltraScale:
      case ChipFamily::Zynq7000:
        return Vendor::Xilinx;
      case ChipFamily::Agilex:
      case ChipFamily::Stratix10:
      case ChipFamily::Arria10:
        return Vendor::Intel;
    }
    panic("unreachable chip family");
}

unsigned
processNm(ChipFamily f)
{
    switch (f) {
      case ChipFamily::VirtexUltraScalePlus:
        return 16;
      case ChipFamily::VirtexUltraScale:
        return 20;
      case ChipFamily::Zynq7000:
        return 28;
      case ChipFamily::Agilex:
        return 10;
      case ChipFamily::Stratix10:
        return 14;
      case ChipFamily::Arria10:
        return 20;
    }
    panic("unreachable chip family");
}

namespace {

// Budgets follow public device tables to the granularity the model
// needs (Intel ALM counts are folded into the lut/reg classes).
const std::vector<Chip> &
catalogue()
{
    static const std::vector<Chip> chips = {
        {"XCVU3P", ChipFamily::VirtexUltraScalePlus,
         {394080, 788160, 720, 320, 2280}, false},
        {"XCVU9P", ChipFamily::VirtexUltraScalePlus,
         {1182240, 2364480, 2160, 960, 6840}, false},
        {"XCVU23P", ChipFamily::VirtexUltraScalePlus,
         {1304160, 2608320, 2112, 1008, 1320}, false},
        {"XCVU35P", ChipFamily::VirtexUltraScalePlus,
         {872160, 1744320, 1344, 640, 5952}, true},
        {"XCVU125", ChipFamily::VirtexUltraScale,
         {716160, 1432320, 2520, 0, 1200}, false},
        {"XC7Z045", ChipFamily::Zynq7000,
         {218600, 437200, 545, 0, 900}, false},
        {"AGF014", ChipFamily::Agilex,
         {1463800, 2927600, 7110, 0, 4510}, false},
        {"AGF027", ChipFamily::Agilex,
         {2692760, 5385520, 13272, 0, 8528}, true},
        {"1SX280", ChipFamily::Stratix10,
         {1866240, 3732480, 11721, 0, 5760}, false},
        {"10AX115", ChipFamily::Arria10,
         {854400, 1708800, 2713, 0, 1518}, false},
    };
    return chips;
}

} // namespace

const Chip &
chipByName(const std::string &name)
{
    for (const Chip &c : catalogue())
        if (c.name == name)
            return c;
    fatal("unknown chip '%s'", name.c_str());
}

const std::vector<Chip> &
allChips()
{
    return catalogue();
}

} // namespace harmonia
