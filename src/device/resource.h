/**
 * @file
 * FPGA on-chip resource accounting. Every modelled hardware module
 * reports a ResourceVector; shells sum their parts, and the tailoring
 * and overhead experiments (Figs 11, 16, 18a) are deltas of these.
 */

#ifndef HARMONIA_DEVICE_RESOURCE_H_
#define HARMONIA_DEVICE_RESOURCE_H_

#include <cstdint>
#include <string>

namespace harmonia {

/** The five resource classes the paper's figures report. */
struct ResourceVector {
    std::uint64_t lut = 0;   ///< look-up tables (Intel: ALUT-equivalent)
    std::uint64_t reg = 0;   ///< flip-flops
    std::uint64_t bram = 0;  ///< 36Kb block-RAM equivalents
    std::uint64_t uram = 0;  ///< UltraRAM / eSRAM blocks
    std::uint64_t dsp = 0;   ///< DSP slices

    ResourceVector &operator+=(const ResourceVector &o);
    ResourceVector &operator-=(const ResourceVector &o);
    friend ResourceVector operator+(ResourceVector a,
                                    const ResourceVector &b)
    {
        return a += b;
    }
    friend ResourceVector operator-(ResourceVector a,
                                    const ResourceVector &b)
    {
        return a -= b;
    }
    bool operator==(const ResourceVector &) const = default;

    /** True when every component fits within @p budget. */
    bool fitsIn(const ResourceVector &budget) const;

    /** Scale all components (e.g. replication). */
    ResourceVector scaled(double factor) const;

    /**
     * Largest per-class utilization fraction against @p budget
     * (the number the paper's "% resource occupancy" plots report).
     */
    double maxUtilization(const ResourceVector &budget) const;

    /** Utilization fraction of one class by name (lut/reg/bram/uram/dsp). */
    double utilization(const std::string &klass,
                       const ResourceVector &budget) const;

    std::string toString() const;
};

/** Named access to a vector's classes; fatal() on unknown name. */
std::uint64_t resourceClass(const ResourceVector &v,
                            const std::string &klass);

} // namespace harmonia

#endif // HARMONIA_DEVICE_RESOURCE_H_
