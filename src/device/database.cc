#include "device/database.h"

#include <map>

#include "common/logging.h"
#include "common/strings.h"

namespace harmonia {

std::vector<Peripheral>
FpgaDevice::byClass(PeripheralClass cls) const
{
    std::vector<Peripheral> out;
    for (const Peripheral &p : peripherals)
        if (classOf(p.kind) == cls)
            out.push_back(p);
    return out;
}

bool
FpgaDevice::has(PeripheralKind kind) const
{
    for (const Peripheral &p : peripherals)
        if (p.kind == kind)
            return true;
    return false;
}

const Peripheral &
FpgaDevice::pcie() const
{
    for (const Peripheral &p : peripherals)
        if (classOf(p.kind) == PeripheralClass::Host)
            return p;
    fatal("device '%s' has no PCIe attachment", name.c_str());
}

std::string
FpgaDevice::toString() const
{
    std::string out =
        format("%s [%s %s]:", name.c_str(),
               harmonia::toString(boardVendor), chipName.c_str());
    for (const Peripheral &p : peripherals)
        out += " " + p.toString();
    return out;
}

DeviceDatabase &
DeviceDatabase::instance()
{
    static DeviceDatabase db = standard();
    return db;
}

DeviceDatabase
DeviceDatabase::standard()
{
    DeviceDatabase db;
    // The paper's Table 2 evaluation cards.
    db.add({"DeviceA", Vendor::Xilinx, "XCVU35P",
            {{PeripheralKind::Hbm, 1, 0},
             {PeripheralKind::Ddr4, 1, 0},
             {PeripheralKind::Qsfp28, 2, 0},
             {PeripheralKind::PcieGen4, 1, 8}},
            2021});
    db.add({"DeviceB", Vendor::InHouse, "XCVU9P",
            {{PeripheralKind::Ddr4, 2, 0},
             {PeripheralKind::Qsfp28, 2, 0},
             {PeripheralKind::PcieGen3, 1, 16}},
            2020});
    db.add({"DeviceC", Vendor::InHouse, "AGF014",
            {{PeripheralKind::Dsfp, 2, 0},
             {PeripheralKind::PcieGen4, 1, 16}},
            2022});
    db.add({"DeviceD", Vendor::Intel, "AGF014",
            {{PeripheralKind::Qsfp28, 2, 0},
             {PeripheralKind::PcieGen4, 1, 16},
             {PeripheralKind::Ddr4, 1, 0}},
            2023});
    // A next-generation in-house board (§2.2(iii)): 400G cages and a
    // Gen5 host link, showing new FPGA generations joining the fleet.
    db.add({"DeviceE", Vendor::InHouse, "XCVU23P",
            {{PeripheralKind::Qsfp112, 2, 0},
             {PeripheralKind::Ddr4, 2, 0},
             {PeripheralKind::PcieGen5, 1, 16}},
            2025});
    return db;
}

ResourceVector
roleRegionBudget(const FpgaDevice &device, double shell_fraction)
{
    if (shell_fraction < 0.0 || shell_fraction >= 1.0)
        fatal("shell fraction %.2f outside [0, 1)", shell_fraction);
    return device.chip().budget.scaled(1.0 - shell_fraction);
}

std::vector<FleetYear>
fleetHistory(const DeviceDatabase &db)
{
    // Deployment-volume model: each board type ramps to a steady
    // per-year volume that grows with how recent the type is —
    // reproducing Figure 3c's monotone growth to tens of thousands.
    std::map<unsigned, unsigned> types_per_year;
    unsigned first_year = 3000, last_year = 0;
    for (const FpgaDevice &d : db.all()) {
        ++types_per_year[d.introducedYear];
        first_year = std::min(first_year, d.introducedYear);
        last_year = std::max(last_year, d.introducedYear);
    }
    if (db.all().empty())
        return {};

    std::vector<FleetYear> out;
    unsigned total = 0;
    for (unsigned year = first_year; year <= last_year + 1; ++year) {
        FleetYear fy;
        fy.year = year;
        fy.newDeviceTypes =
            types_per_year.count(year) ? types_per_year[year] : 0;
        // Every active type ships more units each year it ages.
        unsigned units = 0;
        for (const FpgaDevice &d : db.all())
            if (d.introducedYear <= year)
                units += 1500 + 900 * (year - d.introducedYear);
        fy.newUnits = units;
        total += units;
        fy.totalUnits = total;
        out.push_back(fy);
    }
    return out;
}

void
DeviceDatabase::add(FpgaDevice device)
{
    if (contains(device.name))
        fatal("device '%s' already registered", device.name.c_str());
    devices_.push_back(std::move(device));
}

const FpgaDevice &
DeviceDatabase::byName(const std::string &name) const
{
    for (const FpgaDevice &d : devices_)
        if (d.name == name)
            return d;
    fatal("unknown device '%s'", name.c_str());
}

bool
DeviceDatabase::contains(const std::string &name) const
{
    for (const FpgaDevice &d : devices_)
        if (d.name == name)
            return true;
    return false;
}

} // namespace harmonia
