/**
 * @file
 * Off-chip peripheral descriptors: PCIe links, DDR/HBM memories, and
 * network cages. Device heterogeneity (§2.2) is largely peripheral
 * heterogeneity; module-level tailoring selects RBB instances that
 * match what the board actually has.
 */

#ifndef HARMONIA_DEVICE_PERIPHERAL_H_
#define HARMONIA_DEVICE_PERIPHERAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace harmonia {

/** Broad peripheral classes, matching the three RBB kinds. */
enum class PeripheralClass { Network, Memory, Host };

/** Concrete peripheral kinds present in the paper's device table. */
enum class PeripheralKind {
    Qsfp28,    ///< 100G network cage
    Qsfp56,    ///< 200G network cage
    Qsfp112,   ///< 400G network cage
    Dsfp,      ///< 200G network cage
    Ddr3,      ///< DDR3 channel
    Ddr4,      ///< DDR4 channel
    Hbm,       ///< HBM stack (32 pseudo-channels)
    PcieGen3,  ///< PCIe Gen3 endpoint
    PcieGen4,  ///< PCIe Gen4 endpoint
    PcieGen5,  ///< PCIe Gen5 endpoint
};

const char *toString(PeripheralKind k);
PeripheralClass classOf(PeripheralKind k);

/** One peripheral attachment on a device. */
struct Peripheral {
    PeripheralKind kind;
    unsigned count = 1;  ///< cages / channels / stacks
    unsigned lanes = 0;  ///< PCIe lanes (x8/x16); 0 for non-PCIe

    /**
     * Raw peak bandwidth in bytes/second for the whole attachment:
     * line rate for network cages, per-channel sum for memories,
     * lane rate x lanes for PCIe.
     */
    double peakBandwidth() const;

    /** Data channels exposed to the shell (e.g. HBM = 32 per stack). */
    unsigned channels() const;

    std::string toString() const;
};

/** Per-kind line/lane/channel rate in bytes per second. */
double unitBandwidth(PeripheralKind k);

} // namespace harmonia

#endif // HARMONIA_DEVICE_PERIPHERAL_H_
