/**
 * @file
 * FPGA chip models: family, vendor, process node and resource budget.
 * The supported-family list mirrors §3.3.1's generalizability
 * discussion (Virtex UltraScale+/UltraScale, Zynq 7000, Agilex,
 * Stratix 10, Arria 10).
 */

#ifndef HARMONIA_DEVICE_CHIP_H_
#define HARMONIA_DEVICE_CHIP_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "device/resource.h"

namespace harmonia {

/** Chip families Harmonia supports (paper §3.3.1). */
enum class ChipFamily {
    VirtexUltraScalePlus,  ///< 14/16nm, Xilinx
    VirtexUltraScale,      ///< 20nm, Xilinx
    Zynq7000,              ///< 28nm, Xilinx
    Agilex,                ///< 10nm, Intel
    Stratix10,             ///< 14nm, Intel
    Arria10,               ///< 20nm, Intel
};

const char *toString(ChipFamily f);

/** Vendor owning a chip family. */
Vendor vendorOf(ChipFamily f);

/** Process node of a family in nanometres. */
unsigned processNm(ChipFamily f);

/** One concrete FPGA die. */
struct Chip {
    std::string name;        ///< e.g. "XCVU35P"
    ChipFamily family;
    ResourceVector budget;   ///< total on-chip resources
    bool hasHbm = false;     ///< in-package HBM stacks

    Vendor vendor() const { return vendorOf(family); }
};

/**
 * Look up a chip model by part name; fatal() for unknown parts. The
 * catalogue covers every part the paper names.
 */
const Chip &chipByName(const std::string &name);

/** All catalogued chips. */
const std::vector<Chip> &allChips();

} // namespace harmonia

#endif // HARMONIA_DEVICE_CHIP_H_
