/**
 * @file
 * The FPGA device database: board-level descriptions combining a chip
 * with its peripherals and board vendor. Devices A-D replicate the
 * paper's Table 2 evaluation cards; the database is extensible so
 * platform teams can register new boards.
 */

#ifndef HARMONIA_DEVICE_DATABASE_H_
#define HARMONIA_DEVICE_DATABASE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "device/chip.h"
#include "device/peripheral.h"

namespace harmonia {

/** One FPGA board (card) as deployed in a server. */
struct FpgaDevice {
    std::string name;          ///< e.g. "DeviceA"
    Vendor boardVendor;        ///< board maker (may be InHouse)
    std::string chipName;      ///< die part number
    std::vector<Peripheral> peripherals;
    unsigned introducedYear = 2020;  ///< generation marker (§2.2(iii))

    const Chip &chip() const { return chipByName(chipName); }

    /** Peripherals of one class, e.g. all network cages. */
    std::vector<Peripheral> byClass(PeripheralClass cls) const;

    /** Does the board carry any peripheral of @p kind? */
    bool has(PeripheralKind kind) const;

    /** The PCIe attachment; every cloud card has exactly one. */
    const Peripheral &pcie() const;

    std::string toString() const;
};

/**
 * The on-chip budget left for tenant role partitions after the shell
 * (RBBs, wrappers, control kernel) takes its cut: the device's chip
 * budget scaled by (1 - @p shell_fraction). The default fraction is
 * the upper end of the paper's shell overhead measurements (Fig 16);
 * the fleet manager sizes PR slot tables against this so a card is
 * never partitioned past what its die can actually host.
 */
ResourceVector roleRegionBudget(const FpgaDevice &device,
                                double shell_fraction = 0.15);

/** One year of fleet evolution (Figure 3c's series). */
struct FleetYear {
    unsigned year = 2020;
    unsigned newDeviceTypes = 0;   ///< board types introduced
    unsigned newUnits = 0;         ///< cards deployed that year
    unsigned totalUnits = 0;       ///< cumulative fleet size
};

/**
 * The fleet-growth history behind Figure 3c: new device types per
 * year (from the database's introduction years) with deployment
 * volumes following the paper's "tens of thousands of FPGA
 * accelerators" trajectory. Unit counts are a documented model — the
 * type cadence is real data from the device database.
 */
std::vector<FleetYear> fleetHistory(const class DeviceDatabase &db);

/** Registry of known boards, pre-seeded with the paper's devices A-D. */
class DeviceDatabase {
  public:
    /** The process-wide database with the standard boards loaded. */
    static DeviceDatabase &instance();

    /** A fresh database pre-seeded with the standard boards. */
    static DeviceDatabase standard();

    /** Register a new board; fatal() on duplicate names. */
    void add(FpgaDevice device);

    const FpgaDevice &byName(const std::string &name) const;
    bool contains(const std::string &name) const;
    const std::vector<FpgaDevice> &all() const { return devices_; }

  private:
    std::vector<FpgaDevice> devices_;
};

} // namespace harmonia

#endif // HARMONIA_DEVICE_DATABASE_H_
