#include "device/resource.h"

#include <algorithm>

#include "common/logging.h"

namespace harmonia {

ResourceVector &
ResourceVector::operator+=(const ResourceVector &o)
{
    lut += o.lut;
    reg += o.reg;
    bram += o.bram;
    uram += o.uram;
    dsp += o.dsp;
    return *this;
}

ResourceVector &
ResourceVector::operator-=(const ResourceVector &o)
{
    if (o.lut > lut || o.reg > reg || o.bram > bram || o.uram > uram ||
        o.dsp > dsp) {
        panic("resource subtraction underflow: %s - %s",
              toString().c_str(), o.toString().c_str());
    }
    lut -= o.lut;
    reg -= o.reg;
    bram -= o.bram;
    uram -= o.uram;
    dsp -= o.dsp;
    return *this;
}

bool
ResourceVector::fitsIn(const ResourceVector &budget) const
{
    return lut <= budget.lut && reg <= budget.reg &&
           bram <= budget.bram && uram <= budget.uram &&
           dsp <= budget.dsp;
}

ResourceVector
ResourceVector::scaled(double factor) const
{
    if (factor < 0)
        fatal("negative resource scale %f", factor);
    auto s = [factor](std::uint64_t v) {
        return static_cast<std::uint64_t>(v * factor + 0.5);
    };
    return ResourceVector{s(lut), s(reg), s(bram), s(uram), s(dsp)};
}

double
ResourceVector::maxUtilization(const ResourceVector &budget) const
{
    double util = 0.0;
    auto frac = [](std::uint64_t used, std::uint64_t total) {
        return total == 0 ? (used == 0 ? 0.0 : 1.0)
                          : static_cast<double>(used) / total;
    };
    util = std::max(util, frac(lut, budget.lut));
    util = std::max(util, frac(reg, budget.reg));
    util = std::max(util, frac(bram, budget.bram));
    util = std::max(util, frac(uram, budget.uram));
    util = std::max(util, frac(dsp, budget.dsp));
    return util;
}

double
ResourceVector::utilization(const std::string &klass,
                            const ResourceVector &budget) const
{
    const std::uint64_t used = resourceClass(*this, klass);
    const std::uint64_t total = resourceClass(budget, klass);
    if (total == 0)
        return used == 0 ? 0.0 : 1.0;
    return static_cast<double>(used) / total;
}

std::string
ResourceVector::toString() const
{
    return format("{lut=%llu reg=%llu bram=%llu uram=%llu dsp=%llu}",
                  static_cast<unsigned long long>(lut),
                  static_cast<unsigned long long>(reg),
                  static_cast<unsigned long long>(bram),
                  static_cast<unsigned long long>(uram),
                  static_cast<unsigned long long>(dsp));
}

std::uint64_t
resourceClass(const ResourceVector &v, const std::string &klass)
{
    if (klass == "lut")
        return v.lut;
    if (klass == "reg")
        return v.reg;
    if (klass == "bram")
        return v.bram;
    if (klass == "uram")
        return v.uram;
    if (klass == "dsp")
        return v.dsp;
    fatal("unknown resource class '%s'", klass.c_str());
}

} // namespace harmonia
