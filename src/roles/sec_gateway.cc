#include "roles/sec_gateway.h"

#include "common/logging.h"

namespace harmonia {

SecGateway::SecGateway()
    : Role("sec_gateway", RoleArch::BumpInTheWire,
           standardRequirements())
{
}

RoleRequirements
SecGateway::standardRequirements()
{
    RoleRequirements r;
    r.name = "sec_gateway";
    r.needsNetwork = true;
    r.networkGbps = 100;
    r.networkPorts = 1;
    r.needsHost = true;
    r.hostQueues = 16;
    r.roleLogic = {38000, 52000, 96, 0, 0};
    r.roleLoc = 3170;
    return r;
}

void
SecGateway::addPolicy(const GatewayPolicy &policy)
{
    policies_.push_back(policy);
}

bool
SecGateway::allows(std::uint64_t flow_hash) const
{
    for (const GatewayPolicy &p : policies_)
        if (p.matches(flow_hash))
            return p.allow;
    return defaultAllow_;
}

void
SecGateway::tick()
{
    if (!active())
        return;

    NetworkRbb &net = shell().network();
    while (net.rxAvailable() && net.txReady()) {
        PacketDesc pkt = net.rxPop();
        if (!allows(pkt.flowHash)) {
            stats().counter("denied_packets").inc();
            stats().counter("denied_bytes").inc(pkt.bytes);
            continue;
        }
        stats().counter("forwarded_packets").inc();
        stats().counter("forwarded_bytes").inc(pkt.bytes);
        net.txPush(pkt);
    }
}

std::vector<std::uint32_t>
SecGateway::snapshotPayload() const
{
    std::vector<std::uint32_t> out;
    out.push_back(static_cast<std::uint32_t>(policies_.size()));
    for (const GatewayPolicy &p : policies_) {
        out.push_back(static_cast<std::uint32_t>(p.mask));
        out.push_back(static_cast<std::uint32_t>(p.mask >> 32));
        out.push_back(static_cast<std::uint32_t>(p.value));
        out.push_back(static_cast<std::uint32_t>(p.value >> 32));
        out.push_back(p.allow ? 1 : 0);
    }
    out.push_back(defaultAllow_ ? 1 : 0);
    return out;
}

CheckpointError
SecGateway::restorePayload(const std::vector<std::uint32_t> &payload)
{
    if (payload.empty())
        return CheckpointError::BadPayload;
    const std::size_t count = payload[0];
    if (payload.size() != 2 + 5 * count)
        return CheckpointError::BadPayload;

    std::vector<GatewayPolicy> policies;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t at = 1 + 5 * i;
        GatewayPolicy p;
        p.mask = (static_cast<std::uint64_t>(payload[at + 1]) << 32) |
                 payload[at];
        p.value =
            (static_cast<std::uint64_t>(payload[at + 3]) << 32) |
            payload[at + 2];
        p.allow = payload[at + 4] != 0;
        policies.push_back(p);
    }

    policies_ = std::move(policies);
    defaultAllow_ = payload.back() != 0;
    return CheckpointError::Ok;
}

CommandResult
SecGateway::executeCommand(std::uint16_t code,
                           const std::vector<std::uint32_t> &data)
{
    if (code == kCmdTableWrite) {
        // data: mask_lo, mask_hi, value_lo, value_hi, allow.
        if (data.size() < 5)
            return {kCmdBadArgument, {}};
        GatewayPolicy p;
        p.mask = (static_cast<std::uint64_t>(data[1]) << 32) | data[0];
        p.value =
            (static_cast<std::uint64_t>(data[3]) << 32) | data[2];
        p.allow = data[4] != 0;
        addPolicy(p);
        return {kCmdOk,
                {static_cast<std::uint32_t>(policies_.size())}};
    }
    return Role::executeCommand(code, data);
}

} // namespace harmonia
