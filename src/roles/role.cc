#include "roles/role.h"

#include "common/logging.h"

namespace harmonia {

const char *
toString(RoleArch arch)
{
    switch (arch) {
      case RoleArch::BumpInTheWire:
        return "BITW";
      case RoleArch::LookAside:
        return "Look-aside";
      case RoleArch::Infrastructure:
        return "Infrastructure";
    }
    return "?";
}

Role::Role(std::string name, RoleArch arch, RoleRequirements reqs)
    : Component(std::move(name)), arch_(arch), reqs_(std::move(reqs)),
      stats_(this->name())
{
}

void
Role::bind(Engine &engine, Shell &shell, std::uint8_t slot)
{
    if (shell_ != nullptr)
        fatal("role '%s' is already bound to shell '%s'",
              name().c_str(), shell_->name().c_str());

    const RoleRequirements &r = reqs_;
    if (r.needsNetwork && shell.networkCount() < r.networkPorts)
        fatal("role '%s' needs %u network port(s); shell '%s' has %zu",
              name().c_str(), r.networkPorts, shell.name().c_str(),
              shell.networkCount());
    if (r.needsMemory && shell.memoryCount() == 0)
        fatal("role '%s' needs memory; shell '%s' has none",
              name().c_str(), shell.name().c_str());
    if (r.needsHost && !shell.hasHost())
        fatal("role '%s' needs the host RBB; shell '%s' lacks it",
              name().c_str(), shell.name().c_str());

    shell_ = &shell;
    slot_ = slot;
    engine.add(this, shell.userClock());
    shell.kernel().registerTarget(kRoleRbbIdBase, slot, this);
}

Shell &
Role::shell()
{
    if (shell_ == nullptr)
        panic("role '%s' used before bind()", name().c_str());
    return *shell_;
}

const Shell &
Role::shell() const
{
    return const_cast<Role *>(this)->shell();
}

CommandResult
Role::executeCommand(std::uint16_t code,
                     const std::vector<std::uint32_t> &data)
{
    if (code == kCmdStatsSnapshot) {
        const std::uint32_t start = data.empty() ? 0 : data[0];
        const auto snap = stats_.snapshot();
        CommandResult res;
        res.data.push_back(static_cast<std::uint32_t>(snap.size()));
        for (std::size_t i = start;
             i < snap.size() && res.data.size() < 16; ++i)
            res.data.push_back(
                static_cast<std::uint32_t>(snap[i].second));
        return res;
    }
    return {kCmdUnknownCode, {}};
}

} // namespace harmonia
