#include "roles/role.h"

#include "common/logging.h"
#include "sim/engine.h"

namespace harmonia {

const char *
toString(RoleArch arch)
{
    switch (arch) {
      case RoleArch::BumpInTheWire:
        return "BITW";
      case RoleArch::LookAside:
        return "Look-aside";
      case RoleArch::Infrastructure:
        return "Infrastructure";
    }
    return "?";
}

Role::Role(std::string name, RoleArch arch, RoleRequirements reqs)
    : Component(std::move(name)), arch_(arch), reqs_(std::move(reqs)),
      stats_(this->name())
{
}

void
Role::bind(Engine &engine, Shell &shell, std::uint8_t slot)
{
    if (shell_ != nullptr)
        fatal("role '%s' is already bound to shell '%s'",
              name().c_str(), shell_->name().c_str());

    const RoleRequirements &r = reqs_;
    if (r.needsNetwork && shell.networkCount() < r.networkPorts)
        fatal("role '%s' needs %u network port(s); shell '%s' has %zu",
              name().c_str(), r.networkPorts, shell.name().c_str(),
              shell.networkCount());
    if (r.needsMemory && shell.memoryCount() == 0)
        fatal("role '%s' needs memory; shell '%s' has none",
              name().c_str(), shell.name().c_str());
    if (r.needsHost && !shell.hasHost())
        fatal("role '%s' needs the host RBB; shell '%s' lacks it",
              name().c_str(), shell.name().c_str());

    shell_ = &shell;
    slot_ = slot;
    engine.add(this, shell.userClock());
    shell.kernel().registerTarget(kRoleRbbIdBase, slot, this);
}

void
Role::unbind()
{
    if (shell_ == nullptr)
        return;
    shell_->kernel().unregisterTarget(kRoleRbbIdBase, slot_);
    if (engine() != nullptr)
        engine()->remove(this);
    shell_ = nullptr;
    slot_ = 0;
}

std::uint32_t
Role::checkpointKind() const
{
    return checkpointKindId(name());
}

std::vector<std::uint32_t>
Role::snapshot() const
{
    return encodeCheckpoint(checkpointKind(), stats_.snapshot(),
                            snapshotPayload());
}

CheckpointError
Role::restore(const std::vector<std::uint32_t> &blob)
{
    CheckpointImage img;
    const CheckpointError err =
        decodeCheckpoint(blob, checkpointKind(), &img);
    if (err != CheckpointError::Ok)
        return err;

    // Payload first: if the kind-specific state is unusable the
    // counters stay untouched.
    const CheckpointError perr = restorePayload(img.payload);
    if (perr != CheckpointError::Ok)
        return perr;

    stats_.resetAll();
    for (const auto &[sname, value] : img.stats)
        stats_.counter(sname).inc(value);
    return CheckpointError::Ok;
}

Shell &
Role::shell()
{
    if (shell_ == nullptr)
        panic("role '%s' used before bind()", name().c_str());
    return *shell_;
}

const Shell &
Role::shell() const
{
    return const_cast<Role *>(this)->shell();
}

CommandResult
Role::executeCommand(std::uint16_t code,
                     const std::vector<std::uint32_t> &data)
{
    if (code == kCmdCheckpoint)
        return ckptStream_.serveCheckpoint(
            data, [this] { return snapshot(); });
    if (code == kCmdRestore)
        return ckptStream_.serveRestore(
            data, [this](const std::vector<std::uint32_t> &blob) {
                return restore(blob);
            });
    if (code == kCmdStatsSnapshot) {
        const std::uint32_t start = data.empty() ? 0 : data[0];
        const auto snap = stats_.snapshot();
        CommandResult res;
        res.data.push_back(static_cast<std::uint32_t>(snap.size()));
        for (std::size_t i = start;
             i < snap.size() && res.data.size() < 16; ++i)
            res.data.push_back(
                static_cast<std::uint32_t>(snap[i].second));
        return res;
    }
    return {kCmdUnknownCode, {}};
}

} // namespace harmonia
