#include "roles/board_test.h"

#include "common/logging.h"
#include "common/strings.h"

namespace harmonia {

BoardTest::BoardTest()
    : Role("board_test", RoleArch::Infrastructure,
           standardRequirements())
{
}

RoleRequirements
BoardTest::standardRequirements()
{
    RoleRequirements r;
    r.name = "board_test";
    // The tester adapts to whatever the board has; requirements keep
    // only the host path mandatory so results can be collected.
    r.needsHost = true;
    r.hostQueues = 8;
    r.roleLogic = {30000, 40000, 64, 0, 16};
    r.roleLoc = 11370;
    return r;
}

bool
BoardTest::testNetwork(Engine &engine, BoardReport &report)
{
    if (shell().networkCount() == 0) {
        report.log.push_back("network: skipped (no network RBB)");
        return true;
    }
    NetworkRbb &net = shell().network();
    net.setLoopback(true);
    net.setFilterEnabled(false);

    const unsigned kPackets = 400;
    const std::uint32_t kBytes = 1024;
    unsigned sent = 0;
    unsigned received = 0;
    std::uint64_t expect_id = 0;
    bool ordered = true;
    const Tick started = engine.now();

    const bool done = engine.runUntilDone(
        [&] {
            while (sent < kPackets && net.txReady()) {
                PacketDesc pkt;
                pkt.id = sent;
                pkt.bytes = kBytes;
                pkt.injected = engine.now();
                net.txPush(pkt);
                ++sent;
            }
            while (net.rxAvailable()) {
                const PacketDesc pkt = net.rxPop();
                if (pkt.id != expect_id)
                    ordered = false;
                ++expect_id;
                ++received;
            }
            return received == kPackets;
        },
        100'000'000);

    const double seconds =
        static_cast<double>(engine.now() - started) / kTicksPerSecond;
    report.networkGbps =
        seconds > 0 ? received * kBytes * 8.0 / seconds / 1e9 : 0;
    net.setLoopback(false);

    if (!done || !ordered) {
        report.log.push_back(format(
            "network: FAIL (received %u/%u, ordered=%d)", received,
            kPackets, ordered ? 1 : 0));
        return false;
    }
    report.log.push_back(format("network: pass (%.1f Gbps loopback)",
                                report.networkGbps));
    return true;
}

bool
BoardTest::testMemory(Engine &engine, BoardReport &report)
{
    if (shell().memoryCount() == 0) {
        report.log.push_back("memory: skipped (no memory RBB)");
        return true;
    }
    MemoryRbb &mem = shell().memory();

    // Functional verification: walking pattern through the store.
    std::vector<std::uint8_t> pattern(256);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 7 + 3);
    mem.storeWrite(0x1000, pattern);
    if (mem.storeRead(0x1000, pattern.size()) != pattern) {
        report.log.push_back("memory: FAIL (data mismatch)");
        return false;
    }

    // Timed sequential sweep.
    const unsigned kOps = 500;
    const std::uint32_t kBlock = 4096;
    unsigned issued = 0;
    unsigned completed = 0;
    const Tick started = engine.now();
    const bool done = engine.runUntilDone(
        [&] {
            while (issued < kOps &&
                   mem.read(static_cast<Addr>(issued) * kBlock, kBlock,
                            issued))
                ++issued;
            while (mem.hasCompletion()) {
                mem.popCompletion();
                ++completed;
            }
            return completed == kOps;
        },
        500'000'000);
    const double seconds =
        static_cast<double>(engine.now() - started) / kTicksPerSecond;
    report.memoryGBps =
        seconds > 0 ? completed * double(kBlock) / seconds / 1e9 : 0;

    if (!done) {
        report.log.push_back(format("memory: FAIL (%u/%u reads)",
                                    completed, kOps));
        return false;
    }
    report.log.push_back(format("memory: pass (%.1f GB/s sequential)",
                                report.memoryGBps));
    return true;
}

bool
BoardTest::testHost(Engine &engine, BoardReport &report)
{
    HostRbb &host = shell().host();
    host.setQueueActive(0, true);

    const unsigned kOps = 300;
    const std::uint32_t kBytes = 16384;
    unsigned issued = 0;
    unsigned completed = 0;
    const Tick started = engine.now();
    const bool done = engine.runUntilDone(
        [&] {
            while (issued < kOps &&
                   host.submit(issued % 2 ? DmaDir::C2H : DmaDir::H2C,
                               0, kBytes, issued))
                ++issued;
            while (host.hasCompletion()) {
                host.popCompletion();
                ++completed;
            }
            return completed == kOps;
        },
        500'000'000);
    const double seconds =
        static_cast<double>(engine.now() - started) / kTicksPerSecond;
    report.dmaGBps =
        seconds > 0 ? completed * double(kBytes) / seconds / 1e9 : 0;

    if (!done) {
        report.log.push_back(format("host: FAIL (%u/%u transfers)",
                                    completed, kOps));
        return false;
    }
    report.log.push_back(
        format("host: pass (%.1f GB/s DMA)", report.dmaGBps));
    return true;
}

bool
BoardTest::testKernel(Engine &engine, BoardReport &report)
{
    CommandPacket ping;
    ping.srcId = kCtrlStandaloneTool;
    ping.dstId = kRbbSystem;
    ping.rbbId = kRbbSystem;
    ping.commandCode = kCmdTimeCount;
    if (!shell().kernel().submit(ping)) {
        report.log.push_back("kernel: FAIL (buffer rejected ping)");
        return false;
    }
    const bool done = engine.runUntilDone(
        [&] { return shell().kernel().hasResponse(); }, 10'000'000);
    if (!done) {
        report.log.push_back("kernel: FAIL (no response)");
        return false;
    }
    const CommandPacket resp = shell().kernel().popResponse();
    if (resp.status != kCmdOk || resp.data.size() != 2) {
        report.log.push_back("kernel: FAIL (bad response)");
        return false;
    }
    report.log.push_back("kernel: pass (time-count responds)");
    return true;
}

bool
BoardTest::testHealth(Engine &engine, BoardReport &report)
{
    engine.runFor(1'000'000);  // let the sensor ADCs convert
    HealthMonitor &mon = shell().health();
    if (mon.temperatureMilliC() < 20'000 ||
        mon.temperatureMilliC() > 110'000) {
        report.log.push_back(format(
            "health: FAIL (implausible temperature %u mC)",
            mon.temperatureMilliC()));
        return false;
    }
    if (mon.alarms() != 0) {
        report.log.push_back(format("health: FAIL (alarms 0x%x)",
                                    mon.alarms()));
        return false;
    }
    report.log.push_back(format(
        "health: pass (%u.%03u C, %u mW)",
        mon.temperatureMilliC() / 1000,
        mon.temperatureMilliC() % 1000, mon.powerMilliW()));
    return true;
}

BoardReport
BoardTest::runAll(Engine &engine)
{
    BoardReport report;
    report.networkPass = testNetwork(engine, report);
    report.memoryPass = testMemory(engine, report);
    report.hostPass = testHost(engine, report);
    report.kernelPass = testKernel(engine, report);
    report.healthPass = testHealth(engine, report);
    stats().counter("runs").inc();
    if (report.allPass())
        stats().counter("passes").inc();
    return report;
}

} // namespace harmonia
