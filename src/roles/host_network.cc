#include "roles/host_network.h"

#include "common/logging.h"

namespace harmonia {

HostNetwork::HostNetwork()
    : Role("host_network", RoleArch::BumpInTheWire,
           standardRequirements())
{
}

RoleRequirements
HostNetwork::standardRequirements()
{
    RoleRequirements r;
    r.name = "host_network";
    r.needsNetwork = true;
    r.networkGbps = 100;
    r.networkPorts = 2;
    r.needsMemory = true;
    r.memoryBandwidthGBps = 10.0;  // flow-state spillover
    r.memoryCapacityBytes = 1ULL << 30;
    r.needsHost = true;
    r.hostQueues = 64;
    r.roleLogic = {120000, 160000, 412, 0, 24};
    r.roleLoc = 17700;
    return r;
}

void
HostNetwork::installFlow(std::uint64_t flow_hash,
                         const FlowAction &action)
{
    flows_[flow_hash] = action;
}

bool
HostNetwork::hasFlow(std::uint64_t flow_hash) const
{
    return flows_.count(flow_hash) != 0;
}

void
HostNetwork::tick()
{
    if (!active())
        return;

    NetworkRbb &rx_port = shell().network(0);
    NetworkRbb &tx_port = shell().networkCount() > 1
                              ? shell().network(1)
                              : shell().network(0);
    HostRbb &host = shell().host();

    while (rx_port.rxAvailable()) {
        PacketDesc pkt = rx_port.rxPop();
        auto it = flows_.find(pkt.flowHash);

        if (it == flows_.end()) {
            // Slow path: punt to the host for rule installation.
            stats().counter("upcalls").inc();
            host.submit(DmaDir::C2H, pkt.queue % host.numQueues(),
                        pkt.bytes, pkt.id);
            if (autoInstall_) {
                FlowAction action;
                action.kind = FlowAction::Kind::ToHostQueue;
                action.queue = static_cast<std::uint16_t>(
                    pkt.flowHash % host.numQueues());
                installFlow(pkt.flowHash, action);
            }
            continue;
        }

        const FlowAction &action = it->second;
        switch (action.kind) {
          case FlowAction::Kind::ToHostQueue:
            stats().counter("to_host").inc();
            stats().counter("offloaded_bytes").inc(pkt.bytes);
            host.submit(DmaDir::C2H, action.queue, pkt.bytes, pkt.id);
            break;
          case FlowAction::Kind::ToWire:
            if (!tx_port.txReady()) {
                stats().counter("tx_drops").inc();
                break;
            }
            stats().counter("to_wire").inc();
            stats().counter("offloaded_bytes").inc(pkt.bytes);
            tx_port.txPush(pkt);
            break;
          case FlowAction::Kind::Drop:
            stats().counter("dropped").inc();
            break;
        }
    }
}

CommandResult
HostNetwork::executeCommand(std::uint16_t code,
                            const std::vector<std::uint32_t> &data)
{
    if (code == kCmdTableWrite) {
        // data: hash_lo, hash_hi, kind, queue.
        if (data.size() < 4)
            return {kCmdBadArgument, {}};
        FlowAction action;
        if (data[2] > 2)
            return {kCmdBadArgument, {}};
        action.kind = static_cast<FlowAction::Kind>(data[2]);
        action.queue = static_cast<std::uint16_t>(data[3]);
        installFlow(
            (static_cast<std::uint64_t>(data[1]) << 32) | data[0],
            action);
        return {kCmdOk, {static_cast<std::uint32_t>(flows_.size())}};
    }
    return Role::executeCommand(code, data);
}

} // namespace harmonia
