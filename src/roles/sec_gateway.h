/**
 * @file
 * Sec-Gateway role (Table 2): bump-in-the-wire DCI access control at
 * the cloud network boundary. Packets are matched against an ordered
 * policy table; denied traffic is dropped on-path, allowed traffic is
 * forwarded at line rate.
 */

#ifndef HARMONIA_ROLES_SEC_GATEWAY_H_
#define HARMONIA_ROLES_SEC_GATEWAY_H_

#include <vector>

#include "roles/role.h"

namespace harmonia {

/** One access-control rule over the flow-hash space. */
struct GatewayPolicy {
    std::uint64_t mask = ~0ULL;  ///< bits of the flow hash to match
    std::uint64_t value = 0;     ///< expected masked value
    bool allow = true;

    bool matches(std::uint64_t flow_hash) const
    {
        return (flow_hash & mask) == value;
    }
};

/** The Sec-Gateway role. */
class SecGateway : public Role {
  public:
    SecGateway();

    /** The role's tailoring requirements (one port + host control). */
    static RoleRequirements standardRequirements();

    /** Append a policy (first match wins). */
    void addPolicy(const GatewayPolicy &policy);
    std::size_t policyCount() const { return policies_.size(); }
    void setDefaultAllow(bool allow) { defaultAllow_ = allow; }

    /** Decision for a flow hash (exposed for tests). */
    bool allows(std::uint64_t flow_hash) const;

    void tick() override;

  protected:
    CommandResult
    executeCommand(std::uint16_t code,
                   const std::vector<std::uint32_t> &data) override;

    /** State words: [policy count, per-policy mask lo/hi + value
     *  lo/hi + allow (in match order), default allow]. */
    std::vector<std::uint32_t> snapshotPayload() const override;
    CheckpointError
    restorePayload(const std::vector<std::uint32_t> &payload) override;

  private:
    std::vector<GatewayPolicy> policies_;
    bool defaultAllow_ = true;
};

} // namespace harmonia

#endif // HARMONIA_ROLES_SEC_GATEWAY_H_
