#include "roles/retrieval.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/clock.h"

namespace harmonia {

Retrieval::Retrieval(const RetrievalConfig &config)
    : Role("retrieval", RoleArch::LookAside, standardRequirements()),
      cfg_(config)
{
    if (cfg_.dim == 0 || cfg_.topK == 0 || cfg_.parallelism == 0)
        fatal("retrieval config fields must be non-zero");
}

RoleRequirements
Retrieval::standardRequirements()
{
    RoleRequirements r;
    r.name = "retrieval";
    r.needsMemory = true;
    r.memoryBandwidthGBps = 100.0;  // full-corpus scans want HBM
    r.memoryCapacityBytes = 8ULL << 30;
    r.needsHost = true;
    r.hostQueues = 8;
    r.roleLogic = {90000, 120000, 320, 0, 1200};
    r.roleLoc = 6410;
    return r;
}

void
Retrieval::setCorpusItems(std::uint64_t items)
{
    if (items == 0)
        fatal("corpus must hold at least one item");
    corpusItems_ = items;
}

std::int8_t
Retrieval::embeddingElement(std::uint64_t item, unsigned component) const
{
    std::uint64_t z =
        item * 0x9e3779b97f4a7c15ULL + component * 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 29;
    return static_cast<std::int8_t>(z & 0xff);
}

std::int8_t
Retrieval::queryElement(std::uint64_t query_id, unsigned component) const
{
    std::uint64_t z = (query_id + 0x1234567) *
                          0x94d049bb133111ebULL +
                      component;
    z ^= z >> 31;
    return static_cast<std::int8_t>(z & 0xff);
}

std::int32_t
Retrieval::score(std::uint64_t query_id, std::uint64_t item) const
{
    std::int32_t acc = 0;
    for (unsigned c = 0; c < cfg_.dim; ++c)
        acc += static_cast<std::int32_t>(queryElement(query_id, c)) *
               static_cast<std::int32_t>(embeddingElement(item, c));
    return acc;
}

void
Retrieval::populateCorpus()
{
    if (corpusItems_ > kFunctionalLimit)
        fatal("corpus of %llu items exceeds the functional limit; "
              "use timing-only mode",
              static_cast<unsigned long long>(corpusItems_));
    MemoryRbb &mem = shell().memory();
    std::vector<std::uint8_t> row(cfg_.dim);
    for (std::uint64_t item = 0; item < corpusItems_; ++item) {
        for (unsigned c = 0; c < cfg_.dim; ++c)
            row[c] = static_cast<std::uint8_t>(
                embeddingElement(item, c));
        mem.storeWrite(item * cfg_.dim, row);
    }
}

bool
Retrieval::submitQuery(std::uint64_t id)
{
    if (pending_.size() >= 64) {
        stats().counter("rejected_queries").inc();
        return false;
    }
    pending_.emplace_back(id, now());
    stats().counter("queries").inc();
    return true;
}

RetrievalResult
Retrieval::popResult()
{
    if (results_.empty())
        fatal("retrieval '%s': popResult with none pending",
              name().c_str());
    RetrievalResult r = results_.front();
    results_.pop_front();
    return r;
}

Tick
Retrieval::queryServiceTime() const
{
    const MemoryRbb &mem =
        const_cast<Retrieval *>(this)->shell().memory();
    const auto &ctrl =
        const_cast<MemoryRbb &>(mem).controller();
    const double scan_bw =
        ctrl.channelBandwidth() * ctrl.channels();
    const double corpus_bytes =
        static_cast<double>(corpusItems_) * cfg_.dim;
    const double scan_s = corpus_bytes / scan_bw;

    const double clock_hz = clock() ? clock()->mhz() * 1e6 : 250e6;
    // One lane retires one embedding element per cycle.
    const double compute_s =
        corpus_bytes / cfg_.parallelism / clock_hz;

    return static_cast<Tick>(std::max(scan_s, compute_s) *
                             kTicksPerSecond);
}

std::vector<std::uint32_t>
Retrieval::snapshotPayload() const
{
    std::vector<std::uint32_t> out;
    const auto push64 = [&](std::uint64_t v) {
        out.push_back(static_cast<std::uint32_t>(v));
        out.push_back(static_cast<std::uint32_t>(v >> 32));
    };

    push64(corpusItems_);

    out.push_back(static_cast<std::uint32_t>(pending_.size()));
    for (const auto &[id, submitted] : pending_) {
        push64(id);
        push64(submitted);
    }

    out.push_back(busy_ ? 1 : 0);
    push64(activeQuery_);
    push64(activeSubmitted_);
    push64(busyUntil_);

    out.push_back(static_cast<std::uint32_t>(results_.size()));
    for (const RetrievalResult &r : results_) {
        push64(r.queryId);
        push64(r.submitted);
        push64(r.completed);
        out.push_back(static_cast<std::uint32_t>(r.topK.size()));
        for (const auto &[item, item_score] : r.topK) {
            push64(item);
            out.push_back(static_cast<std::uint32_t>(item_score));
        }
    }
    return out;
}

CheckpointError
Retrieval::restorePayload(const std::vector<std::uint32_t> &payload)
{
    std::size_t at = 0;
    bool short_read = false;
    const auto next = [&]() -> std::uint32_t {
        if (at >= payload.size()) {
            short_read = true;
            return 0;
        }
        return payload[at++];
    };
    const auto next64 = [&]() -> std::uint64_t {
        const std::uint64_t lo = next();
        return lo | (static_cast<std::uint64_t>(next()) << 32);
    };

    const std::uint64_t corpus = next64();
    if (corpus == 0)
        return CheckpointError::BadPayload;

    std::deque<std::pair<std::uint64_t, Tick>> pending;
    const std::uint32_t npending = next();
    for (std::uint32_t i = 0; i < npending && !short_read; ++i) {
        const std::uint64_t id = next64();
        pending.emplace_back(id, next64());
    }

    const bool busy = next() != 0;
    const std::uint64_t active_query = next64();
    const Tick active_submitted = next64();
    const Tick busy_until = next64();

    std::deque<RetrievalResult> results;
    const std::uint32_t nresults = next();
    for (std::uint32_t i = 0; i < nresults && !short_read; ++i) {
        RetrievalResult r;
        r.queryId = next64();
        r.submitted = next64();
        r.completed = next64();
        const std::uint32_t k = next();
        for (std::uint32_t j = 0; j < k && !short_read; ++j) {
            const std::uint64_t item = next64();
            r.topK.emplace_back(
                item, static_cast<std::int32_t>(next()));
        }
        results.push_back(std::move(r));
    }

    if (short_read || at != payload.size())
        return CheckpointError::BadPayload;

    corpusItems_ = corpus;
    pending_ = std::move(pending);
    results_ = std::move(results);
    busy_ = busy;
    activeQuery_ = active_query;
    activeSubmitted_ = active_submitted;
    busyUntil_ = busy_until;
    readsOutstanding_ = 0;

    // The standby's memory store is cold; re-derive the functional
    // corpus (embeddings are pure functions of item index).
    if (bound() && corpusItems_ <= kFunctionalLimit)
        populateCorpus();
    return CheckpointError::Ok;
}

void
Retrieval::tick()
{
    if (!active())
        return;

    MemoryRbb &mem = shell().memory();

    // Drain scan-read completions.
    while (mem.hasCompletion()) {
        mem.popCompletion();
        if (readsOutstanding_ > 0)
            --readsOutstanding_;
    }

    // Finish the active query.
    if (busy_ && now() >= busyUntil_ && readsOutstanding_ == 0) {
        RetrievalResult result;
        result.queryId = activeQuery_;
        result.submitted = activeSubmitted_;
        result.completed = now();
        if (corpusItems_ <= kFunctionalLimit) {
            // Exact top-K over the functional corpus.
            std::vector<std::pair<std::int32_t, std::uint64_t>> all;
            all.reserve(corpusItems_);
            for (std::uint64_t item = 0; item < corpusItems_; ++item)
                all.emplace_back(score(activeQuery_, item), item);
            const std::size_t k =
                std::min<std::size_t>(cfg_.topK, all.size());
            std::partial_sort(
                all.begin(), all.begin() + static_cast<long>(k),
                all.end(), [](const auto &x, const auto &y) {
                    return x.first > y.first ||
                           (x.first == y.first &&
                            x.second < y.second);
                });
            for (std::size_t i = 0; i < k; ++i)
                result.topK.emplace_back(all[i].second, all[i].first);
        }
        results_.push_back(std::move(result));
        stats().counter("completed_queries").inc();
        busy_ = false;
    }

    // Start the next query.
    if (!busy_ && !pending_.empty()) {
        auto [id, submitted] = pending_.front();
        pending_.pop_front();
        activeQuery_ = id;
        activeSubmitted_ = submitted;
        busy_ = true;
        busyUntil_ = now() + queryServiceTime();

        // Exercise the real memory path with representative block
        // reads across the scan footprint.
        const std::uint64_t corpus_bytes =
            corpusItems_ * cfg_.dim;
        const std::uint32_t block = 4096;
        const unsigned n_reads = static_cast<unsigned>(
            std::min<std::uint64_t>(32, corpus_bytes / block + 1));
        for (unsigned i = 0; i < n_reads; ++i) {
            const Addr addr =
                (corpus_bytes > block)
                    ? (corpus_bytes / n_reads) * i
                    : 0;
            if (mem.read(addr, block, id))
                ++readsOutstanding_;
        }
    }
}

} // namespace harmonia
