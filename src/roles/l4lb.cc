#include "roles/l4lb.h"

#include <map>
#include <set>

#include "common/logging.h"

namespace harmonia {

namespace {
/** Mixes a flow hash with a server id for rendezvous hashing. */
std::uint64_t
rendezvousScore(std::uint64_t flow_hash, unsigned server)
{
    std::uint64_t z =
        flow_hash ^ (0x9e3779b97f4a7c15ULL * (server + 1));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return z ^ (z >> 27);
}
} // namespace

Layer4Lb::Layer4Lb(unsigned real_servers)
    : Role("layer4_lb", RoleArch::BumpInTheWire,
           standardRequirements()),
      numServers_(real_servers), healthy_(real_servers, true)
{
    if (real_servers == 0)
        fatal("load balancer needs at least one real server");
}

RoleRequirements
Layer4Lb::standardRequirements()
{
    RoleRequirements r;
    r.name = "layer4_lb";
    r.needsNetwork = true;
    r.networkGbps = 100;
    r.networkPorts = 2;  // uplink + downlink
    r.needsHost = true;
    r.hostQueues = 32;
    r.roleLogic = {65000, 88000, 226, 0, 0};
    r.roleLoc = 7010;
    return r;
}

void
Layer4Lb::setServerHealthy(unsigned server, bool healthy)
{
    if (server >= numServers_)
        fatal("server %u out of range (%u)", server, numServers_);
    healthy_[server] = healthy;
}

unsigned
Layer4Lb::pickServer(std::uint64_t flow_hash) const
{
    unsigned best = 0;
    std::uint64_t best_score = 0;
    bool found = false;
    for (unsigned s = 0; s < numServers_; ++s) {
        if (!healthy_[s])
            continue;
        const std::uint64_t score = rendezvousScore(flow_hash, s);
        if (!found || score > best_score) {
            best = s;
            best_score = score;
            found = true;
        }
    }
    if (!found)
        fatal("no healthy real servers");
    return best;
}

bool
Layer4Lb::isPinned(std::uint64_t flow_hash) const
{
    return connTable_.count(flow_hash) != 0;
}

unsigned
Layer4Lb::pinnedServer(std::uint64_t flow_hash) const
{
    auto it = connTable_.find(flow_hash);
    if (it == connTable_.end())
        fatal("flow %llx is not pinned",
              static_cast<unsigned long long>(flow_hash));
    return it->second;
}

unsigned
Layer4Lb::processFlowPacket(std::uint64_t flow_hash, FlowPhase phase)
{
    auto it = connTable_.find(flow_hash);
    if (it != connTable_.end()) {
        stats().counter("table_hits").inc();
        const unsigned server = it->second;
        if (phase == FlowPhase::Fin) {
            connTable_.erase(it);
            stats().counter("flows_closed").inc();
        }
        return server;
    }

    stats().counter("table_misses").inc();
    const unsigned server = pickServer(flow_hash);
    if (phase != FlowPhase::Fin) {
        if (connTable_.size() >= kConnTableCapacity)
            evictOldest();
        connTable_.emplace(flow_hash, server);
        evictFifo_.push_back(flow_hash);
        // FIN-closed flows leave stale keys in the FIFO; compact once
        // they dominate so the queue stays O(capacity).
        if (evictFifo_.size() > 2 * kConnTableCapacity) {
            std::deque<std::uint64_t> live;
            for (const std::uint64_t key : evictFifo_)
                if (connTable_.count(key) != 0)
                    live.push_back(key);
            evictFifo_.swap(live);
        }
        stats().counter("flows_opened").inc();
    }
    return server;
}

void
Layer4Lb::evictOldest()
{
    // Bounded table: drop the oldest still-pinned flow, in insertion
    // order, so eviction is independent of hash-bucket layout.
    while (!evictFifo_.empty()) {
        const std::uint64_t victim = evictFifo_.front();
        evictFifo_.pop_front();
        if (connTable_.erase(victim) != 0) {
            stats().counter("evictions").inc();
            return;
        }
    }
    fatal("connection table full but eviction FIFO empty");
}

std::vector<std::uint32_t>
Layer4Lb::snapshotPayload() const
{
    std::vector<std::uint32_t> out;
    out.push_back(numServers_);
    std::uint32_t bits = 0;
    for (unsigned s = 0; s < numServers_; ++s) {
        if (healthy_[s])
            bits |= 1u << (s % 32);
        if (s % 32 == 31 || s + 1 == numServers_) {
            out.push_back(bits);
            bits = 0;
        }
    }

    out.push_back(static_cast<std::uint32_t>(connTable_.size()));
    // Walk the FIFO, not the hash table: pin order is the state. A
    // live key's first FIFO occurrence is its effective eviction
    // position (re-opened flows inherit their oldest slot), so emit
    // exactly that one.
    std::set<std::uint64_t> emitted;
    for (const std::uint64_t key : evictFifo_) {
        const auto it = connTable_.find(key);
        if (it == connTable_.end() || !emitted.insert(key).second)
            continue;
        out.push_back(static_cast<std::uint32_t>(key));
        out.push_back(static_cast<std::uint32_t>(key >> 32));
        out.push_back(it->second);
    }
    return out;
}

CheckpointError
Layer4Lb::restorePayload(const std::vector<std::uint32_t> &payload)
{
    std::size_t at = 0;
    const auto next = [&](std::uint32_t *w) {
        if (at >= payload.size())
            return false;
        *w = payload[at++];
        return true;
    };

    std::uint32_t servers = 0;
    if (!next(&servers) || servers != numServers_)
        return CheckpointError::BadPayload;

    std::vector<bool> healthy(numServers_, false);
    std::uint32_t bits = 0;
    for (unsigned s = 0; s < numServers_; ++s) {
        if (s % 32 == 0 && !next(&bits))
            return CheckpointError::BadPayload;
        healthy[s] = (bits >> (s % 32)) & 1;
    }

    std::uint32_t conns = 0;
    if (!next(&conns) ||
        payload.size() - at != 3 * static_cast<std::size_t>(conns))
        return CheckpointError::BadPayload;

    std::map<std::uint64_t, unsigned> table;
    std::deque<std::uint64_t> fifo;
    for (std::uint32_t i = 0; i < conns; ++i) {
        std::uint32_t lo = 0, hi = 0, server = 0;
        next(&lo);
        next(&hi);
        next(&server);
        const std::uint64_t key =
            (static_cast<std::uint64_t>(hi) << 32) | lo;
        if (server >= numServers_ || table.count(key) != 0)
            return CheckpointError::BadPayload;
        table.emplace(key, server);
        fifo.push_back(key);
    }

    healthy_ = std::move(healthy);
    connTable_.clear();
    connTable_.insert(table.begin(), table.end());
    evictFifo_ = std::move(fifo);
    return CheckpointError::Ok;
}

void
Layer4Lb::tick()
{
    if (!active())
        return;

    NetworkRbb &uplink = shell().network(0);
    NetworkRbb &downlink = shell().networkCount() > 1
                               ? shell().network(1)
                               : shell().network(0);

    while (uplink.rxAvailable() && downlink.txReady()) {
        PacketDesc pkt = uplink.rxPop();
        FlowPhase phase = FlowPhase::Data;
        if (pkt.flags & kFlagSyn)
            phase = FlowPhase::Syn;
        else if (pkt.flags & kFlagFin)
            phase = FlowPhase::Fin;
        const unsigned server = processFlowPacket(pkt.flowHash, phase);
        pkt.queue = static_cast<std::uint16_t>(server % 1024);
        stats().counter("forwarded_packets").inc();
        stats().counter("forwarded_bytes").inc(pkt.bytes);
        downlink.txPush(pkt);
    }
}

} // namespace harmonia
