/**
 * @file
 * Host-Network role (Table 2): bump-in-the-wire network offloading —
 * an exact-match flow cache in the Open vSwitch mould. Cached flows
 * are forwarded in hardware (to a host queue or back to the wire);
 * misses are punted to the host over DMA, which installs a rule.
 */

#ifndef HARMONIA_ROLES_HOST_NETWORK_H_
#define HARMONIA_ROLES_HOST_NETWORK_H_

#include <map>

#include "roles/role.h"

namespace harmonia {

/** Forwarding actions for cached flows. */
struct FlowAction {
    enum class Kind { ToHostQueue, ToWire, Drop };
    Kind kind = Kind::ToHostQueue;
    std::uint16_t queue = 0;  ///< for ToHostQueue
};

/** The Host-Network offload role. */
class HostNetwork : public Role {
  public:
    HostNetwork();

    static RoleRequirements standardRequirements();

    /** Install an exact-match rule (normally done on a miss upcall). */
    void installFlow(std::uint64_t flow_hash, const FlowAction &action);
    bool hasFlow(std::uint64_t flow_hash) const;
    std::size_t flowCount() const { return flows_.size(); }

    /**
     * Auto-install behaviour: when true, a miss installs a default
     * ToHostQueue rule (hash-spread) after the upcall, so sustained
     * traffic converges to the fast path.
     */
    void setAutoInstall(bool on) { autoInstall_ = on; }

    void tick() override;

    CommandResult
    executeCommand(std::uint16_t code,
                   const std::vector<std::uint32_t> &data) override;

  private:
    // Ordered map: installs are cold-path (miss upcalls), and a
    // deterministic container keeps any future table walk stable.
    std::map<std::uint64_t, FlowAction> flows_;
    bool autoInstall_ = true;
};

} // namespace harmonia

#endif // HARMONIA_ROLES_HOST_NETWORK_H_
