/**
 * @file
 * Layer-4 LB role (Table 2): a stateful SmartNIC load balancer in the
 * Tiara/Maglev mould. New flows pick a real server by rendezvous
 * hashing; established flows stay pinned through a bounded connection
 * table so server-set changes never break existing connections.
 */

#ifndef HARMONIA_ROLES_L4LB_H_
#define HARMONIA_ROLES_L4LB_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "roles/role.h"
#include "workload/flow_gen.h"  // harmonia-lint: allow(LAYER-002) FlowPhase comes from the generators

namespace harmonia {

/** The Layer-4 load balancer role. */
class Layer4Lb : public Role {
  public:
    /** @param real_servers Size of the backend pool. */
    explicit Layer4Lb(unsigned real_servers = 64);

    static RoleRequirements standardRequirements();

    /** Connection-table capacity before eviction. */
    static constexpr std::size_t kConnTableCapacity = 1 << 16;

    unsigned realServers() const { return numServers_; }

    /** Add/remove a backend (consistent behaviour for pinned flows). */
    void setServerHealthy(unsigned server, bool healthy);

    /** Rendezvous-hash choice among healthy servers. */
    unsigned pickServer(std::uint64_t flow_hash) const;

    /** Current pin for a flow, if any (exposed for tests). */
    bool isPinned(std::uint64_t flow_hash) const;
    unsigned pinnedServer(std::uint64_t flow_hash) const;

    std::size_t connectionCount() const { return connTable_.size(); }

    /**
     * Process one flow packet (SYN inserts, FIN removes). Returns the
     * chosen server. Exposed so tests and the datapath share logic.
     */
    unsigned processFlowPacket(std::uint64_t flow_hash,
                               FlowPhase phase);

    void tick() override;

  protected:
    /**
     * State words: [numServers, healthy bits packed 32/word, conn
     * count, per-conn key lo/hi + server in pin order]. Pin order is
     * part of the state — eviction on the restored twin must pick the
     * same victims the primary would have.
     */
    std::vector<std::uint32_t> snapshotPayload() const override;
    CheckpointError
    restorePayload(const std::vector<std::uint32_t> &payload) override;

  private:
    /** Evict the oldest still-pinned flow (FIFO order). */
    void evictOldest();

    unsigned numServers_;
    std::vector<bool> healthy_;
    // Lookup-only on the datapath; eviction traverses evictFifo_, so
    // bucket order is never observable.
    // harmonia-lint: allow(DET-003) iteration goes via evictFifo_
    std::unordered_map<std::uint64_t, unsigned> connTable_;
    /** Pin insertion order; stale entries (closed flows) are lazily
     *  skipped at eviction time and compacted when the queue grows
     *  past twice the table capacity. */
    std::deque<std::uint64_t> evictFifo_;
};

} // namespace harmonia

#endif // HARMONIA_ROLES_L4LB_H_
