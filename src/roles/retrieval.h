/**
 * @file
 * Retrieval role (Table 2): look-aside embedding retrieval in the
 * FAERY mould. Each query scans the full corpus of int8 embeddings in
 * external memory, computes similarity scores and keeps the top-K.
 * Functional top-K is exact for test-sized corpora; timing follows the
 * memory-scan / compute bound.
 */

#ifndef HARMONIA_ROLES_RETRIEVAL_H_
#define HARMONIA_ROLES_RETRIEVAL_H_

#include <deque>

#include "roles/role.h"
#include "rtl/pipeline.h"

namespace harmonia {

/** Retrieval kernel parameters. */
struct RetrievalConfig {
    unsigned dim = 64;          ///< embedding bytes (int8 per element)
    unsigned topK = 10;
    unsigned parallelism = 2048;  ///< similarity lanes (bytes/cycle)
};

/** A finished query. */
struct RetrievalResult {
    std::uint64_t queryId = 0;
    Tick submitted = 0;
    Tick completed = 0;
    /** (item, score), best first; exact for functional corpora. */
    std::vector<std::pair<std::uint64_t, std::int32_t>> topK;

    Tick latency() const { return completed - submitted; }
};

/** The embedding-retrieval role. */
class Retrieval : public Role {
  public:
    /** Corpora up to this size carry real data and exact top-K. */
    static constexpr std::uint64_t kFunctionalLimit = 1 << 16;

    explicit Retrieval(const RetrievalConfig &config = {});

    static RoleRequirements standardRequirements();

    /** Set the corpus size (items); larger corpora are timing-only. */
    void setCorpusItems(std::uint64_t items);
    std::uint64_t corpusItems() const { return corpusItems_; }

    /** Write functional embeddings into the memory RBB store. */
    void populateCorpus();

    /** Deterministic int8 embedding element for (item, component). */
    std::int8_t embeddingElement(std::uint64_t item,
                                 unsigned component) const;

    /** Deterministic query embedding element. */
    std::int8_t queryElement(std::uint64_t query_id,
                             unsigned component) const;

    /** Exact reference score (int8 dot product). */
    std::int32_t score(std::uint64_t query_id,
                       std::uint64_t item) const;

    bool submitQuery(std::uint64_t id);
    bool hasResult() const { return !results_.empty(); }
    RetrievalResult popResult();

    /** Modelled service time of one query at current corpus size. */
    Tick queryServiceTime() const;

    void tick() override;

  protected:
    /**
     * State words: corpus size, the pending queue, the in-flight
     * query (absolute ticks stay valid — primary and standby share
     * one simulated timeline) and undrained results. Outstanding
     * memory reads are deliberately NOT carried: the standby's
     * memory RBB never saw them, so restore re-arms with zero and
     * the service-time gate alone finishes the active query.
     */
    std::vector<std::uint32_t> snapshotPayload() const override;
    CheckpointError
    restorePayload(const std::vector<std::uint32_t> &payload) override;

  private:
    RetrievalConfig cfg_;
    std::uint64_t corpusItems_ = 1 << 14;
    std::deque<std::pair<std::uint64_t, Tick>> pending_;
    std::deque<RetrievalResult> results_;
    bool busy_ = false;
    std::uint64_t activeQuery_ = 0;
    Tick activeSubmitted_ = 0;
    Tick busyUntil_ = 0;
    unsigned readsOutstanding_ = 0;
};

} // namespace harmonia

#endif // HARMONIA_ROLES_RETRIEVAL_H_
