/**
 * @file
 * Role base class: the user-owned application logic deployed in the
 * FPGA's role partition. Roles bind to a shell's RBBs, run in the user
 * clock domain, and may expose their own command targets.
 */

#ifndef HARMONIA_ROLES_ROLE_H_
#define HARMONIA_ROLES_ROLE_H_

#include <string>

#include "cmd/checkpoint.h"
#include "cmd/command.h"
#include "common/stats.h"
#include "shell/tailoring.h"
#include "shell/unified_shell.h"
#include "sim/component.h"

namespace harmonia {

/** Acceleration architectures (paper Table 2). */
enum class RoleArch {
    BumpInTheWire,  ///< on-path packet processing
    LookAside,      ///< request/response offload
    Infrastructure, ///< board/infra services
};

const char *toString(RoleArch arch);

/** DstID space where roles register their command targets. */
constexpr std::uint8_t kRoleRbbIdBase = 0x10;

/**
 * Base role. Concrete roles implement bind() to attach to the shell's
 * RBBs and tick() for their datapath.
 */
class Role : public Component, public CommandTarget {
  public:
    Role(std::string name, RoleArch arch, RoleRequirements reqs);

    RoleArch arch() const { return arch_; }
    const RoleRequirements &requirements() const { return reqs_; }

    /**
     * Attach to @p shell and register on its user clock. fatal() when
     * the shell lacks an RBB the role requires. @p slot selects the
     * role partition (command instance id) for multi-tenant shells.
     */
    virtual void bind(Engine &engine, Shell &shell,
                      std::uint8_t slot = 0);

    /**
     * Undo bind(): deregister the command target from the old
     * kernel, detach from the engine, and clear the shell pointer so
     * the role can bind() again — possibly to a different shell. The
     * failover path migrates roles this way; the PR controller uses
     * it when it scrubs a corrupted slot.
     */
    virtual void unbind();

    /**
     * Whether the role partition is live. Partial reconfiguration
     * deactivates a role while its slot is being rewritten; concrete
     * roles gate their datapaths on this.
     */
    bool active() const { return active_; }
    void setActive(bool on) { active_ = on; }

    /** Whether bind() has attached this role to a shell. */
    bool bound() const { return shell_ != nullptr; }

    /** Slot assigned at bind time. */
    std::uint8_t slot() const { return slot_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /**
     * Checkpoint identity: FNV-1a of the role's name. Twin roles of
     * the same kind carry the same name by construction, so a blob
     * snapshotted on one device restores on its standby twin and on
     * nothing else.
     */
    std::uint32_t checkpointKind() const;

    /** Sealed state blob: stats + kind-specific payload. */
    std::vector<std::uint32_t> snapshot() const;

    /**
     * Re-seed this role from @p blob. Total: a skewed or corrupt
     * blob yields a diagnostic and leaves the role untouched. The
     * kind-specific payload applies before the stat counters so a
     * payload rejection cannot leave half-restored state.
     */
    CheckpointError restore(const std::vector<std::uint32_t> &blob);

    /** Default: roles answer status reads with their stats. */
    CommandResult
    executeCommand(std::uint16_t code,
                   const std::vector<std::uint32_t> &data) override;

  protected:
    Shell &shell();
    const Shell &shell() const;

    /** Kind-specific state words (default: stateless). */
    virtual std::vector<std::uint32_t> snapshotPayload() const
    {
        return {};
    }

    /** Apply kind-specific state (default: accept only empty). */
    virtual CheckpointError
    restorePayload(const std::vector<std::uint32_t> &payload)
    {
        return payload.empty() ? CheckpointError::Ok
                               : CheckpointError::BadPayload;
    }

  private:
    RoleArch arch_;
    RoleRequirements reqs_;
    Shell *shell_ = nullptr;
    StatGroup stats_;
    CheckpointStreamer ckptStream_;
    bool active_ = true;
    std::uint8_t slot_ = 0;
};

} // namespace harmonia

#endif // HARMONIA_ROLES_ROLE_H_
