/**
 * @file
 * Board-Test role (Table 2): the infrastructure service validating
 * custom FPGA boards before deployment. Exercises every RBB — network
 * loopback, memory write/read verification, DMA round trips and the
 * unified control kernel — and reports measured rates.
 */

#ifndef HARMONIA_ROLES_BOARD_TEST_H_
#define HARMONIA_ROLES_BOARD_TEST_H_

#include <string>

#include "roles/role.h"

namespace harmonia {

/** Outcome of a full board validation. */
struct BoardReport {
    bool networkPass = true;   ///< pass (or skipped when absent)
    bool memoryPass = true;
    bool hostPass = true;
    bool kernelPass = true;
    bool healthPass = true;
    double networkGbps = 0;    ///< measured loopback throughput
    double memoryGBps = 0;     ///< measured sequential bandwidth
    double dmaGBps = 0;        ///< measured DMA throughput
    std::vector<std::string> log;

    bool allPass() const
    {
        return networkPass && memoryPass && hostPass && kernelPass &&
               healthPass;
    }
};

/** The board-validation role. */
class BoardTest : public Role {
  public:
    BoardTest();

    static RoleRequirements standardRequirements();

    /** Run the full suite against the bound shell. */
    BoardReport runAll(Engine &engine);

    void tick() override {}

  private:
    bool testNetwork(Engine &engine, BoardReport &report);
    bool testHealth(Engine &engine, BoardReport &report);
    bool testMemory(Engine &engine, BoardReport &report);
    bool testHost(Engine &engine, BoardReport &report);
    bool testKernel(Engine &engine, BoardReport &report);
};

} // namespace harmonia

#endif // HARMONIA_ROLES_BOARD_TEST_H_
