/**
 * @file
 * harmonia_top: the fleet dashboard console.
 *
 *   harmonia_top [--seed N] [--rounds N] [--live] [--no-fault]
 *                [--summary]
 *
 * Runs the canned 4-card federation scenario (src/obs/fleet_sim) and
 * prints the harmonia-top dashboard. Default is one final snapshot —
 * deterministic bytes, suitable for CI byte-diffing across reruns and
 * HARMONIA_SIM_THREADS settings. --live re-renders the dashboard
 * after every poll round instead (watch the victim die mid-run);
 * --summary appends the per-device stream-state lines. Exit is 0;
 * all scenario logic lives library-side.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/fleet_sim.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--rounds N] [--live] "
                 "[--no-fault] [--summary]\n",
                 argv0);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    harmonia::FleetSimConfig cfg;
    bool live = false;
    bool summary = false;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            cfg.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--rounds") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            cfg.rounds = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--live") == 0) {
            live = true;
        } else if (std::strcmp(argv[i], "--no-fault") == 0) {
            cfg.injectFault = false;
        } else if (std::strcmp(argv[i], "--summary") == 0) {
            summary = true;
        } else {
            return usage(argv[0]);
        }
    }

    harmonia::FleetSim sim(cfg);
    if (live) {
        do {
            std::fputs(sim.top().c_str(), stdout);
            std::fputs("\n", stdout);
        } while (sim.step());
    } else {
        sim.run();
    }

    std::fputs(sim.top().c_str(), stdout);
    if (summary)
        std::fputs(sim.summary().c_str(), stdout);
    std::printf("fingerprint %016llx\n",
                static_cast<unsigned long long>(sim.fingerprint()));
    return 0;
}
