/**
 * @file
 * harmonia_analyze: the codebase-invariant static analyzer CLI.
 *
 *   harmonia_analyze [--root DIR] [--json] [--list-rules]
 *
 * Scans DIR/src (default: the current directory) with every rule
 * family in src/analysis and prints a DRC-style report. Exit status:
 * 0 when the tree has no Error-severity findings, 2 when it does,
 * 1 on usage or I/O problems. CI runs this as a blocking lint job;
 * see DESIGN.md §13 for the rule families and the suppression
 * syntax.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/analyzer.h"
#include "drc/render.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--json] [--list-rules]\n",
                 argv0);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    bool json = false;
    bool list_rules = false;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--root") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            root = argv[++i];
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--list-rules") == 0) {
            list_rules = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (list_rules) {
        for (const auto &fam : harmonia::analysis::ruleFamilies())
            std::printf("%-8s %s\n", fam.id, fam.description);
        return 0;
    }

    const harmonia::drc::DrcReport report =
        harmonia::analysis::analyzeTree(root);

    if (json)
        std::fputs(harmonia::drc::renderJsonLines(report).c_str(),
                   stdout);
    else
        std::fputs(harmonia::drc::renderText(report).c_str(),
                   stdout);

    if (report.hasRule("ANALYZE-000"))
        return 1;
    return report.clean() ? 0 : 2;
}
