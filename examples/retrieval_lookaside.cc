/**
 * @file
 * Look-aside acceleration scenario: FAERY-style embedding retrieval
 * on the HBM board. Populates a corpus in the Memory RBB, runs
 * queries and prints verified top-K results with latency.
 *
 *   $ ./retrieval_lookaside
 */

#include <cstdio>

#include "common/strings.h"
#include "host/cmd_driver.h"
#include "roles/retrieval.h"

using namespace harmonia;

int
main()
{
    const FpgaDevice &device =
        DeviceDatabase::instance().byName("DeviceA");
    std::printf("retrieval accelerator on %s\n",
                device.toString().c_str());

    Engine engine;
    auto shell = Shell::makeTailored(
        engine, device, Retrieval::standardRequirements());
    std::printf("tailoring picked the %s memory instance "
                "(%u channels)\n",
                toString(shell->memory().controller().memoryKind()),
                shell->memory().controller().channels());

    Retrieval role;
    role.bind(engine, *shell);
    role.setCorpusItems(8192);
    role.populateCorpus();
    CmdDriver driver(engine, *shell);
    driver.initializeAll();

    // Run a few queries and report exact top-K.
    for (std::uint64_t q = 1; q <= 3; ++q) {
        role.submitQuery(q);
        engine.runUntilDone([&] { return role.hasResult(); },
                            10'000'000'000ULL);
        const RetrievalResult r = role.popResult();
        std::printf("query %llu: latency %s, top-3 = "
                    "[%llu:%d, %llu:%d, %llu:%d]\n",
                    static_cast<unsigned long long>(r.queryId),
                    humanTime(r.latency()).c_str(),
                    static_cast<unsigned long long>(r.topK[0].first),
                    r.topK[0].second,
                    static_cast<unsigned long long>(r.topK[1].first),
                    r.topK[1].second,
                    static_cast<unsigned long long>(r.topK[2].first),
                    r.topK[2].second);
    }

    // Production-scale corpora: analytic service time.
    std::puts("\nscaling out (timing model):");
    for (std::uint64_t items :
         {1'000'000ULL, 100'000'000ULL, 1'000'000'000ULL}) {
        role.setCorpusItems(items);
        const Tick t = role.queryServiceTime();
        std::printf("  %11llu items: %8s/query  (%.1f QPS)\n",
                    static_cast<unsigned long long>(items),
                    humanTime(t).c_str(),
                    kTicksPerSecond / static_cast<double>(t));
    }

    // The memory RBB's monitoring shows the scan traffic.
    const CommandPacket resp =
        driver.call(kRbbMemory, 0, kCmdStatsSnapshot);
    std::printf("\nmemory RBB exported %u statistics over the "
                "command interface\n",
                resp.data.empty() ? 0 : resp.data[0]);
    return 0;
}
