/**
 * @file
 * Fleet watch: four heterogeneous cards (Xilinx DeviceA/B, embedded
 * DeviceC, Intel DeviceD) run mixed traffic while a host-side ObsHub
 * federates their telemetry over streaming subscriptions — the
 * observe layer the fleet scheduler and autoscaler consume. A
 * DeviceDeath fault kills DeviceC mid-run; real watchdogs feed the
 * hub's liveness, the fleet `devices/alive` series drops, and the
 * fleet-scoped SLO walks pending → firing on the burn-rate
 * lifecycle. Tracing is on, so periodic fleet sweeps produce genuine
 * cross-device span trees the trace federation stitches per corr.
 *
 *   $ ./fleet_watch              # fixed default seed, reproducible
 *   $ ./fleet_watch 42           # any other schedule
 *
 * Prints every fleet alert edge as it happens, the final
 * harmonia-top dashboard, one federated cross-device trace tree, and
 * the end-state fingerprint (bit-identical across reruns of one seed
 * and across HARMONIA_SIM_THREADS settings). CI greps the verdict
 * line "fleet watch: PASS"; exit is non-zero when the drill's
 * invariants do not hold.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "ha/watchdog.h"
#include "obs/fleet_sim.h"

using namespace harmonia;

int
main(int argc, char **argv)
{
    FleetSimConfig cfg;
    if (argc > 1)
        cfg.seed = std::strtoull(argv[1], nullptr, 0);
    cfg.trace = true;

    FleetSim sim(cfg);
    std::printf("fleet watch: %zu cards, seed %llu, victim %s dies "
                "at t=%llu\n\n",
                sim.shellCount(),
                static_cast<unsigned long long>(cfg.seed),
                cfg.victim.c_str(),
                static_cast<unsigned long long>(cfg.deathAt));

    // Real watchdogs corroborate the hub's own failure tracking.
    std::vector<std::unique_ptr<Watchdog>> dogs;
    for (std::size_t i = 0; i < sim.shellCount(); ++i) {
        dogs.push_back(std::make_unique<Watchdog>(sim.engine(),
                                                  sim.shell(i)));
        Watchdog *dog = dogs.back().get();
        sim.hub().attachLiveness(sim.hub().deviceLabels()[i], [dog] {
            dog->poll();
            return !dog->dead();
        });
    }

    // Step the scenario, printing every fleet alert edge.
    std::vector<AlertState> last(sim.hub().slo().specCount(),
                                 AlertState::Inactive);
    bool more = true;
    while (more) {
        more = sim.step();
        for (std::size_t i = 0; i < last.size(); ++i) {
            const AlertStatus &st = sim.hub().slo().status(i);
            if (st.state == last[i])
                continue;
            std::printf("t=%-12llu alert %-20s %s -> %s "
                        "(burn %.3f)\n",
                        static_cast<unsigned long long>(
                            sim.engine().now()),
                        st.name.c_str(), toString(last[i]),
                        toString(st.state), st.burnRate);
            last[i] = st.state;
        }
    }

    std::printf("\n%s\n", sim.top().c_str());
    std::fputs(sim.summary().c_str(), stdout);

    const std::vector<std::uint64_t> corrs =
        sim.federation().crossDeviceCorrs(Trace::instance());
    std::printf("\ncross-device corrs: %zu\n", corrs.size());
    if (!corrs.empty())
        std::fputs(TraceFederation::render(
                       sim.federation().treeForCorr(
                           Trace::instance(), corrs.front()))
                       .c_str(),
                   stdout);

    std::printf("\nfingerprint %016llx\n",
                static_cast<unsigned long long>(sim.fingerprint()));

    // Verdict: the victim was declared dead, the liveness SLO fired,
    // streaming stayed gap-free, and the sweeps crossed devices.
    const ObsDeviceStatus &victim = sim.hub().device(cfg.victim);
    bool fired = false;
    for (std::size_t i = 0; i < sim.hub().slo().specCount(); ++i)
        fired = fired ||
                sim.hub().slo().status(i).fireEvents > 0;
    const bool pass = !victim.alive && fired &&
                      sim.hub().gapsDetected() == 0 &&
                      !corrs.empty();
    std::printf("fleet watch: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
