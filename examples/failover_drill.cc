/**
 * @file
 * Failover drill: a primary card (Xilinx Device A) dies mid-traffic
 * and the coordinator promotes a standby from a different vendor
 * (Intel Device D) — last checkpoint plus journal-tail replay, the
 * workflow DESIGN.md §14 specifies. A sec_gateway role forwards
 * loopback traffic while the host keeps appending journaled policy
 * writes; a DeviceDeath window kills the primary; the watchdog
 * declares it dead and the coordinator re-seeds the standby.
 *
 *   $ ./failover_drill           # fixed default seed, reproducible
 *   $ ./failover_drill 42        # any other schedule
 *
 * The drill prints the measured downtime (failover_downtime_cycles=N,
 * the number BENCH_harmonia.json tracks), the end-state fingerprint
 * (bit-identical across reruns of one seed and across
 * HARMONIA_SIM_THREADS settings), and the verdict line CI greps:
 * "zero acknowledged-command loss: PASS". Exit is non-zero when any
 * acknowledged write is missing from the promoted standby. The last
 * checkpoint blob is dumped to ckpt_failover_drill.bin (gitignored).
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "fault/fault_plan.h"
#include "ha/failover.h"
#include "roles/sec_gateway.h"

using namespace harmonia;

int
main(int argc, char **argv)
{
    const char *seed_env = std::getenv("HARMONIA_CHAOS_SEED");
    const std::uint64_t seed =
        argc > 1        ? std::strtoull(argv[1], nullptr, 0)
        : seed_env != nullptr ? std::strtoull(seed_env, nullptr, 0)
                              : 20240808ull;

    Engine engine;
    const RoleRequirements reqs = SecGateway::standardRequirements();
    auto primary = Shell::makeTailored(
        engine, DeviceDatabase::instance().byName("DeviceA"), reqs);
    auto standby = Shell::makeTailored(
        engine, DeviceDatabase::instance().byName("DeviceD"), reqs);

    SecGateway role_p;
    SecGateway role_s;
    role_p.bind(engine, *primary);
    role_s.bind(engine, *standby);

    FailoverConfig cfg;
    cfg.checkpointInterval = 25'000'000;
    FailoverCoordinator coord(engine, *primary, *standby, cfg);
    coord.manageRole(role_p, role_s);

    // The card dies a third of the way in and never comes back.
    constexpr Tick kDeathAt = 300'000'000;
    FaultPlan plan(seed);
    plan.addWindow(FaultKind::DeviceDeath, kDeathAt,
                   2'000'000'000'000ULL, 1.0, "DeviceA");
    plan.arm();

    std::printf("failover drill: primary %s, standby %s, seed %llu\n",
                primary->name().c_str(), standby->name().c_str(),
                static_cast<unsigned long long>(seed));
    std::printf("device death scheduled at t=%llu; checkpoint "
                "interval %llu ticks\n",
                static_cast<unsigned long long>(kDeathAt),
                static_cast<unsigned long long>(
                    cfg.checkpointInterval));

    // --- Traffic + journaled control writes through the death. ---
    std::vector<std::uint64_t> acked_values;
    std::uint64_t next_value = 1;
    std::uint64_t pkts_injected = 0;
    const Tick wire = wireTime(512, 100e9);
    const auto write_deny = [&] {
        // Deny rules in a range the traffic never uses, each an
        // exact-match on a unique flow hash.
        const std::uint64_t v = (1ULL << 32) + next_value++;
        const CallOutcome out = coord.call(
            0, kCmdTableWrite,
            {0xffffffffu, 0xffffffffu, static_cast<std::uint32_t>(v),
             static_cast<std::uint32_t>(v >> 32), 0});
        if (out.ok() && out.response.status == kCmdOk)
            acked_values.push_back(v);
    };

    bool announced = false;
    int post_rounds = 0;
    for (int round = 0; round < 120; ++round) {
        Shell &active = coord.activeShell();
        for (int i = 0; i < 4; ++i) {
            PacketDesc pkt;
            pkt.bytes = 512;
            pkt.flowHash = pkts_injected++;
            pkt.injected = engine.now() + i * wire;
            active.network().mac().injectRx(pkt, pkt.injected);
        }
        if (round % 3 == 0)
            write_deny();
        if (coord.poll() && !announced) {
            announced = true;
            std::printf("t=%llu: watchdog declared the primary dead; "
                        "standby promoted\n",
                        static_cast<unsigned long long>(engine.now()));
        }
        engine.runFor(5'000'000);
        while (active.network().rxAvailable())
            active.network().rxPop();
        // A dozen healthy post-failover rounds close out the drill.
        if (coord.failedOver() && ++post_rounds > 12)
            break;
    }

    // --- Accounting. ---
    std::uint64_t lost = 0;
    for (const std::uint64_t v : acked_values)
        if (role_s.allows(v))
            ++lost;

    std::printf("\ninjected faults: %llu (plan fingerprint %016llx)\n",
                static_cast<unsigned long long>(plan.injectedTotal()),
                static_cast<unsigned long long>(plan.fingerprint()));
    std::printf("journaled calls: %llu acked | checkpoints=%llu "
                "replayed=%llu restore_failures=%llu\n",
                static_cast<unsigned long long>(coord.ackedCalls()),
                static_cast<unsigned long long>(
                    coord.stats().value("checkpoints")),
                static_cast<unsigned long long>(
                    coord.stats().value("replayed_commands")),
                static_cast<unsigned long long>(
                    coord.stats().value("restore_failures")));
    std::printf("standby gateway: %llu policies, %llu packets "
                "forwarded post-promotion\n",
                static_cast<unsigned long long>(role_s.policyCount()),
                static_cast<unsigned long long>(
                    role_s.stats().value("forwarded_packets")));
    std::printf("failover_downtime_ticks=%llu\n",
                static_cast<unsigned long long>(
                    coord.downtimeTicks()));
    std::printf("failover_downtime_cycles=%llu\n",
                static_cast<unsigned long long>(
                    coord.downtimeCycles()));
    std::printf("end-state fingerprint %016llx\n",
                static_cast<unsigned long long>(coord.fingerprint()));

    // Dump the promoted role's state blob — the artifact an operator
    // would keep as the post-incident baseline.
    const std::vector<std::uint32_t> blob = role_s.snapshot();
    if (FILE *f = std::fopen("ckpt_failover_drill.bin", "wb")) {
        std::fwrite(blob.data(), sizeof(std::uint32_t), blob.size(),
                    f);
        std::fclose(f);
        std::printf("wrote ckpt_failover_drill.bin (%zu words)\n",
                    blob.size());
    }

    const bool pass = coord.failedOver() && lost == 0;
    if (!coord.failedOver())
        std::printf("\nFAILOVER NEVER COMPLETED\n");
    std::printf("\nzero acknowledged-command loss: %s",
                pass ? "PASS" : "FAIL");
    if (lost != 0)
        std::printf(" (%llu acked writes missing)",
                    static_cast<unsigned long long>(lost));
    std::printf("\n");
    return pass ? 0 : 1;
}
