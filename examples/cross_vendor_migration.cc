/**
 * @file
 * Cross-vendor migration scenario: the same role and host software
 * moving from a Xilinx board (Device A) to an Intel board (Device D)
 * — the workflow §4 describes. Shows the platform adapters catching a
 * stale toolchain, the per-device CAD flows, and the migration-cost
 * difference between register and command interfaces.
 *
 *   $ ./cross_vendor_migration
 */

#include <cstdio>

#include "host/host_app.h"
#include "roles/sec_gateway.h"

using namespace harmonia;

namespace {

void
deployOn(const char *device_name, const RoleRequirements &reqs)
{
    const FpgaDevice &device =
        DeviceDatabase::instance().byName(device_name);
    std::printf("\n--- deploying '%s' on %s ---\n", reqs.name.c_str(),
                device.toString().c_str());

    Engine engine;
    auto shell = Shell::makeTailored(engine, device, reqs);

    // Project implementation: adapter inspection + CAD flow.
    Toolchain tc(VendorAdapter::standardFor(device));
    const BuildArtifact art = tc.compile(
        shell->compileJob(std::string("migrate_") + device_name,
                          reqs.roleLogic));
    for (const std::string &line : art.log)
        std::printf("  %s\n", line.c_str());

    // The identical role + host software runs on both.
    SecGateway role;
    role.bind(engine, *shell);
    CmdDriver driver(engine, *shell);
    std::printf("  bring-up used %zu commands\n",
                driver.initializeAll());

    const Tick wire = wireTime(512, 100e9);
    for (int i = 0; i < 500; ++i) {
        PacketDesc pkt;
        pkt.flowHash = i;
        pkt.bytes = 512;
        pkt.injected = engine.now() + i * wire;
        shell->network().mac().injectRx(pkt, pkt.injected);
    }
    engine.runFor(100'000'000);
    std::printf("  forwarded %llu/500 packets\n",
                static_cast<unsigned long long>(
                    role.stats().value("forwarded_packets")));
}

} // namespace

int
main()
{
    const RoleRequirements reqs = SecGateway::standardRequirements();

    // A misprovisioned build host is caught before compilation.
    {
        const FpgaDevice &dev_d =
            DeviceDatabase::instance().byName("DeviceD");
        Engine engine;
        auto shell = Shell::makeTailored(engine, dev_d, reqs);
        VendorAdapter stale(Vendor::Intel);
        stale.provide("cad_tool", "quartus-19.1");  // years old
        Toolchain tc(stale);
        const BuildArtifact art =
            tc.compile(shell->compileJob("stale", reqs.roleLogic));
        std::puts("--- stale toolchain demonstration ---");
        for (const std::string &line : art.log)
            std::printf("  %s\n", line.c_str());
    }

    deployOn("DeviceA", reqs);
    deployOn("DeviceD", reqs);

    // What the migration costs host software on each interface.
    Engine ea, ed;
    auto shell_a = Shell::makeTailored(
        ea, DeviceDatabase::instance().byName("DeviceA"), reqs);
    auto shell_d = Shell::makeTailored(
        ed, DeviceDatabase::instance().byName("DeviceD"), reqs);
    std::printf("\nmigration A->D software modifications: "
                "register IF = %zu, command IF = %zu\n",
                migrationModifications(*shell_a, *shell_d,
                                       HostInterface::Register),
                migrationModifications(*shell_a, *shell_d,
                                       HostInterface::Command));
    return 0;
}
