/**
 * @file
 * Multi-tenancy scenario (§6): the role region is partitioned into PR
 * slots; tenants are loaded, served and evicted at runtime through
 * the partial-reconfiguration controller while the shell — and the
 * other tenant — keep running.
 *
 *   $ ./multi_tenant_pr
 */

#include <cstdio>

#include "common/strings.h"
#include "host/cmd_driver.h"
#include "roles/sec_gateway.h"
#include "shell/partial_reconfig.h"

using namespace harmonia;

namespace {

void
pumpTraffic(Engine &engine, Shell &shell, unsigned packets)
{
    const Tick wire = wireTime(512, 100e9);
    for (unsigned i = 0; i < packets; ++i) {
        PacketDesc pkt;
        pkt.flowHash = i;
        pkt.bytes = 512;
        pkt.injected = engine.now() + i * wire;
        shell.network().mac().injectRx(pkt, pkt.injected);
    }
    engine.runFor(packets * wire + 20'000'000);
}

} // namespace

int
main()
{
    const FpgaDevice &device =
        DeviceDatabase::instance().byName("DeviceA");
    Engine engine;
    auto shell = Shell::makeTailored(
        engine, device, SecGateway::standardRequirements());

    // Partition the role region into two tenant slots.
    PrController pr("pr", engine, *shell,
                    {ResourceVector{120000, 160000, 200, 0, 100},
                     ResourceVector{120000, 160000, 200, 0, 100}});
    std::printf("role region partitioned into %zu slots\n",
                pr.slotCount());

    // Tenant A comes up first.
    SecGateway tenant_a;
    pr.load(0, tenant_a);
    std::printf("tenant A loading (partial bitstream streams for "
                "%s)\n",
                humanTime(pr.reconfigTime(0)).c_str());
    engine.runFor(pr.reconfigTime(0) + 10'000'000);
    std::printf("tenant A: %s\n", toString(pr.slotState(0)));

    pumpTraffic(engine, *shell, 400);
    std::printf("tenant A forwarded %llu packets\n",
                static_cast<unsigned long long>(
                    tenant_a.stats().value("forwarded_packets")));

    // Tenant B is loaded while A keeps serving traffic.
    SecGateway tenant_b;
    pr.load(1, tenant_b);
    const std::uint64_t a_before =
        tenant_a.stats().value("forwarded_packets");
    pumpTraffic(engine, *shell, 400);  // during B's reconfiguration
    std::printf("while tenant B reconfigured, tenant A forwarded "
                "%llu more packets (isolation holds)\n",
                static_cast<unsigned long long>(
                    tenant_a.stats().value("forwarded_packets") -
                    a_before));
    engine.runFor(pr.reconfigTime(1) + 10'000'000);
    std::printf("tenant B: %s\n", toString(pr.slotState(1)));

    // Both tenants are visible on the command plane at their slots.
    CmdDriver ops(engine, *shell, kCtrlStandaloneTool);
    const CommandPacket overview =
        ops.call(kRbbPrCtrl, 0, kCmdModuleStatusRead);
    std::printf("PR controller: %u slot(s), %u active\n",
                overview.data[0], overview.data[1]);
    for (std::uint8_t slot = 0; slot < 2; ++slot) {
        const CommandPacket s =
            ops.call(kRoleRbbIdBase, slot, kCmdStatsSnapshot);
        std::printf("  tenant slot %u answers with %u stats\n", slot,
                    s.data.empty() ? 0 : s.data[0]);
    }

    // Tenant A is evicted; its slot empties, B is untouched.
    ops.call(kRbbPrCtrl, 0, kCmdPrUnload, {0});
    std::printf("tenant A evicted: slot0=%s slot1=%s\n",
                toString(pr.slotState(0)), toString(pr.slotState(1)));
    return 0;
}
