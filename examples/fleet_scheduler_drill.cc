/**
 * @file
 * Fleet scheduler drill: eight heterogeneous cards (two each of
 * Devices A-D) take a seeded churn of ~2k tenant role requests —
 * admissions with priorities and anti-affinity, priority evictions,
 * live migrations (including pinned cross-vendor moves onto the Intel
 * cards) and key/value write traffic through the journaled command
 * proxy — while a DeviceDeath window kills one card mid-churn and
 * hands it back later. Scenario logic lives in
 * src/fleet/scheduler_drill.*, where the tests drive it too.
 *
 *   $ ./fleet_scheduler_drill          # fixed default seed
 *   $ ./fleet_scheduler_drill 42       # any other schedule
 *   $ ./fleet_scheduler_drill 42 500   # shorter churn (CI smoke)
 *
 * Prints the scheduler metrics BENCH_harmonia.json tracks
 * (placement_latency_cycles=N, migration_downtime_cycles=N), the
 * end-state fingerprint (bit-identical across reruns of one seed and
 * across HARMONIA_SIM_THREADS settings), and the verdict line CI
 * greps: "zero acknowledged-command loss: PASS". Exit is non-zero
 * when any acknowledged table write is missing from a surviving
 * tenant, or when the churn failed to exercise the advertised
 * machinery (no migrations, no cross-vendor move, victim never died).
 */

#include <cstdio>
#include <cstdlib>

#include "fleet/scheduler_drill.h"

using namespace harmonia;

int
main(int argc, char **argv)
{
    const char *seed_env = std::getenv("HARMONIA_CHAOS_SEED");
    SchedulerDrillConfig cfg;
    if (argc > 1 && argv[1][0] != '\0')
        cfg.seed = std::strtoull(argv[1], nullptr, 0);
    else if (seed_env != nullptr)
        cfg.seed = std::strtoull(seed_env, nullptr, 0);
    if (argc > 2)
        cfg.requests = std::strtoull(argv[2], nullptr, 0);

    SchedulerDrill drill(cfg);
    std::printf("fleet scheduler drill: %zu cards, %zu requests, "
                "seed %llu\n",
                drill.fleet().cardCount(), cfg.requests,
                static_cast<unsigned long long>(cfg.seed));
    const SchedulerDrillReport rep = drill.run();

    std::printf("\nrequests=%zu admitted=%llu rejected=%llu "
                "evictions=%llu placements=%llu\n",
                rep.requests,
                static_cast<unsigned long long>(rep.admitted),
                static_cast<unsigned long long>(rep.rejected),
                static_cast<unsigned long long>(rep.evictions),
                static_cast<unsigned long long>(rep.placements));
    std::printf("migrations=%llu cross_vendor=%llu\n",
                static_cast<unsigned long long>(rep.migrations),
                static_cast<unsigned long long>(
                    rep.crossVendorMigrations));
    std::printf("card death observed: %s; revived: %s\n",
                rep.cardDied ? "yes" : "no",
                rep.cardRevived ? "yes" : "no");
    std::printf("end state: %zu placed, %zu degraded, "
                "%llu acked writes (%llu verified, %llu lost)\n",
                rep.placedEnd, rep.degradedEnd,
                static_cast<unsigned long long>(rep.ackedWrites),
                static_cast<unsigned long long>(rep.verifiedWrites),
                static_cast<unsigned long long>(rep.lostWrites));
    std::printf("placement_latency_cycles=%.0f\n",
                rep.meanPlacementCycles);
    std::printf("placement_latency_cycles_max=%llu\n",
                static_cast<unsigned long long>(
                    rep.maxPlacementCycles));
    std::printf("migration_downtime_cycles=%.0f\n",
                rep.meanMigrationCycles);
    std::printf("migration_downtime_cycles_max=%llu\n",
                static_cast<unsigned long long>(
                    rep.maxMigrationCycles));
    std::printf("fault plan fingerprint %016llx\n",
                static_cast<unsigned long long>(
                    drill.plan().fingerprint()));
    std::printf("end-state fingerprint %016llx\n",
                static_cast<unsigned long long>(rep.fingerprint));

    bool pass = rep.zeroLoss;
    if (rep.requests >= 100 && rep.placements < rep.requests) {
        std::printf("\nDRILL PLACED FEWER ROLES THAN REQUESTED "
                    "(%llu < %zu)\n",
                    static_cast<unsigned long long>(rep.placements),
                    rep.requests);
        pass = false;
    }
    if (rep.migrations == 0 || rep.crossVendorMigrations == 0) {
        std::printf("\nNO CROSS-VENDOR MIGRATION EXERCISED\n");
        pass = false;
    }
    if (cfg.injectFault && (!rep.cardDied || !rep.cardRevived)) {
        std::printf("\nVICTIM CARD NEVER DIED OR NEVER REVIVED\n");
        pass = false;
    }
    std::printf("\nzero acknowledged-command loss: %s",
                rep.zeroLoss ? "PASS" : "FAIL");
    if (rep.lostWrites != 0)
        std::printf(" (%llu acked writes missing)",
                    static_cast<unsigned long long>(rep.lostWrites));
    std::printf("\n");
    return pass ? 0 : 1;
}
