/**
 * @file
 * Observability scenario: what a fleet operator's tooling sees through
 * Harmonia's telemetry plane. An L4 load balancer serves traffic on a
 * unified shell while every layer — interface wrappers, RBBs, the
 * unified control kernel, the host command driver — publishes into the
 * metrics registry; a Sampler scrapes it on a fixed simulated-time
 * period. Afterwards a standalone tool walks the same registry over
 * the packetized command interface (TelemetryList / TelemetrySnapshot)
 * and checks parity with the in-process view, and the run exports a
 * Chrome trace (chrome://tracing, Perfetto) plus Prometheus-style and
 * JSON-lines metrics.
 *
 *   $ ./ops_monitoring
 *   $ jq . ops_trace.json | head
 */

#include <cmath>
#include <cstdio>
#include <map>

#include "host/cmd_driver.h"
#include "roles/l4lb.h"
#include "telemetry/exporter.h"
#include "telemetry/sampler.h"
#include "telemetry/telemetry_target.h"
#include "workload/flow_gen.h"

using namespace harmonia;

namespace {

std::uint64_t
u64At(const std::vector<std::uint32_t> &d, std::size_t i)
{
    return (static_cast<std::uint64_t>(d[i]) << 32) | d[i + 1];
}

bool
milliClose(std::uint64_t wire_milli, double expected)
{
    return std::fabs(wire_milli / 1000.0 - expected) <= 0.001;
}

} // namespace

int
main()
{
    // Deep trace: the workload generates thousands of wrapper spans.
    Trace::instance().setEnabled(true);
    Trace::instance().setCapacity(16384);

    const FpgaDevice &device =
        DeviceDatabase::instance().byName("DeviceA");
    Engine engine;
    auto shell = Shell::makeUnified(engine, device);
    std::printf("board: %s\n", device.toString().c_str());

    // --- Publish every layer into the process-wide registry. ---
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.clear();  // examples share the process-wide instance
    shell->registerTelemetry(reg);

    // Scrape the registry every 1 us of simulated time.
    Sampler sampler("sampler", reg, 1'000'000);
    engine.add(&sampler, shell->kernelClock());

    CmdDriver driver(engine, *shell);
    driver.registerTelemetry(reg, "host/app");
    driver.initializeAll();

    // --- Serve L4LB traffic; every layer records as it works. ---
    Layer4Lb lb(16);
    lb.bind(engine, *shell);
    FlowGenConfig fg;
    fg.concurrentFlows = 256;
    fg.packetsPerFlow = 8;
    FlowGenerator flows(fg);
    const Tick wire = wireTime(256, 100e9);
    for (int i = 0; i < 3000; ++i) {
        FlowPacket fp = flows.next(engine.now() + i * wire);
        fp.packet.injected = engine.now() + i * wire;
        shell->network(0).mac().injectRx(fp.packet,
                                         fp.packet.injected);
    }
    engine.runFor(100'000'000);  // 100 us

    std::printf("workload: %llu packets forwarded, %llu connections\n",
                static_cast<unsigned long long>(
                    lb.stats().value("forwarded_packets")),
                static_cast<unsigned long long>(lb.connectionCount()));
    std::printf("sampler: %zu scrapes, %zu metrics each\n",
                sampler.sampleCount(),
                sampler.latest().samples.size());

    // --- A standalone tool reads the registry over commands. ---
    CmdDriver tool(engine, *shell, kCtrlStandaloneTool);
    tool.registerTelemetry(reg, "host/tool");

    // Prime the command path first: executing List/Snapshot lazily
    // creates their per-command-code kernel counters, which would
    // otherwise grow the registry between baseline and walk.
    tool.call(kRbbTelemetry, 0, kCmdTelemetryList, {0});
    tool.call(kRbbTelemetry, 0, kCmdTelemetrySnapshot, {0});

    const std::vector<MetricSample> expected = reg.snapshot();
    std::vector<std::pair<std::string, MetricKind>> listed;
    for (std::uint32_t start = 0;;) {
        const CommandPacket resp =
            tool.call(kRbbTelemetry, 0, kCmdTelemetryList, {start});
        if (resp.status != kCmdOk) {
            std::printf("telemetry list failed\n");
            return 1;
        }
        const std::uint32_t total = resp.data[0];
        const std::uint32_t k = resp.data[1];
        std::size_t off = 2;
        for (std::uint32_t i = 0; i < k; ++i) {
            listed.emplace_back(
                TelemetryTarget::unpackName(&resp.data[off + 2]),
                static_cast<MetricKind>(resp.data[off + 1]));
            off += 2 + TelemetryTarget::kNameWords;
        }
        start += k;
        if (start >= total || k == 0)
            break;
    }
    std::printf("\ncommand-plane walk: %zu metrics listed "
                "(in-process registry has %zu)\n",
                listed.size(), expected.size());

    // Parity: names and kinds must agree everywhere; values must
    // agree for the layers quiescent during the walk (the command
    // path itself keeps churning uck/host counters).
    std::size_t value_checks = 0, mismatches = 0;
    const bool names_ok = listed.size() == expected.size();
    for (std::size_t i = 0; names_ok && i < listed.size(); ++i) {
        const std::string truncated = expected[i].name.substr(
            0, TelemetryTarget::kNameWords * 4);
        if (listed[i].first != truncated ||
            listed[i].second != expected[i].kind) {
            std::printf("  name/kind mismatch at %zu: wire '%s' vs "
                        "'%s'\n",
                        i, listed[i].first.c_str(), truncated.c_str());
            ++mismatches;
            continue;
        }
        const bool quiescent =
            expected[i].name.find("/net") != std::string::npos ||
            expected[i].name.find("/mem") != std::string::npos;
        if (!quiescent)
            continue;
        const CommandPacket resp = tool.call(
            kRbbTelemetry, 0, kCmdTelemetrySnapshot,
            {static_cast<std::uint32_t>(i)});
        if (resp.status != kCmdOk) {
            ++mismatches;
            continue;
        }
        const MetricSample &e = expected[i];
        bool ok = resp.data[0] == static_cast<std::uint32_t>(e.kind);
        switch (e.kind) {
          case MetricKind::Counter:
            ok = ok && u64At(resp.data, 1) ==
                           static_cast<std::uint64_t>(e.value);
            break;
          case MetricKind::Gauge:
          case MetricKind::Rate:
            ok = ok && milliClose(u64At(resp.data, 1), e.value);
            break;
          case MetricKind::Histogram:
            ok = ok && u64At(resp.data, 1) == e.count &&
                 u64At(resp.data, 3) == e.min &&
                 u64At(resp.data, 5) == e.max &&
                 milliClose(u64At(resp.data, 7), e.mean) &&
                 milliClose(u64At(resp.data, 9), e.p50) &&
                 milliClose(u64At(resp.data, 11), e.p99);
            break;
        }
        ++value_checks;
        if (!ok) {
            std::printf("  value mismatch at %zu (%s)\n", i,
                        e.name.c_str());
            ++mismatches;
        }
    }
    std::printf("parity: %zu quiescent metrics value-checked, "
                "%zu mismatches -> %s\n",
                value_checks, mismatches,
                names_ok && mismatches == 0 ? "OK" : "FAIL");

    // --- Span accounting: every layer shows up in the trace. ---
    std::map<std::string, std::size_t> by_cat;
    for (const Trace::Span &s : Trace::instance().spans())
        ++by_cat[s.cat];
    std::printf("\ntrace spans by category (%zu retained, "
                "%zu open, %llu unmatched ends):\n",
                Trace::instance().spanCount(),
                Trace::instance().openSpanCount(),
                static_cast<unsigned long long>(
                    Trace::instance().unmatchedEnds()));
    for (const auto &[cat, n] : by_cat)
        std::printf("  %-10s %zu\n", cat.c_str(), n);

    // --- Export: Chrome trace + Prometheus text + JSON lines. ---
    const std::vector<MetricSample> final_snap = reg.snapshot();
    const std::string trace_json =
        toChromeTraceJson(Trace::instance());
    const std::string metrics_text = toMetricsText(final_snap);
    const std::string metrics_jsonl = toMetricsJsonLines(final_snap);
    const bool exported =
        writeTextFile("ops_trace.json", trace_json) &&
        writeTextFile("ops_metrics.txt", metrics_text) &&
        writeTextFile("ops_metrics.jsonl", metrics_jsonl);
    if (exported)
        std::printf("\nexported ops_trace.json (%zu bytes), "
                    "ops_metrics.txt (%zu bytes), "
                    "ops_metrics.jsonl (%zu lines)\n",
                    trace_json.size(), metrics_text.size(),
                    final_snap.size());
    else
        std::printf("\nexport failed (unwritable directory?)\n");

    // --- Self-check of the scenario's observability claims. ---
    const bool has_cmd_span = by_cat.count("command") != 0;
    const bool has_wrapper_span =
        by_cat.count("wrapper") != 0 || by_cat.count("fifo") != 0;
    std::size_t histogram_layers = 0;
    bool saw_wrapper_hist = false, saw_uck_hist = false,
         saw_host_hist = false;
    for (const MetricSample &s : final_snap) {
        if (s.kind != MetricKind::Histogram || s.count == 0)
            continue;
        if (!saw_wrapper_hist &&
            s.name.find("/wrapper/") != std::string::npos) {
            saw_wrapper_hist = true;
            ++histogram_layers;
        }
        if (!saw_uck_hist &&
            s.name.find("/uck/") != std::string::npos) {
            saw_uck_hist = true;
            ++histogram_layers;
        }
        if (!saw_host_hist &&
            s.name.find("host/") == 0) {
            saw_host_hist = true;
            ++histogram_layers;
        }
    }
    std::printf("self-check: command span %s, wrapper/fifo span %s, "
                "latency histograms from %zu layers -> %s\n",
                has_cmd_span ? "yes" : "NO",
                has_wrapper_span ? "yes" : "NO", histogram_layers,
                has_cmd_span && has_wrapper_span &&
                        histogram_layers >= 3 && names_ok &&
                        mismatches == 0 && exported
                    ? "PASS"
                    : "FAIL");
    return has_cmd_span && has_wrapper_span && histogram_layers >= 3 &&
                   names_ok && mismatches == 0 && exported
               ? 0
               : 1;
}
