/**
 * @file
 * Operations scenario: what a fleet operator's tooling does with
 * Harmonia. The board-test role validates a new card; a standalone
 * control tool (distinct SrcID from the application) reads health
 * over the command interface — temperature-free here, but the same
 * walkthrough as the paper's Figure 8 — and exercises the kernel's
 * system services (flash erase, time count).
 *
 *   $ ./ops_monitoring
 */

#include <cstdio>

#include "host/cmd_driver.h"
#include "roles/board_test.h"

using namespace harmonia;

int
main()
{
    const FpgaDevice &device =
        DeviceDatabase::instance().byName("DeviceA");
    Engine engine;
    auto shell = Shell::makeUnified(engine, device);

    // --- Board validation, as the infrastructure role does it. ---
    BoardTest tester;
    tester.bind(engine, *shell);
    std::printf("validating %s ...\n", device.toString().c_str());
    const BoardReport report = tester.runAll(engine);
    for (const std::string &line : report.log)
        std::printf("  %s\n", line.c_str());
    std::printf("board verdict: %s\n",
                report.allPass() ? "PASS" : "FAIL");

    // --- A standalone tool monitors over commands (SrcID != app). ---
    CmdDriver tool(engine, *shell, kCtrlStandaloneTool);

    std::puts("\nfleet monitoring sweep (one command per RBB):");
    for (Rbb *rbb : shell->rbbs()) {
        const CommandPacket resp = tool.call(
            rbb->rbbId(), rbb->instanceId(), kCmdStatsSnapshot);
        std::printf("  %-10s -> %u stats, status=%s, round trip "
                    "%.1f us\n",
                    rbb->name().c_str(),
                    resp.data.empty() ? 0 : resp.data[0],
                    toString(static_cast<CommandStatus>(resp.status)),
                    tool.lastLatency() / 1e6);
    }

    // --- Health sensors, as the BMC polls them (Figure 8 path). ---
    const CommandPacket sensors =
        tool.call(kRbbHealth, 0, kCmdSensorRead, {});
    std::printf("\nhealth: %u.%03u C, vccint %u mV, %u mW, "
                "alarms=0x%x\n",
                sensors.data[0] / 1000, sensors.data[0] % 1000,
                sensors.data[1], sensors.data[3], sensors.data[4]);

    // --- Kernel-local services: uptime and a flash sector erase. ---
    const CommandPacket uptime =
        tool.call(kRbbSystem, 0, kCmdTimeCount);
    const std::uint64_t cycles =
        (static_cast<std::uint64_t>(uptime.data[0]) << 32) |
        uptime.data[1];
    std::printf("\ncontrol kernel uptime: %llu cycles\n",
                static_cast<unsigned long long>(cycles));

    const CommandPacket erase =
        tool.call(kRbbSystem, 0, kCmdFlashErase, {3});
    std::printf("flash sector 3 erase: %s\n",
                erase.status == kCmdOk ? "ok" : "failed");

    // --- A BMC shares the same kernel without interfering. ---
    CmdDriver bmc(engine, *shell, kCtrlBmc);
    const CommandPacket health =
        bmc.call(kRbbHost, 0, kCmdStatsSnapshot);
    std::printf("BMC health poll: status=%s (response routed to "
                "SrcID 0x%02x)\n",
                toString(static_cast<CommandStatus>(health.status)),
                bmc.commandCount() ? kCtrlBmc : 0);
    return 0;
}
