/**
 * @file
 * Alert drill: the full observe → decide → explain loop on one card.
 * A seeded FaultPlan drops the workload driver's command packets for a
 * fixed window; the Sampler feeds every scrape into the time-series
 * store; the SLO engine's burn-rate evaluation walks the availability
 * alert through pending → firing → resolved → inactive; and the armed
 * flight recorder auto-dumps a post-mortem bundle at the firing edge,
 * carrying the event ring, alert states, series tails, the fault log
 * and the causal span tree of the failing command. A standalone tool
 * reads the same alert state back over the packetized command plane.
 *
 *   $ ./alert_drill                       # fixed default seed
 *   $ ./alert_drill 42 my_bundle.json     # any schedule, any path
 *
 * Identical seeds produce byte-identical bundles — including under
 * HARMONIA_SIM_THREADS=4, because the engine serializes whenever
 * tracing or an armed fault plan is live. CI diffs two runs.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "host/cmd_driver.h"
#include "obs/flight_recorder.h"
#include "obs/ops_client.h"
#include "obs/slo.h"
#include "telemetry/sampler.h"

using namespace harmonia;

int
main(int argc, char **argv)
{
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 20260808ull;
    const std::string bundle_path =
        argc > 2 ? argv[2] : "ops_postmortem.json";

    // Spans are the explain half of the drill: the bundle ends with
    // the causal tree of the command the fault window killed.
    Trace::instance().setEnabled(true);
    Trace::instance().setCapacity(16384);

    const FpgaDevice &device =
        DeviceDatabase::instance().byName("DeviceA");
    Engine engine;
    auto shell = Shell::makeUnified(engine, device);

    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.clear();  // examples share the process-wide instance
    shell->registerTelemetry(reg);

    CmdDriver driver(engine, *shell);
    driver.registerTelemetry(reg, "host/app");
    driver.initializeAll();

    // --- Observe: scrape the registry into retained history. ---
    TimeSeriesStore store;
    Sampler sampler("sampler", reg, 1'000'000);  // every 1 us
    sampler.attachStore(&store);
    engine.add(&sampler, shell->kernelClock());

    // --- Decide: availability SLO over the driver's counters, plus a
    // latency objective that should stay quiet throughout. ---
    SloEngine slo("slo", store, 1'000'000);
    SloSpec avail;
    avail.name = "cmd-availability";
    avail.kind = SloKind::ErrorRate;
    avail.badMetric = "host/app/timeouts";
    avail.totalMetric = "host/app/commands";
    avail.objective = 0.9;  // one timeout in ten is tolerable
    avail.window = 10'000'000;
    avail.burnThreshold = 1.0;
    avail.clearRatio = 0.5;
    avail.pendingFor = 3'000'000;
    avail.resolveFor = 10'000'000;
    const std::size_t avail_i = slo.addSpec(avail);

    SloSpec lat;
    lat.name = "cmd-latency";
    lat.kind = SloKind::LatencyP99;
    lat.metric = "host/app/roundtrip_ps/p99";
    lat.objective = 50'000'000.0;  // 50 us: far above any roundtrip
    lat.window = 10'000'000;
    const std::size_t lat_i = slo.addSpec(lat);
    slo.registerTelemetry(reg, "slo");
    engine.add(&slo, shell->kernelClock());

    // --- Explain: the black box, armed, dumping at the firing edge.
    FlightRecorder fdr;
    fdr.attachStore(&store);
    fdr.attachSlo(&slo);
    fdr.setDumpOnAlert(true);
    fdr.setAutoDumpPath(bundle_path);
    fdr.setRearmInterval(kTickMax);  // exactly one bundle per drill
    fdr.registerTelemetry(reg, "fdr");
    fdr.arm();
    slo.attachRecorder(&fdr);

    // The injury: drop every command from the workload driver for
    // 50 us, long enough to burn through the availability budget.
    FaultPlan plan(seed);
    plan.addWindow(FaultKind::CmdDrop, 60'000'000, 110'000'000, 1.0,
                   "cmd01");
    plan.arm();
    fdr.attachFaultPlan(&plan);

    // The observer: a standalone tool on its own controller id, so
    // the fault filter above never touches the monitoring path.
    CmdDriver tool(engine, *shell, kCtrlStandaloneTool);
    shell->telemetryTarget().attachSloEngine(&slo);
    shell->telemetryTarget().attachRecorder(&fdr);
    OpsClient ops(tool);

    std::printf("alert drill on %s, seed %llu -> %s\n",
                device.name.c_str(),
                static_cast<unsigned long long>(seed),
                bundle_path.c_str());

    // --- Drive traffic through the outage and past recovery. ---
    std::vector<std::pair<Tick, AlertState>> timeline;
    AlertState last = AlertState::Inactive;
    std::uint64_t calls_ok = 0, calls_failed = 0;
    while (engine.now() < 250'000'000) {
        const CallOutcome out = driver.callChecked(
            kRbbSystem, 0, kCmdTimeCount, {}, 3'000'000);
        if (out.ok())
            ++calls_ok;
        else
            ++calls_failed;
        engine.runFor(1'000'000);
        const AlertState st = slo.status(avail_i).state;
        if (st != last) {
            timeline.emplace_back(engine.now(), st);
            last = st;
        }
    }

    std::printf("\ncommands: %llu ok, %llu failed (%llu injected "
                "drops)\n",
                static_cast<unsigned long long>(calls_ok),
                static_cast<unsigned long long>(calls_failed),
                static_cast<unsigned long long>(plan.injectedTotal()));
    std::printf("alert timeline (%s):\n", avail.name.c_str());
    for (const auto &[tick, state] : timeline)
        std::printf("  %12llu ps  %s\n",
                    static_cast<unsigned long long>(tick),
                    toString(state));

    // --- The lifecycle must have completed a full loop. ---
    const AlertStatus &st = slo.status(avail_i);
    const bool lifecycle_ok =
        st.pendingEvents >= 1 && st.fireEvents >= 1 &&
        st.resolveEvents >= 1 && st.state == AlertState::Inactive;
    const bool quiet_ok =
        slo.status(lat_i).state == AlertState::Inactive &&
        slo.status(lat_i).fireEvents == 0;
    std::printf("\nlifecycle: pending=%llu fire=%llu resolve=%llu "
                "final=%s -> %s; latency slo stayed quiet -> %s\n",
                static_cast<unsigned long long>(st.pendingEvents),
                static_cast<unsigned long long>(st.fireEvents),
                static_cast<unsigned long long>(st.resolveEvents),
                toString(st.state), lifecycle_ok ? "OK" : "FAIL",
                quiet_ok ? "OK" : "FAIL");

    // --- The observer reads the same story over the wire. ---
    WireSlo ws;
    const bool wire_ok = ops.sloCount() == 2 &&
                         ops.readSlo(static_cast<std::uint32_t>(
                                         avail_i),
                                     &ws) &&
                         ws.name == avail.name &&
                         ws.state == st.state &&
                         ws.fireEvents == st.fireEvents &&
                         ops.readAlerts().size() == 2;
    std::printf("command-plane parity: %s\n", wire_ok ? "OK" : "FAIL");

    // --- The black box must have dumped once, at the firing edge. ---
    const bool dumped = fdr.dumps() == 1;
    std::ifstream in(bundle_path);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    const JsonValue doc = JsonValue::parse(ss.str(), &err);
    const bool parsed = err.empty() && doc.has("harmonia_postmortem");
    bool bundle_ok = false;
    if (parsed) {
        const JsonValue &tree = doc.get("span_tree");
        bundle_ok = doc.get("reason").asString() ==
                        "alert:" + avail.name &&
                    doc.has("events") && doc.has("alerts") &&
                    doc.has("series") && doc.has("faults") &&
                    tree.isArray() && tree.size() > 0 &&
                    tree.at(0).get("parent").asU64() == 0;
        std::printf("post-mortem bundle: %zu bytes, %zu events, "
                    "%zu-span causal tree of the failing command "
                    "-> %s\n",
                    ss.str().size(), doc.get("events").size(),
                    tree.size(), bundle_ok ? "OK" : "FAIL");
    } else {
        std::printf("post-mortem bundle missing or unparseable "
                    "(%s) -> FAIL\n", err.c_str());
    }

    const bool pass =
        lifecycle_ok && quiet_ok && wire_ok && dumped && bundle_ok;
    std::printf("\nalert drill: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
