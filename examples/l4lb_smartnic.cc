/**
 * @file
 * SmartNIC scenario: a stateful Layer-4 load balancer (the paper's
 * Tiara-style application) on an in-house board. Shows stateful flow
 * pinning surviving a backend failure mid-traffic.
 *
 *   $ ./l4lb_smartnic
 */

#include <cstdio>

#include "host/cmd_driver.h"
#include "roles/l4lb.h"
#include "workload/flow_gen.h"

using namespace harmonia;

int
main()
{
    const FpgaDevice &device =
        DeviceDatabase::instance().byName("DeviceB");
    std::printf("SmartNIC board: %s\n", device.toString().c_str());

    Engine engine;
    auto shell = Shell::makeTailored(
        engine, device, Layer4Lb::standardRequirements());
    Layer4Lb lb(16);
    lb.bind(engine, *shell);
    CmdDriver driver(engine, *shell);
    driver.initializeAll();

    // Open a wave of flows (SYNs) and some data packets.
    FlowGenConfig fg;
    fg.concurrentFlows = 512;
    fg.packetsPerFlow = 8;
    FlowGenerator flows(fg);
    const Tick wire = wireTime(256, 100e9);
    for (int i = 0; i < 3000; ++i) {
        FlowPacket fp = flows.next(engine.now() + i * wire);
        fp.packet.injected = engine.now() + i * wire;
        shell->network(0).mac().injectRx(fp.packet,
                                         fp.packet.injected);
    }
    engine.runFor(100'000'000);

    std::printf("phase 1: %llu connections pinned, %llu packets "
                "forwarded\n",
                static_cast<unsigned long long>(lb.connectionCount()),
                static_cast<unsigned long long>(
                    lb.stats().value("forwarded_packets")));

    // A backend dies. Pinned flows must not move; new flows avoid it.
    const std::uint64_t probe_flow = 0x1234;
    const unsigned pinned_before =
        lb.processFlowPacket(probe_flow, FlowPhase::Syn);
    lb.setServerHealthy(pinned_before == 0 ? 1 : 0, false);
    const unsigned pinned_after =
        lb.processFlowPacket(probe_flow, FlowPhase::Data);
    std::printf("phase 2: backend %u marked down; probe flow stayed "
                "on server %u (%s)\n",
                pinned_before == 0 ? 1 : 0, pinned_after,
                pinned_before == pinned_after ? "pinned" : "MOVED");

    for (int i = 0; i < 2000; ++i) {
        FlowPacket fp = flows.next(engine.now() + i * wire);
        fp.packet.injected = engine.now() + i * wire;
        shell->network(0).mac().injectRx(fp.packet,
                                         fp.packet.injected);
    }
    engine.runFor(100'000'000);

    std::printf("final: hits=%llu misses=%llu opened=%llu "
                "closed=%llu\n",
                static_cast<unsigned long long>(
                    lb.stats().value("table_hits")),
                static_cast<unsigned long long>(
                    lb.stats().value("table_misses")),
                static_cast<unsigned long long>(
                    lb.stats().value("flows_opened")),
                static_cast<unsigned long long>(
                    lb.stats().value("flows_closed")));

    // Per-queue monitoring through the Host RBB's reg window.
    const CommandPacket resp =
        driver.call(kRbbNetwork, 0, kCmdStatsSnapshot);
    std::printf("network monitoring snapshot: %u stats exported\n",
                resp.data.empty() ? 0 : resp.data[0]);
    return 0;
}
