/**
 * @file
 * Chaos drill: the fault-injection plane pointed at a full unified
 * shell. A seeded FaultPlan schedules stream corruption, command-plane
 * mangling, DMA completion loss and a thermal excursion while a
 * workload keeps the board busy; the recovery machinery — driver
 * retries, DMA requeue/quarantine, degraded modes — absorbs all of it.
 * The drill ends with the injection log, the recovery counters and the
 * accounting identity a chaos run must satisfy: nothing lost silently.
 *
 *   $ ./chaos_drill           # fixed default seed, reproducible
 *   $ ./chaos_drill 42        # any other schedule
 *
 * Identical seeds print identical fault schedules and end-state
 * counters — that determinism is what makes a chaos failure
 * debuggable instead of anecdotal.
 */

#include <cstdio>
#include <cstdlib>

#include "fault/fault_plan.h"
#include "fault/recovery.h"
#include "host/cmd_driver.h"
#include "host/dma_engine.h"

using namespace harmonia;

int
main(int argc, char **argv)
{
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 20240806ull;

    const FpgaDevice &device =
        DeviceDatabase::instance().byName("DeviceA");
    Engine engine;
    auto shell = Shell::makeUnified(engine, device);
    shell->network(0).setLoopback(true);

    CmdDriver driver(engine, *shell);
    HostDma dma(shell->host());
    RecoveryManager recovery(engine, *shell);
    for (std::uint16_t q = 1; q <= 4; ++q)
        shell->host().setQueueActive(q, true);

    // --- The fault schedule: every plane gets hurt. ---
    FaultPlan plan(seed);
    plan.addWindow(FaultKind::StreamBitFlip, 0, 300'000'000, 0.1);
    plan.addWindow(FaultKind::StreamBeatDrop, 0, 300'000'000, 0.05);
    plan.addWindow(FaultKind::CmdCorrupt, 0, 300'000'000, 0.15,
                   "cmd01");
    plan.addWindow(FaultKind::CmdDrop, 0, 300'000'000, 0.1, "cmd01");
    plan.addWindow(FaultKind::DmaCompletionLoss, 0, 300'000'000,
                   0.05);
    plan.addWindow(FaultKind::LinkFlap, 80'000'000, 95'000'000, 1.0);
    plan.addWindow(FaultKind::ThermalExcursion, 120'000'000,
                   170'000'000, 1.0, "", 60'000);
    plan.arm();
    std::printf("chaos drill on %s, seed %llu\n", device.name.c_str(),
                static_cast<unsigned long long>(seed));

    // --- Drive traffic through the storm. ---
    std::uint64_t dma_accepted = 0, dma_rejected = 0;
    std::uint64_t dma_delivered = 0;
    std::uint64_t calls_ok = 0, calls_failed = 0;
    std::uint64_t next_id = 1;
    for (int round = 0; round < 60; ++round) {
        if (shell->network(0).txReady()) {
            PacketDesc pkt;
            pkt.bytes = 512;
            shell->network(0).txPush(pkt);
        }
        const std::uint16_t q =
            static_cast<std::uint16_t>(1 + round % 4);
        if (dma.submit(DmaDir::H2C, q, 2048, next_id++))
            ++dma_accepted;
        else
            ++dma_rejected;
        if (round % 6 == 0) {
            const CallOutcome out = driver.callChecked(
                kRbbSystem, 0, kCmdTimeCount, {}, 5'000'000);
            if (out.ok())
                ++calls_ok;
            else
                ++calls_failed;
        }
        engine.runFor(2'000'000);
        dma.poll();
        while (shell->network(0).rxAvailable())
            shell->network(0).rxPop();
        for (std::uint16_t i = 1; i <= 4; ++i)
            while (dma.hasCompletion(i)) {
                dma.popCompletion(i);
                ++dma_delivered;
            }
    }
    // Let outstanding transfers resolve and the card cool down.
    for (int i = 0; i < 40; ++i) {
        engine.runFor(10'000'000);
        dma.poll();
        for (std::uint16_t q = 1; q <= 4; ++q)
            while (dma.hasCompletion(q)) {
                dma.popCompletion(q);
                ++dma_delivered;
            }
    }

    // --- What got injected. ---
    std::printf("\ninjected faults (%llu total, fingerprint "
                "%016llx):\n",
                static_cast<unsigned long long>(plan.injectedTotal()),
                static_cast<unsigned long long>(plan.fingerprint()));
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(FaultKind::kCount); ++k) {
        const FaultKind kind = static_cast<FaultKind>(k);
        if (plan.injected(kind) != 0)
            std::printf("  %-22s %8llu\n", toString(kind),
                        static_cast<unsigned long long>(
                            plan.injected(kind)));
    }

    // --- What recovery did about it. ---
    std::printf("\ncommand driver: %llu ok, %llu failed | retries=%llu"
                " nacks=%llu timeouts=%llu\n",
                static_cast<unsigned long long>(calls_ok),
                static_cast<unsigned long long>(calls_failed),
                static_cast<unsigned long long>(
                    driver.stats().value("retries")),
                static_cast<unsigned long long>(
                    driver.stats().value("nacks")),
                static_cast<unsigned long long>(
                    driver.stats().value("timeouts")));
    std::uint64_t outstanding = 0;
    for (std::uint16_t q = 1; q <= 4; ++q)
        outstanding += dma.outstanding(q);
    const std::uint64_t lost = dma.stats().value("lost_transfers");
    std::printf("host dma: %llu accepted, %llu delivered, %llu lost, "
                "%llu outstanding | requeues=%llu quarantines=%llu\n",
                static_cast<unsigned long long>(dma_accepted),
                static_cast<unsigned long long>(dma_delivered),
                static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(outstanding),
                static_cast<unsigned long long>(
                    dma.stats().value("requeues")),
                static_cast<unsigned long long>(
                    dma.stats().value("quarantines")));
    std::printf("degraded mode: %llu enters, %llu restores (now %s)\n",
                static_cast<unsigned long long>(
                    recovery.stats().value("degrade_events")),
                static_cast<unsigned long long>(
                    recovery.stats().value("restore_events")),
                recovery.degraded() ? "degraded" : "nominal");

    // --- The chaos invariant: nothing disappears silently. ---
    const bool accounted =
        dma_accepted == dma_delivered + lost + outstanding;
    std::printf("\naccounting identity: accepted == delivered + lost "
                "+ outstanding ... %s\n",
                accounted ? "holds" : "VIOLATED");
    return accounted ? 0 : 1;
}
