/**
 * @file
 * Platform lint: run the static design-rule checker (src/drc) across
 * the whole device database and the five shipped roles — no simulator,
 * no compilation, just the plan. Prints the rule catalogue, a
 * device x role findings matrix, and a detailed report for a
 * deliberately broken configuration in both renderers.
 *
 *   $ ./platform_lint
 */

#include <cstdio>
#include <vector>

#include "drc/checker.h"
#include "drc/render.h"
#include "roles/board_test.h"
#include "roles/host_network.h"
#include "roles/l4lb.h"
#include "roles/retrieval.h"
#include "roles/sec_gateway.h"

using namespace harmonia;

int
main()
{
    // 1. The rule catalogue, straight from the checker.
    std::printf("platform DRC rule set (%zu rules)\n",
                drc::standardRules().size());
    for (const drc::RuleInfo &r : drc::ruleTable())
        std::printf("  %-9s %-6s %s\n", r.id, r.paperRef,
                    r.description);

    // 2. Lint every shipped role deployment on every board. checkRole
    //    tailors when feasible and falls back to the unified config so
    //    infeasible demands show up as Error diagnostics, not throws.
    const std::vector<RoleRequirements> roles = {
        SecGateway::standardRequirements(),
        Layer4Lb::standardRequirements(),
        HostNetwork::standardRequirements(),
        Retrieval::standardRequirements(),
        BoardTest::standardRequirements(),
    };
    const auto &devices = DeviceDatabase::instance().all();

    std::printf("\nfindings matrix (cell: first error rule, or "
                "warning count)\n%-10s", "");
    for (const RoleRequirements &role : roles)
        std::printf(" %-12s", role.name.c_str());
    std::printf("\n");
    for (const FpgaDevice &device : devices) {
        std::printf("%-10s", device.name.c_str());
        for (const RoleRequirements &role : roles) {
            const drc::DrcReport report =
                drc::checkRole(device, role);
            if (report.errorCount() > 0)
                std::printf(" %-12s",
                            report.firstError().ruleId.c_str());
            else if (report.count(drc::Severity::Warning) > 0)
                std::printf(" %zu warn      ",
                            report.count(drc::Severity::Warning));
            else
                std::printf(" %-12s", "clean");
        }
        std::printf("\n");
    }

    // 3. A broken plan, in full: a 400G MAC on 100G cages, a DMA
    //    queue count past the hard-IP limit, and a memory instance
    //    the board does not have.
    const FpgaDevice &device = devices.front();
    ShellConfig broken = unifiedConfigFor(device);
    if (!broken.networks.empty())
        broken.networks[0].gbps = 400;
    broken.hostQueues = 4096;
    broken.memories.push_back({PeripheralKind::Hbm, 0});
    const drc::DrcReport report =
        drc::check(device, broken, nullptr,
                   "broken_" + device.name);

    std::printf("\n--- text renderer ---\n%s",
                drc::renderText(report).c_str());
    std::printf("\n--- JSON-lines renderer ---\n%s",
                drc::renderJsonLines(report).c_str());
    return 0;
}
