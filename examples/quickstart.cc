/**
 * @file
 * Quickstart: the smallest useful Harmonia program. Build a tailored
 * shell on a device, bind a role, bring everything up over the
 * command-based interface, push traffic, and read statistics back.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "host/cmd_driver.h"
#include "roles/sec_gateway.h"
#include "sim/trace.h"
#include "telemetry/profiler.h"
#include "workload/packet_gen.h"

using namespace harmonia;

int
main()
{
    // 1. Pick a board from the device database (Table 2's Device A).
    const FpgaDevice &device =
        DeviceDatabase::instance().byName("DeviceA");
    std::printf("target: %s\n", device.toString().c_str());

    // 2. Tailor a shell to the role's requirements: module-level
    //    tailoring keeps one 100G network RBB and the host RBB;
    //    property-level tailoring trims the config surface.
    Engine engine;
    const RoleRequirements reqs = SecGateway::standardRequirements();
    auto shell = Shell::makeTailored(engine, device, reqs);
    std::printf("shell: %zu RBB(s), %zu role-facing config items "
                "(of %zu native)\n",
                shell->rbbs().size(), shell->roleConfigItems().size(),
                shell->allConfigItems().size());

    // 3. Bind the role — the user-owned logic.
    SecGateway role;
    role.bind(engine, *shell);
    role.addPolicy({0xff, 0x07, false});  // deny flows & 0xff == 7

    // 4. Bring up every hardware module with a handful of commands
    //    (no register sequences, no vendor-specific ordering).
    CmdDriver driver(engine, *shell);
    const std::size_t cmds = driver.initializeAll();
    std::printf("initialized all modules with %zu commands\n", cmds);

    // 5. Run traffic through the bump-in-the-wire datapath.
    PacketGenConfig gen_cfg;
    gen_cfg.fixedBytes = 512;
    gen_cfg.flows = 256;
    PacketGenerator gen(gen_cfg);
    const Tick wire = wireTime(512, 100e9);
    for (int i = 0; i < 1000; ++i) {
        PacketDesc pkt = gen.next(engine.now() + i * wire);
        shell->network().mac().injectRx(pkt, pkt.injected);
    }
    engine.runFor(100'000'000);  // 100 us of simulated time

    // 6. Statistics come back over the same command interface.
    const CommandPacket net_stats =
        driver.call(kRbbNetwork, 0, kCmdStatsSnapshot);
    std::printf("network RBB reports %u statistics\n",
                net_stats.data.empty() ? 0 : net_stats.data[0]);
    std::printf("gateway: forwarded=%llu denied=%llu\n",
                static_cast<unsigned long long>(
                    role.stats().value("forwarded_packets")),
                static_cast<unsigned long long>(
                    role.stats().value("denied_packets")));

    // 7. Causal tracing: with the trace armed, a single command call
    //    unfolds into a span tree — host issue, wire transfer, kernel
    //    service, RBB execute — all sharing one correlation id, and
    //    the profiler's per-hop self times sum exactly to the
    //    driver's observed round-trip latency.
    Trace &trace = Trace::instance();
    Profiler &profiler = shell->profiler();
    trace.setEnabled(true);
    trace.clear();
    profiler.reset();
    driver.call(kRbbNetwork, 0, kCmdModuleStatusRead);
    trace.setEnabled(false);

    std::uint64_t corr = 0;
    for (const Trace::Span &s : trace.spans())
        if (s.corr != 0)
            corr = s.corr;
    const std::vector<Trace::Span> tree = spanTreeForCorr(trace, corr);
    std::printf("\none ModuleStatusRead as a span tree (%zu hops, "
                "corr=%llu):\n%s",
                tree.size(), static_cast<unsigned long long>(corr),
                renderSpanTree(tree).c_str());

    profiler.fold();
    Tick self_sum = 0;
    for (const ProfileEntry &e : profiler.snapshot())
        self_sum += e.selfTicks;
    std::printf("per-hop self times sum to %llu ticks; the driver "
                "observed %llu\n",
                static_cast<unsigned long long>(self_sum),
                static_cast<unsigned long long>(driver.lastLatency()));
    return 0;
}
