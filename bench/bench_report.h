/**
 * @file
 * Uniform machine-readable bench output. Every bench binary funnels
 * its headline numbers through a BenchReport so `run_bench.sh` can
 * collect one JSON-lines stream per binary and the aggregator can
 * assemble BENCH_harmonia.json at the repo root.
 *
 * Two environment knobs drive the pipeline:
 *   HARMONIA_BENCH_JSON   path to append records to (absent: no file)
 *   HARMONIA_BENCH_SCALE  percent of full iteration counts (default
 *                         100; CI smoke runs use 25)
 */

#ifndef HARMONIA_BENCH_BENCH_REPORT_H_
#define HARMONIA_BENCH_BENCH_REPORT_H_

#include <cstddef>
#include <string>

#include "common/json.h"

namespace harmonia {

/** HARMONIA_BENCH_SCALE as a fraction (1.0 when unset/malformed). */
double benchScale();

/** @p iters scaled by benchScale(), never below @p floor. */
std::size_t scaledIters(std::size_t iters, std::size_t floor = 1);

/**
 * One scenario's record: a name, a unit-suffixed metric set, and
 * optional free-form detail (e.g. a profiler attribution object).
 * Records print to stdout and append to $HARMONIA_BENCH_JSON.
 */
class BenchReport {
  public:
    /** @p bench names the binary; @p scenario the measured setup. */
    BenchReport(std::string bench, std::string scenario);

    /**
     * Add one metric. Regression classification keys off the name:
     * names containing "gbps", "qps", "ops" or "throughput" are
     * higher-is-better; "ps", "ns", "us", "ticks", "lat" lower.
     */
    BenchReport &metric(const std::string &name, double value);

    /** Attach a structured detail object (not gated on regressions). */
    BenchReport &detail(const std::string &name, JsonValue v);

    /** Print the one-line summary and append the JSON record. */
    void emit();

  private:
    JsonValue record_;
    JsonValue metrics_;
};

} // namespace harmonia

#endif // HARMONIA_BENCH_BENCH_REPORT_H_
