/**
 * @file
 * Figure 18: Harmonia vs Vitis / oneAPI / Coyote — (a) shell resource
 * usage, (b) matrix-multiplication throughput vs parallelism, (c)
 * database access throughput per pattern, (d) TCP throughput and
 * latency vs packet size. Baseline datapaths are calibrated models of
 * the published shells (see DESIGN.md); Harmonia numbers come from
 * the simulated stack.
 */

#include <cstdio>

#include "common/strings.h"
#include "frameworks/comparison.h"
#include "workload/matmul.h"
#include "workload/tcp_model.h"
#include "workload/vector_db.h"

using namespace harmonia;

namespace {

const FpgaDevice &
device(const char *name)
{
    return DeviceDatabase::instance().byName(name);
}

/** A generic compute/storage benchmark shell: host + memory. */
RoleRequirements
benchmarkRequirements()
{
    RoleRequirements reqs;
    reqs.name = "benchmark";
    reqs.needsMemory = true;
    reqs.memoryBandwidthGBps = 15;
    reqs.needsHost = true;
    reqs.hostQueues = 16;
    return reqs;
}

} // namespace

int
main()
{
    // ---------- (a) shell resource usage ----------
    std::puts("=== Figure 18a: shell resource usage "
              "(fraction of device) ===");
    {
        Engine engine;
        auto shell = Shell::makeTailored(engine, device("DeviceA"),
                                         benchmarkRequirements());
        const auto rows =
            compareShellFootprints(device("DeviceA"), *shell);
        TablePrinter table(
            {"framework", "LUTs %", "REGs %", "BRAM %"});
        for (const auto &row : rows)
            table.addRow({row.framework,
                          format("%.1f", row.lutFraction * 100),
                          format("%.1f", row.regFraction * 100),
                          format("%.1f", row.bramFraction * 100)});
        table.print();
        std::puts("(oneAPI measured on its own device D below)");
        Engine engine2;
        auto shell_d = Shell::makeTailored(engine2, device("DeviceD"),
                                           benchmarkRequirements());
        const auto rows_d =
            compareShellFootprints(device("DeviceD"), *shell_d);
        TablePrinter table_d(
            {"framework", "LUTs %", "REGs %", "BRAM %"});
        for (const auto &row : rows_d)
            table_d.addRow({row.framework,
                            format("%.1f", row.lutFraction * 100),
                            format("%.1f", row.regFraction * 100),
                            format("%.1f", row.bramFraction * 100)});
        table_d.print();
    }

    // ---------- (b) matrix multiplication ----------
    std::puts("");
    std::puts("=== Figure 18b: 64x64 SP matrix multiplication "
              "(matrices/s) ===");
    {
        const auto baselines = makeBaselines();
        TablePrinter table({"parallelism", "Vitis", "oneAPI",
                            "Coyote", "Harmonia", "verified"});
        for (unsigned p : {4u, 8u, 16u}) {
            MatMulConfig cfg;
            cfg.parallelism = p;
            const MatMulResult r = MatMulWorkload(cfg).run();
            std::vector<std::string> row = {format("x%u", p)};
            for (const auto &fw : baselines)
                row.push_back(format(
                    "%.0f",
                    r.matricesPerSecond * fw->datapathEfficiency()));
            row.push_back(format("%.0f", r.matricesPerSecond));
            row.push_back(r.verified ? "yes" : "NO");
            table.addRow(row);
        }
        table.print();
    }

    // ---------- (c) database access ----------
    std::puts("");
    std::puts("=== Figure 18c: vector database access "
              "(Mvectors/s, 32-bit vectors) ===");
    {
        const auto baselines = makeBaselines();
        TablePrinter table({"pattern", "Vitis", "oneAPI", "Coyote",
                            "Harmonia"});
        for (AccessPattern pattern :
             {AccessPattern::Random, AccessPattern::Fixed,
              AccessPattern::Sequential}) {
            Engine engine;
            Clock *clk = engine.addClock("clk", 300.0);
            MemoryRbb mem(engine, clk, Vendor::Xilinx,
                          PeripheralKind::Ddr4, 2);
            mem.setHotCacheEnabled(false);  // raw pattern behaviour
            VectorDbConfig cfg;
            cfg.dbVectors = 1 << 20;
            cfg.accesses = 4000;
            VectorDbWorkload db(engine, mem, cfg);
            db.populate();
            const VectorDbResult r = db.run(pattern, false);
            std::vector<std::string> row = {toString(pattern)};
            for (const auto &fw : baselines)
                row.push_back(
                    format("%.1f", r.vectorsPerSecond / 1e6 *
                                       fw->datapathEfficiency()));
            row.push_back(format("%.1f", r.vectorsPerSecond / 1e6));
            table.addRow(row);
        }
        table.print();
    }

    // ---------- (d) TCP transmission ----------
    std::puts("");
    std::puts("=== Figure 18d: TCP transmission (tpt Gbps / "
              "RTT us) ===");
    {
        const auto baselines = makeBaselines();
        TablePrinter table({"pkt size", "Vitis", "oneAPI", "Coyote",
                            "Harmonia"});
        for (std::uint32_t size : {64u, 512u, 1500u}) {
            Engine engine;
            Clock *clk =
                engine.addClock("clk", MacIp::clockMhzFor(100));
            NetworkRbb a(engine, clk, Vendor::Xilinx, 100, 0);
            NetworkRbb b(engine, clk, Vendor::Xilinx, 100, 1);
            a.mac().connectPeer(&b.mac());
            b.mac().connectPeer(&a.mac());
            TcpConfig cfg;
            cfg.segmentBytes = size;
            cfg.totalSegments = 1200;
            const TcpResult r = TcpSession(engine, a, b, cfg).run();
            std::vector<std::string> row = {std::to_string(size)};
            for (const auto &fw : baselines) {
                const double tpt = r.throughputBps / 1e9 *
                                   fw->datapathEfficiency();
                const double rtt =
                    r.avgRttUs +
                    2.0 * fw->addedLatencyPs() / 1e6 -
                    2.0 * StreamWrapper::kPipelineDepth *
                        clk->period() / 1e6;
                row.push_back(
                    format("%.2f / %.2f", tpt, rtt));
            }
            row.push_back(format("%.2f / %.2f",
                                 r.throughputBps / 1e9, r.avgRttUs));
            table.addRow(row);
        }
        table.print();
    }
    std::puts("");
    std::puts("(paper: Harmonia uses 3.5%-14.9% less shell resource "
              "with comparable throughput and latency)");
    return 0;
}
