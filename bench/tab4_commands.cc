/**
 * @file
 * Table 4: host-software configuration cost per task — register
 * interface (commercial baseline) vs Harmonia's command interface.
 */

#include <cstdio>

#include "common/strings.h"
#include "frameworks/comparison.h"

using namespace harmonia;

int
main()
{
    Engine engine;
    auto shell = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));
    const auto rows = compareConfigCosts(*shell);

    std::puts("=== Table 4: registers vs commands per configuration "
              "task ===");
    TablePrinter table(
        {"task", "registers", "commands", "simplification"});
    for (const auto &row : rows)
        table.addRow({toString(row.task),
                      std::to_string(row.registerOps),
                      std::to_string(row.commandOps),
                      format("%.0fx", row.ratio())});
    table.print();
    std::puts("(paper: monitoring 84 vs 4, network init 115 vs 5, "
              "host interaction 60 vs 4 => 15-23x)");

    // The measured Harmonia shell's own register surface, for
    // context: what the commands are hiding.
    std::printf("\nHarmonia shell register-interface equivalents: "
                "%zu init ops, %zu monitoring reads\n",
                shell->registerInitOps(), shell->monitoringRegOps());
    return 0;
}
