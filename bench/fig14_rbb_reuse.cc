/**
 * @file
 * Figure 14: development-workload reuse of each RBB when ported
 * across vendors and across chip families of the same vendor.
 */

#include <cstdio>

#include "common/strings.h"
#include "shell/workload_model.h"

using namespace harmonia;

int
main()
{
    Engine engine;
    auto shell = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));

    std::puts("=== Figure 14: RBB reuse across platforms ===");
    TablePrinter table({"RBB", "cross-vendor reuse",
                        "cross-vendor redev", "cross-chip reuse",
                        "cross-chip redev"});
    const char *wanted[] = {"Network", "Host", "Memory"};
    for (const char *kind_name : wanted) {
        for (const Rbb *rbb : shell->rbbs()) {
            if (std::string(toString(rbb->kind())) != kind_name ||
                rbb->instanceId() != 0)
                continue;
            const ReuseBreakdown vendor =
                rbbReuse(*rbb, MigrationKind::CrossVendor);
            const ReuseBreakdown chip =
                rbbReuse(*rbb, MigrationKind::CrossChip);
            table.addRow(
                {kind_name,
                 format("%.2f", vendor.reuseFraction()),
                 format("%.2f", 1 - vendor.reuseFraction()),
                 format("%.2f", chip.reuseFraction()),
                 format("%.2f", 1 - chip.reuseFraction())});
        }
    }
    table.print();
    std::puts("(paper: cross-vendor 0.69/0.76/0.78, cross-chip "
              "0.84/0.91/0.93 for Network/Host/Memory)");
    return 0;
}
