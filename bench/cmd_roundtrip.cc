/**
 * @file
 * Command-plane round-trip bench with causal attribution: drives a
 * stream of commands through the unified shell and reports end-to-end
 * latency and command throughput, then uses the profiler to decompose
 * the mean round trip into per-hop tick budgets (driver self, wire
 * transfer, kernel service, RBB execute) folded from the span trees.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_report.h"
#include "host/cmd_driver.h"
#include "shell/unified_shell.h"
#include "sim/trace.h"
#include "telemetry/profiler.h"

using namespace harmonia;

namespace {

/** One timed command-plane run; returns (wall seconds, sim end). */
struct TimedRun {
    double wallSeconds = 0.0;
    Tick simEnd = 0;
    std::uint64_t executed = 0;
};

TimedRun
timedRoundTrips(unsigned threads, bool fast_forward)
{
    Engine engine;
    engine.setThreads(threads);
    engine.setParallel(threads > 1);
    engine.setIdleFastForward(fast_forward);
    auto shell = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));
    CmdDriver driver(engine, *shell);
    driver.initializeAll();

    const std::size_t iters = scaledIters(1000, 50);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i)
        driver.call(kRbbNetwork, 0,
                    i % 2 ? kCmdStatsSnapshot : kCmdModuleStatusRead);
    const auto t1 = std::chrono::steady_clock::now();

    TimedRun run;
    run.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    run.simEnd = engine.now();
    run.executed = shell->kernel().stats().value("commands_executed");
    return run;
}

} // namespace

int
main()
{
    Engine engine;
    auto shell = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));
    CmdDriver driver(engine, *shell);
    driver.initializeAll();  // warmup, excluded from the numbers

    Trace &trace = Trace::instance();
    trace.setEnabled(true);
    trace.clear();
    Profiler &profiler = shell->profiler();
    profiler.reset();

    const std::size_t iters = scaledIters(2000, 50);
    const Tick t0 = engine.now();
    Tick total_latency = 0;
    Tick max_latency = 0;
    for (std::size_t i = 0; i < iters; ++i) {
        driver.call(kRbbNetwork, 0,
                    i % 2 ? kCmdStatsSnapshot : kCmdModuleStatusRead);
        total_latency += driver.lastLatency();
        if (driver.lastLatency() > max_latency)
            max_latency = driver.lastLatency();
        // Fold well inside the span ring's depth so no span tree is
        // evicted before it is attributed.
        if (i % 256 == 255)
            profiler.fold();
    }
    profiler.fold();
    const Tick elapsed = engine.now() - t0;
    trace.setEnabled(false);

    const double mean_ns =
        static_cast<double>(total_latency) / static_cast<double>(iters) /
        1e3;
    const double cmds_per_s =
        static_cast<double>(iters) /
        (static_cast<double>(elapsed) / 1e12);

    JsonValue hops = JsonValue::array();
    for (const ProfileEntry &e : profiler.snapshot()) {
        JsonValue hop = JsonValue::object();
        hop.set("who", JsonValue(e.who));
        hop.set("cat", JsonValue(e.cat));
        hop.set("spans", JsonValue(e.spans));
        hop.set("total_ticks", JsonValue(e.totalTicks));
        hop.set("self_ticks", JsonValue(e.selfTicks));
        hops.push(std::move(hop));
        std::printf("  hop %-28s %-8s self=%llu ticks over %llu "
                    "spans\n",
                    e.who.c_str(), e.cat.c_str(),
                    static_cast<unsigned long long>(e.selfTicks),
                    static_cast<unsigned long long>(e.spans));
    }

    BenchReport("cmd_roundtrip", "unified_deviceA")
        .metric("roundtrip_mean_ns", mean_ns)
        .metric("roundtrip_max_ns",
                static_cast<double>(max_latency) / 1e3)
        .metric("throughput_cmds_per_s", cmds_per_s)
        .detail("cycle_attribution", std::move(hops))
        .emit();

    // --- Serial vs parallel + idle fast-forward wall clock. ---
    // Same workload twice: the seed tick-by-tick engine against the
    // 4-thread configuration with idle fast-forward. Bit-identical
    // simulated results are a hard requirement, so the simulated end
    // times must agree before the speedup means anything.
    const TimedRun serial = timedRoundTrips(1, false);
    const TimedRun parallel = timedRoundTrips(4, true);
    if (serial.simEnd != parallel.simEnd ||
        serial.executed != parallel.executed) {
        std::fprintf(stderr,
                     "determinism violation: serial end=%llu/%llu "
                     "parallel end=%llu/%llu\n",
                     static_cast<unsigned long long>(serial.simEnd),
                     static_cast<unsigned long long>(serial.executed),
                     static_cast<unsigned long long>(parallel.simEnd),
                     static_cast<unsigned long long>(
                         parallel.executed));
        return 1;
    }
    const double speedup =
        parallel.wallSeconds > 0.0
            ? serial.wallSeconds / parallel.wallSeconds
            : 0.0;
    std::printf("  serial %.3fs vs parallel(4)+ff %.3fs -> "
                "speedup %.2fx (sim end %llu ps, both)\n",
                serial.wallSeconds, parallel.wallSeconds, speedup,
                static_cast<unsigned long long>(serial.simEnd));

    // Wall-clock depends on the host machine, so the speedup is
    // reported but not regression-gated (no gated suffix).
    BenchReport("cmd_roundtrip", "parallel_speedup")
        .metric("parallel_speedup_x", speedup)
        .metric("serial_wall_s", serial.wallSeconds)
        .metric("parallel_wall_s", parallel.wallSeconds)
        .emit();
    return 0;
}
