/**
 * @file
 * Figure 11: shell tailoring reduces resource consumption. Percentage
 * of device-A resources occupied by the unified shell vs the shells
 * tailored to each application.
 */

#include <cstdio>

#include "common/strings.h"
#include "roles/board_test.h"
#include "roles/host_network.h"
#include "roles/l4lb.h"
#include "roles/retrieval.h"
#include "roles/sec_gateway.h"
#include "shell/unified_shell.h"

using namespace harmonia;

int
main()
{
    const FpgaDevice &dev =
        DeviceDatabase::instance().byName("DeviceA");
    const ResourceVector &budget = dev.chip().budget;

    struct Row {
        std::string name;
        ResourceVector res;
    };
    std::vector<Row> rows;

    {
        Engine engine;
        rows.push_back(
            {"Unified Shell",
             Shell::makeUnified(engine, dev)->shellResources()});
    }
    const std::vector<RoleRequirements> apps = {
        SecGateway::standardRequirements(),
        Layer4Lb::standardRequirements(),
        Retrieval::standardRequirements(),
        HostNetwork::standardRequirements(),
    };
    for (const RoleRequirements &reqs : apps) {
        Engine engine;
        rows.push_back(
            {reqs.name + " Shell",
             Shell::makeTailored(engine, dev, reqs)
                 ->shellResources()});
    }

    std::puts("=== Figure 11: shell resource occupancy on Device A "
              "(XCVU35P) ===");
    TablePrinter table(
        {"shell", "LUTs %", "REGs %", "BRAM %", "URAM %"});
    for (const Row &row : rows) {
        table.addRow(
            {row.name,
             format("%.1f", row.res.utilization("lut", budget) * 100),
             format("%.1f", row.res.utilization("reg", budget) * 100),
             format("%.1f",
                    row.res.utilization("bram", budget) * 100),
             format("%.1f",
                    row.res.utilization("uram", budget) * 100)});
    }
    table.print();

    const double unified =
        rows[0].res.utilization("lut", budget) * 100;
    std::puts("");
    for (std::size_t i = 1; i < rows.size(); ++i) {
        const double tailored =
            rows[i].res.utilization("lut", budget) * 100;
        std::printf("%-22s saves %.1f%% of LUT occupancy vs "
                    "unified\n",
                    rows[i].name.c_str(), unified - tailored);
    }
    std::puts("(paper: tailored shells reduce consumption by "
              "3%-25.1%)");
    return 0;
}
