/**
 * @file
 * Figure 3 (motivation): (a) production-grade shells dominate FPGA
 * logic development workloads across the five applications; (b)
 * vendor-specific IPs exhibit massive interface and configuration
 * differences across FPGA vendors.
 */

#include <cstdio>

#include "common/strings.h"
#include "ip/catalog.h"
#include "roles/board_test.h"
#include "roles/host_network.h"
#include "roles/l4lb.h"
#include "roles/retrieval.h"
#include "roles/sec_gateway.h"
#include "shell/workload_model.h"

using namespace harmonia;

int
main()
{
    std::puts("=== Figure 3a: development-workload split "
              "(handcrafted LoC-equivalents) ===");
    {
        const FpgaDevice &dev =
            DeviceDatabase::instance().byName("DeviceA");
        const std::vector<RoleRequirements> apps = {
            SecGateway::standardRequirements(),
            Layer4Lb::standardRequirements(),
            Retrieval::standardRequirements(),
            BoardTest::standardRequirements(),
            HostNetwork::standardRequirements(),
        };
        TablePrinter table({"application", "shell LoC", "role LoC",
                            "shell fraction", "paper"});
        const char *paper[] = {"0.87", "0.79", "0.79", "0.72",
                               "0.66"};
        int row = 0;
        for (const RoleRequirements &reqs : apps) {
            Engine engine;
            std::unique_ptr<Shell> shell;
            // Board-test exercises every RBB; give it the full shell.
            if (reqs.name == "board_test")
                shell = Shell::makeUnified(engine, dev);
            else
                shell = Shell::makeTailored(engine, dev, reqs);
            const WorkloadSplit split =
                appWorkloadSplit(*shell, reqs.roleLoc);
            table.addRow({reqs.name,
                          std::to_string(split.shellLoc),
                          std::to_string(split.roleLoc),
                          format("%.2f", split.shellFraction()),
                          paper[row++]});
        }
        table.print();
    }

    std::puts("");
    std::puts("=== Figure 3b: cross-vendor IP property differences "
              "===");
    {
        TablePrinter table({"IP function", "interface diff",
                            "configuration diff"});
        for (IpFunction fn : fig3bFunctions()) {
            const PropertyDiff diff = crossVendorDiff(fn);
            table.addRow({toString(fn),
                          std::to_string(diff.interfaceDiff),
                          std::to_string(diff.configDiff)});
        }
        table.print();
        std::puts("(paper: differences range from tens to hundreds "
                  "per module)");
    }

    std::puts("");
    std::puts("=== Figure 3c: heterogeneous fleet growth ===");
    {
        TablePrinter table({"year", "new device types", "new units",
                            "total FPGAs"});
        for (const FleetYear &fy :
             fleetHistory(DeviceDatabase::instance())) {
            table.addRow({std::to_string(fy.year),
                          std::to_string(fy.newDeviceTypes),
                          std::to_string(fy.newUnits),
                          std::to_string(fy.totalUnits)});
        }
        table.print();
        std::puts("(paper: new device types arrive most years; the "
                  "fleet grows into the tens of thousands)");
    }

    std::puts("");
    std::puts("=== Figure 3d: module initialization differs across "
              "platforms ===");
    {
        auto print_recipe = [](const IpBlock &ip) {
            std::printf("  %s (%s):\n", ip.name().c_str(),
                        toString(ip.vendor()));
            for (const RegOp &op : ip.initSequence()) {
                const char *kind =
                    op.kind == RegOp::Kind::Write
                        ? "write"
                        : (op.kind == RegOp::Kind::Read ? "read "
                                                        : "wait ");
            std::printf("    %s %-36s 0x%x\n", kind,
                            op.regName.c_str(), op.value);
            }
        };
        auto shell_a = makeIpFor(IpFunction::Mac, Vendor::Xilinx);
        auto shell_b = makeIpFor(IpFunction::Mac, Vendor::Intel);
        print_recipe(*shell_a);
        print_recipe(*shell_b);
        std::puts("(shell A polls status before proceeding; shell B "
                  "self-initializes — the user-visible control logic "
                  "differs, which the command interface hides)");
    }
    return 0;
}
