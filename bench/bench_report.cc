#include "bench_report.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace harmonia {

double
benchScale()
{
    const char *scale = std::getenv("HARMONIA_BENCH_SCALE");
    if (scale == nullptr || *scale == '\0')
        return 1.0;
    char *end = nullptr;
    const double pct = std::strtod(scale, &end);
    if (end == scale || *end != '\0' || !(pct > 0.0)) {
        warn("ignoring malformed HARMONIA_BENCH_SCALE='%s'", scale);
        return 1.0;
    }
    return pct / 100.0;
}

std::size_t
scaledIters(std::size_t iters, std::size_t floor)
{
    const auto scaled = static_cast<std::size_t>(
        static_cast<double>(iters) * benchScale());
    return scaled < floor ? floor : scaled;
}

BenchReport::BenchReport(std::string bench, std::string scenario)
    : record_(JsonValue::object()), metrics_(JsonValue::object())
{
    record_.set("bench", JsonValue(std::move(bench)));
    record_.set("scenario", JsonValue(std::move(scenario)));
    record_.set("scale", JsonValue(benchScale()));
}

BenchReport &
BenchReport::metric(const std::string &name, double value)
{
    metrics_.set(name, JsonValue(value));
    return *this;
}

BenchReport &
BenchReport::detail(const std::string &name, JsonValue v)
{
    record_.set(name, std::move(v));
    return *this;
}

void
BenchReport::emit()
{
    record_.set("metrics", metrics_);

    std::string line = format(
        "[bench] %s/%s:", record_.get("bench").asString().c_str(),
        record_.get("scenario").asString().c_str());
    for (const std::string &k : metrics_.keys())
        line += format(" %s=%g", k.c_str(),
                       metrics_.get(k).asDouble());
    std::printf("%s\n", line.c_str());

    const char *path = std::getenv("HARMONIA_BENCH_JSON");
    if (path == nullptr || *path == '\0')
        return;
    std::FILE *f = std::fopen(path, "a");
    if (f == nullptr) {
        warn("cannot append bench record to '%s'", path);
        return;
    }
    const std::string doc = record_.dump(0) + "\n";
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

} // namespace harmonia
