/**
 * @file
 * Figure 12: property-level tailoring reduces the configuration items
 * a role must handle — native module configuration surface vs the
 * role-oriented subset, per application.
 */

#include <cstdio>

#include "common/strings.h"
#include "roles/board_test.h"
#include "roles/host_network.h"
#include "roles/l4lb.h"
#include "roles/retrieval.h"
#include "roles/sec_gateway.h"
#include "shell/unified_shell.h"

using namespace harmonia;

int
main()
{
    const FpgaDevice &dev =
        DeviceDatabase::instance().byName("DeviceA");

    const std::vector<RoleRequirements> apps = {
        SecGateway::standardRequirements(),
        Layer4Lb::standardRequirements(),
        Retrieval::standardRequirements(),
        BoardTest::standardRequirements(),
        HostNetwork::standardRequirements(),
    };

    std::puts("=== Figure 12: configuration items, native modules vs "
              "role-oriented ===");
    TablePrinter table({"application", "native items",
                        "role-oriented", "reduction"});
    for (const RoleRequirements &reqs : apps) {
        Engine engine;
        std::unique_ptr<Shell> shell;
        if (reqs.name == "board_test")
            shell = Shell::makeUnified(engine, dev);
        else
            shell = Shell::makeTailored(engine, dev, reqs);
        const std::size_t native = shell->allConfigItems().size();
        const std::size_t role = shell->roleConfigItems().size();
        table.addRow({reqs.name, std::to_string(native),
                      std::to_string(role),
                      format("%.1fx", static_cast<double>(native) /
                                          role)});
    }
    table.print();
    std::puts("(paper: 8.8x-19.8x fewer configuration items for "
              "roles)");
    return 0;
}
