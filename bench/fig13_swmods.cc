/**
 * @file
 * Figure 13: software modifications when migrating an application
 * between devices — register interface (commercial-framework style)
 * vs Harmonia's command-based interface.
 */

#include <cstdio>

#include "common/strings.h"
#include "host/host_app.h"
#include "roles/board_test.h"
#include "roles/host_network.h"
#include "roles/l4lb.h"
#include "roles/retrieval.h"
#include "roles/sec_gateway.h"

using namespace harmonia;

namespace {

const FpgaDevice &
device(const char *name)
{
    return DeviceDatabase::instance().byName(name);
}

/** Adapt a role's requirements to what a board can actually offer. */
RoleRequirements
fitTo(RoleRequirements reqs, const FpgaDevice &dev)
{
    if (reqs.needsMemory && dev.byClass(PeripheralClass::Memory)
                                .empty())
        reqs.needsMemory = false;
    if (reqs.needsMemory && !dev.has(PeripheralKind::Hbm)) {
        double ddr_bw = 0;
        for (const Peripheral &p :
             dev.byClass(PeripheralClass::Memory))
            ddr_bw += p.peakBandwidth() / 1e9;
        if (reqs.memoryBandwidthGBps > ddr_bw)
            reqs.memoryBandwidthGBps = ddr_bw;
    }
    return reqs;
}

} // namespace

int
main()
{
    struct Case {
        RoleRequirements reqs;
        const char *from;
        const char *to;
    };
    const std::vector<Case> cases = {
        {SecGateway::standardRequirements(), "DeviceC", "DeviceD"},
        {Layer4Lb::standardRequirements(), "DeviceC", "DeviceD"},
        {Retrieval::standardRequirements(), "DeviceB", "DeviceA"},
        {BoardTest::standardRequirements(), "DeviceC", "DeviceD"},
        {HostNetwork::standardRequirements(), "DeviceC", "DeviceD"},
    };

    std::puts("=== Figure 13: software modifications for migration "
              "(register IF vs command IF) ===");
    TablePrinter table({"application", "migration", "register mods",
                        "command mods", "reduction"});
    for (const Case &c : cases) {
        Engine e1, e2;
        auto from = Shell::makeTailored(
            e1, device(c.from), fitTo(c.reqs, device(c.from)));
        auto to = Shell::makeTailored(
            e2, device(c.to), fitTo(c.reqs, device(c.to)));
        const std::size_t reg = migrationModifications(
            *from, *to, HostInterface::Register);
        const std::size_t cmd = migrationModifications(
            *from, *to, HostInterface::Command);
        table.addRow({c.reqs.name,
                      format("%s->%s", c.from, c.to),
                      std::to_string(reg), std::to_string(cmd),
                      format("%.0fx",
                             static_cast<double>(reg) / cmd)});
    }
    table.print();
    std::puts("(paper: 88x-107x fewer modifications with the "
              "command-based interface)");
    return 0;
}
