/**
 * @file
 * Ablation: DMA instance selection (§3.3.2 — "a BDMA instance may be
 * chosen for bulk data transfer, while an SGDMA instance may be
 * chosen for discrete data transfer"). Sweeps transfer size for both
 * engine styles and reports the crossover.
 */

#include <cstdio>

#include "common/strings.h"
#include "ip/dma_ip.h"
#include "sim/engine.h"

using namespace harmonia;

namespace {

struct DmaPerf {
    double gbps = 0;
    double latencyUs = 0;
};

DmaPerf
run(DmaEngineStyle style, std::uint32_t bytes, unsigned transfers)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", DmaIp::clockMhzFor(4));
    XilinxQdma dma(4, 16, 4, "abl", style);
    engine.add(&dma, clk);

    std::uint64_t issued = 0, done = 0, lat = 0, moved = 0;
    const Tick start = engine.now();
    while (done < transfers) {
        while (issued < transfers) {
            DmaRequest req;
            req.bytes = bytes;
            req.issued = engine.now();
            if (!dma.post(req))
                break;
            ++issued;
        }
        engine.step();
        while (dma.hasCompletion()) {
            const DmaCompletion c = dma.popCompletion();
            lat += c.latency();
            moved += c.request.bytes;
            ++done;
        }
    }
    const double s =
        static_cast<double>(engine.now() - start) / kTicksPerSecond;
    return {moved * 8.0 / s / 1e9, lat / 1e6 / done};
}

} // namespace

int
main()
{
    std::puts("=== Ablation: BDMA (bulk) vs SGDMA (scatter/gather) "
              "instance selection ===");
    TablePrinter table({"xfer size", "BDMA Gbps", "SGDMA Gbps",
                        "BDMA lat us", "SGDMA lat us", "pick"});
    for (std::uint32_t bytes :
         {256u, 1024u, 4096u, 65536u, 1u << 20}) {
        const DmaPerf bulk = run(DmaEngineStyle::Bulk, bytes, 300);
        const DmaPerf sg =
            run(DmaEngineStyle::ScatterGather, bytes, 300);
        const bool bulk_wins = bulk.gbps > sg.gbps * 1.01;
        const bool sg_wins = sg.latencyUs < bulk.latencyUs * 0.95 &&
                             sg.gbps * 1.01 >= bulk.gbps;
        table.addRow({humanBytes(bytes), format("%.1f", bulk.gbps),
                      format("%.1f", sg.gbps),
                      format("%.2f", bulk.latencyUs),
                      format("%.2f", sg.latencyUs),
                      bulk_wins ? "BDMA"
                                : (sg_wins ? "SGDMA" : "either")});
    }
    table.print();
    std::puts("(module-level tailoring picks the instance matching "
              "the role's transfer profile)");
    return 0;
}
