/**
 * @file
 * Micro-benchmarks (google-benchmark) on the hot primitives: command
 * codec, checksum/CRC, async FIFO and the byte repacker. These bound
 * the simulator's own overheads and document codec costs.
 */

#include <benchmark/benchmark.h>

#include "cmd/command.h"
#include "common/checksum.h"
#include "rtl/async_fifo.h"
#include "rtl/crc.h"
#include "rtl/width_converter.h"

using namespace harmonia;

namespace {

void
BM_Checksum16(benchmark::State &state)
{
    std::vector<std::uint8_t> data(state.range(0));
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    for (auto _ : state)
        benchmark::DoNotOptimize(checksum16(data));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Checksum16)->Arg(64)->Arg(1500)->Arg(65536);

void
BM_Crc32(benchmark::State &state)
{
    std::vector<std::uint8_t> data(state.range(0));
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32(data));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1500)->Arg(65536);

void
BM_CommandEncode(benchmark::State &state)
{
    CommandPacket pkt;
    pkt.rbbId = kRbbNetwork;
    pkt.commandCode = kCmdTableWrite;
    pkt.data.assign(state.range(0), 0xabcd);
    for (auto _ : state)
        benchmark::DoNotOptimize(pkt.encode());
}
BENCHMARK(BM_CommandEncode)->Arg(0)->Arg(8)->Arg(64);

void
BM_CommandDecode(benchmark::State &state)
{
    CommandPacket pkt;
    pkt.data.assign(state.range(0), 0x1234);
    const auto bytes = pkt.encode();
    for (auto _ : state)
        benchmark::DoNotOptimize(decodeCommand(bytes));
}
BENCHMARK(BM_CommandDecode)->Arg(0)->Arg(8)->Arg(64);

void
BM_AsyncFifoPingPong(benchmark::State &state)
{
    AsyncFifo<std::uint64_t> fifo(64, 2);
    std::uint64_t v = 0;
    for (auto _ : state) {
        fifo.writeTick();
        if (fifo.canPush())
            fifo.push(v++);
        fifo.readTick();
        while (fifo.canPop())
            benchmark::DoNotOptimize(fifo.pop());
    }
}
BENCHMARK(BM_AsyncFifoPingPong);

void
BM_ByteRepacker(benchmark::State &state)
{
    Beat in;
    in.data.assign(64, 0x5a);
    in.last = false;
    ByteRepacker rp(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        rp.feed(in);
        while (rp.hasOutput())
            benchmark::DoNotOptimize(rp.pop());
    }
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ByteRepacker)->Arg(16)->Arg(64)->Arg(256);

} // namespace

// main() is provided by benchmark::benchmark_main.
