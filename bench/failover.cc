/**
 * @file
 * Failover bench: the headline robustness number — how long a role is
 * dark between the primary card's last heartbeat and the promoted
 * standby answering commands. Runs the same deterministic drill as
 * tests/ha (Xilinx Device A primary, Intel Device D standby, a stream
 * of journaled policy writes, a device-death window), so the reported
 * downtime is sim-time exact and safe to regression-gate. Also times
 * one wire checkpoint drain, the steady-state cost failover pacing
 * pays while the card is healthy.
 */

#include <cstdio>
#include <vector>

#include "bench_report.h"
#include "fault/fault_plan.h"
#include "ha/failover.h"
#include "roles/sec_gateway.h"

using namespace harmonia;

int
main()
{
    Engine engine;
    const RoleRequirements reqs = SecGateway::standardRequirements();
    auto primary = Shell::makeTailored(
        engine, DeviceDatabase::instance().byName("DeviceA"), reqs);
    auto standby = Shell::makeTailored(
        engine, DeviceDatabase::instance().byName("DeviceD"), reqs);
    SecGateway role_p;
    SecGateway role_s;
    role_p.bind(engine, *primary);
    role_s.bind(engine, *standby);

    FailoverConfig cfg;
    cfg.checkpointInterval = 20'000'000;
    FailoverCoordinator coord(engine, *primary, *standby, cfg);
    coord.manageRole(role_p, role_s);

    constexpr Tick kDeathAt = 300'000'000;
    FaultPlan plan(20240808);
    plan.addWindow(FaultKind::DeviceDeath, kDeathAt,
                   10'000'000'000'000ULL, 1.0, "DeviceA");
    plan.arm();

    std::vector<std::uint64_t> acked_values;
    std::uint64_t next_value = 1;
    const auto write_deny = [&] {
        const std::uint64_t v = next_value++;
        const CallOutcome out = coord.call(
            0, kCmdTableWrite,
            {0xffffffffu, 0xffffffffu, static_cast<std::uint32_t>(v),
             static_cast<std::uint32_t>(v >> 32), 0});
        if (out.ok() && out.response.status == kCmdOk)
            acked_values.push_back(v);
    };

    // Healthy phase, with one explicitly-timed checkpoint drain.
    const std::size_t healthy = scaledIters(40, 10);
    for (std::size_t i = 0; i < healthy; ++i) {
        write_deny();
        coord.poll();
        engine.runFor(2'000'000);
    }
    const Tick drain_start = engine.now();
    if (!coord.checkpointNow()) {
        std::fprintf(stderr, "healthy checkpoint drain failed\n");
        return 1;
    }
    const Tick drain_ticks = engine.now() - drain_start;

    // Death, detection, promotion.
    if (engine.now() < kDeathAt)
        engine.runFor(kDeathAt - engine.now());
    write_deny();  // lands in the two-generals window
    for (int i = 0; i < 50 && !coord.failedOver(); ++i) {
        coord.poll();
        engine.runFor(5'000'000);
    }
    if (!coord.failedOver()) {
        std::fprintf(stderr, "failover never completed\n");
        return 1;
    }
    for (int i = 0; i < 10; ++i) {
        write_deny();
        coord.poll();
        engine.runFor(2'000'000);
    }

    // The bench is only meaningful if the invariant held.
    for (const std::uint64_t v : acked_values)
        if (role_s.allows(v)) {
            std::fprintf(stderr,
                         "acked write %llu missing after failover\n",
                         static_cast<unsigned long long>(v));
            return 1;
        }

    BenchReport("failover", "deviceA_to_deviceD_sec_gateway")
        .metric("failover_downtime_cycles",
                static_cast<double>(coord.downtimeCycles()))
        .metric("failover_downtime_ticks",
                static_cast<double>(coord.downtimeTicks()))
        .metric("checkpoint_drain_ticks",
                static_cast<double>(drain_ticks))
        .metric("journal_replayed_cmds",
                static_cast<double>(
                    coord.stats().value("replayed_commands")))
        .emit();
    return 0;
}
