#!/usr/bin/env bash
# Run the reportable bench scenarios and aggregate their records into
# BENCH_harmonia.json at the repo root.
#
#   bench/run_bench.sh [build_dir] [out.json]
#
# Environment:
#   HARMONIA_BENCH_SCALE     percent of full iterations (default 100;
#                            CI smoke uses 25)
#   HARMONIA_BENCH_BASELINE  baseline BENCH_*.json to gate against
#                            (exit 1 on >15% regression)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_harmonia.json}"
records="$(mktemp /tmp/harmonia_bench.XXXXXX.jsonl)"
trap 'rm -f "$records"' EXIT

export HARMONIA_BENCH_JSON="$records"

benches=(
    bench_cmd_roundtrip
    bench_fig10_wrapper
    bench_abl_cdc
    bench_fig17_apps
    bench_failover
    bench_fleet
    bench_obs_overhead
)

for bench in "${benches[@]}"; do
    bin="$build_dir/bench/$bench"
    if [[ ! -x "$bin" ]]; then
        echo "missing bench binary: $bin (build the 'bench' targets)" >&2
        exit 2
    fi
    echo "--- $bench ---"
    "$bin" > /dev/null
done

gate_args=()
if [[ -n "${HARMONIA_BENCH_BASELINE:-}" ]]; then
    gate_args=("$HARMONIA_BENCH_BASELINE" "${HARMONIA_BENCH_THRESHOLD:-15}")
fi
"$build_dir/bench/bench_aggregate" "$records" "$out_json" "${gate_args[@]}"
