/**
 * @file
 * Fleet bench: the two rack-scheduler headline numbers. Placement
 * latency is the cycles between a tenant's admission decision and its
 * role answering commands on the chosen PR slot (dominated by partial
 * reconfiguration). Migration downtime is the cycles a tenant is dark
 * during a live move — drain, checkpoint, re-place, restore, replay,
 * cutover. Both come out of the same deterministic scheduler drill
 * the chaos tests run (8 heterogeneous cards, a DeviceDeath window,
 * cross-vendor moves), so the numbers are sim-time exact and safe to
 * regression-gate with absolute ceilings.
 */

#include <cstdio>

#include "bench_report.h"
#include "fleet/scheduler_drill.h"

using namespace harmonia;

int
main()
{
    SchedulerDrillConfig cfg;
    cfg.requests = scaledIters(120, 40);
    const SchedulerDrillReport rep = SchedulerDrill(cfg).run();

    // A bench on a broken fleet is a lie: the invariants the tests
    // enforce must hold here too before any number is reported.
    if (!rep.zeroLoss) {
        std::fprintf(stderr, "acked-command loss during bench\n");
        return 1;
    }
    if (rep.migrations == 0 || rep.placements == 0) {
        std::fprintf(stderr, "drill too thin: %llu placements, "
                             "%llu migrations\n",
                     static_cast<unsigned long long>(rep.placements),
                     static_cast<unsigned long long>(rep.migrations));
        return 1;
    }
    if (rep.degradedEnd != 0) {
        std::fprintf(stderr, "%llu tenants still degraded\n",
                     static_cast<unsigned long long>(rep.degradedEnd));
        return 1;
    }

    BenchReport("fleet", "rack8_mixed_tenants")
        .metric("placement_latency_cycles", rep.meanPlacementCycles)
        .metric("placement_latency_cycles_max",
                static_cast<double>(rep.maxPlacementCycles))
        .metric("migration_downtime_cycles", rep.meanMigrationCycles)
        .metric("migration_downtime_cycles_max",
                static_cast<double>(rep.maxMigrationCycles))
        .metric("placements", static_cast<double>(rep.placements))
        .metric("migrations", static_cast<double>(rep.migrations))
        .metric("cross_vendor_migrations",
                static_cast<double>(rep.crossVendorMigrations))
        .emit();
    return 0;
}
