/**
 * @file
 * Ablation: the parameterized clock-domain crossing. Sweeps
 * synchronizer depth and width ratios and reports crossing latency
 * and sustained throughput, quantifying the S*M = R*U lossless rule
 * from §3.3.1.
 */

#include <cstdio>

#include "bench_report.h"
#include "common/strings.h"
#include "shell/cdc.h"

using namespace harmonia;

namespace {

struct CdcResult {
    double achievedGbps = 0;
    double crossingNs = 0;
};

CdcResult
runCdc(double write_mhz, unsigned write_bits, double read_mhz,
       unsigned read_bits, unsigned stages, unsigned packets)
{
    Engine engine;
    Clock *wclk = engine.addClock("w", write_mhz);
    Clock *rclk = engine.addClock("r", read_mhz);
    ParamCdc cdc(engine, "cdc", wclk, rclk, write_bits, read_bits, 16,
                 stages);

    std::uint64_t pushed = 0, popped = 0, bytes = 0, lat = 0;
    std::vector<Tick> inject(packets, 0);
    const Tick start = engine.now();
    while (popped < packets) {
        while (pushed < packets && cdc.canPush()) {
            PacketDesc pkt;
            pkt.id = pushed;
            pkt.bytes = 256;
            pkt.injected = engine.now();
            cdc.push(pkt);
            ++pushed;
        }
        engine.step();
        while (cdc.canPop()) {
            const PacketDesc pkt = cdc.pop();
            lat += engine.now() - pkt.injected;
            bytes += pkt.bytes;
            ++popped;
        }
    }
    const double s =
        static_cast<double>(engine.now() - start) / kTicksPerSecond;
    return {bytes * 8.0 / s / 1e9, lat / 1e3 / popped};
}

} // namespace

int
main()
{
    std::puts("=== Ablation: param CDC synchronizer depth "
              "(512b@322 -> 512b@322) ===");
    {
        TablePrinter table(
            {"sync stages", "throughput Gbps", "crossing ns"});
        const unsigned packets =
            static_cast<unsigned>(scaledIters(2000, 200));
        for (unsigned stages : {2u, 3u, 4u}) {
            const CdcResult r =
                runCdc(322.0, 512, 322.0, 512, stages, packets);
            table.addRow({std::to_string(stages),
                          format("%.1f", r.achievedGbps),
                          format("%.1f", r.crossingNs)});
            if (stages == 2)
                BenchReport("abl_cdc", "cdc_crossing")
                    .metric("throughput_gbps", r.achievedGbps)
                    .metric("crossing_ns", r.crossingNs)
                    .emit();
        }
        table.print();
        std::puts("(deeper synchronizers buy metastability margin "
                  "with a linear latency cost; throughput holds)");
    }

    std::puts("");
    std::puts("=== Ablation: width/frequency pairing (RBB 512b@322 "
              "-> user U@R) ===");
    {
        TablePrinter table({"user config", "S*M Gbps", "R*U Gbps",
                            "achieved Gbps", "lossless rule"});
        const struct {
            unsigned bits;
            double mhz;
        } users[] = {
            {512, 322.0},   // matched
            {1024, 250.0},  // wider, slower: R*U > S*M
            {512, 200.0},   // too slow: R*U < S*M
            {256, 322.0},   // too narrow
        };
        for (const auto &u : users) {
            Engine probe;
            Clock *w = probe.addClock("w", 322.0);
            Clock *r = probe.addClock("r", u.mhz);
            ParamCdc cdc(probe, "p", w, r, 512, u.bits);
            const CdcResult res = runCdc(
                322.0, 512, u.mhz, u.bits, 2,
                static_cast<unsigned>(scaledIters(2000, 200)));
            table.addRow(
                {format("%ub@%.0fMHz", u.bits, u.mhz),
                 format("%.0f", cdc.writeBandwidthBps() / 1e9),
                 format("%.0f", cdc.readBandwidthBps() / 1e9),
                 format("%.1f", res.achievedGbps),
                 cdc.lossless() ? "holds" : "violated"});
        }
        table.print();
        std::puts("(select instances with S*M <= R*U for lossless "
                  "bandwidth, per the paper)");
    }
    return 0;
}
