/**
 * @file
 * Figure 15: shell development-workload reuse per application when
 * migrating across FPGAs.
 */

#include <cstdio>

#include "common/strings.h"
#include "roles/board_test.h"
#include "roles/host_network.h"
#include "roles/l4lb.h"
#include "roles/retrieval.h"
#include "roles/sec_gateway.h"
#include "shell/workload_model.h"

using namespace harmonia;

int
main()
{
    const FpgaDevice &dev =
        DeviceDatabase::instance().byName("DeviceA");
    const std::vector<RoleRequirements> apps = {
        SecGateway::standardRequirements(),
        Layer4Lb::standardRequirements(),
        Retrieval::standardRequirements(),
        BoardTest::standardRequirements(),
        HostNetwork::standardRequirements(),
    };

    std::puts("=== Figure 15: per-application shell reuse across "
              "FPGAs ===");
    TablePrinter table({"application", "cross-vendor reuse",
                        "cross-chip reuse"});
    for (const RoleRequirements &reqs : apps) {
        Engine engine;
        std::unique_ptr<Shell> shell;
        if (reqs.name == "board_test")
            shell = Shell::makeUnified(engine, dev);
        else
            shell = Shell::makeTailored(engine, dev, reqs);
        table.addRow(
            {reqs.name,
             format("%.2f",
                    appShellReuse(*shell,
                                  MigrationKind::CrossVendor)),
             format("%.2f", appShellReuse(
                                *shell, MigrationKind::CrossChip))});
    }
    table.print();
    std::puts("(paper: 70%-80% shell reuse across applications)");
    return 0;
}
