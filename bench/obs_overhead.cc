/**
 * @file
 * Streaming-telemetry overhead bench: the wire cost of watching a
 * fleet. Runs the canned 4-card FleetSim (no fault, no trace — a
 * clean link, so every word is steady-state cost, not recovery) and
 * reports what the subscription stream actually moved against what
 * the equivalent List+Snapshot polling walk would have moved each
 * poll. The ratio is `telemetry_stream_overhead_pct`; on top of the
 * relative baseline gate, bench_aggregate enforces an absolute
 * ceiling ($HARMONIA_STREAM_OVERHEAD_CEILING, default 60%, 0
 * disables) — the streaming plane existing at all is only justified
 * while it stays well under the polling cost it replaced.
 */

#include <cstdio>

#include "bench_report.h"
#include "obs/fleet_sim.h"

using namespace harmonia;

int
main()
{
    FleetSimConfig cfg;
    cfg.injectFault = false;
    cfg.trace = false;
    cfg.rounds = static_cast<int>(scaledIters(40, 10));
    FleetSim sim(cfg);
    sim.run();

    const ObsHub &hub = sim.hub();
    const double streamed =
        static_cast<double>(hub.streamedWireWords());
    const double snapshot =
        static_cast<double>(hub.snapshotEquivalentWords());
    if (streamed <= 0.0 || snapshot <= 0.0) {
        std::fprintf(stderr, "no wire traffic recorded\n");
        return 1;
    }
    // A clean link must stay clean, or the overhead number is
    // polluted by resync traffic that shouldn't exist.
    if (hub.gapsDetected() != 0 || hub.resyncs() != 0) {
        std::fprintf(stderr,
                     "spurious gaps/resyncs on a fault-free run\n");
        return 1;
    }

    BenchReport("obs_overhead", "fleet4_streaming_vs_polling")
        .metric("telemetry_stream_overhead_pct",
                100.0 * streamed / snapshot)
        .metric("telemetry_stream_words", streamed)
        .metric("telemetry_snapshot_equiv_words", snapshot)
        .emit();
    return 0;
}
