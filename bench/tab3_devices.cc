/**
 * @file
 * Table 3: FPGA devices supported by each framework.
 */

#include <cstdio>

#include "common/strings.h"
#include "frameworks/comparison.h"

using namespace harmonia;

int
main()
{
    const SupportMatrix m = buildSupportMatrix();

    std::puts("=== Table 3: devices supported by each framework ===");
    std::vector<std::string> headers = {"device (board/chip)"};
    for (const std::string &fw : m.frameworks)
        headers.push_back(fw);
    TablePrinter table(headers);

    for (const std::string &dev_name : m.devices) {
        const FpgaDevice &dev =
            DeviceDatabase::instance().byName(dev_name);
        std::vector<std::string> row = {
            format("%s (%s/%s)", dev_name.c_str(),
                   toString(dev.boardVendor), dev.chipName.c_str())};
        for (const std::string &fw : m.frameworks)
            row.push_back(m.supported.at({fw, dev_name}) ? "yes"
                                                         : "-");
        table.addRow(row);
    }
    table.print();
    std::puts("(paper: only Harmonia covers Intel, Xilinx and "
              "in-house custom boards)");
    return 0;
}
