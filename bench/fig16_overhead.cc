/**
 * @file
 * Figure 16: resource overhead of Harmonia's hardware additions — the
 * interface wrappers per module and the unified control kernel — as a
 * percentage of the device's resources.
 */

#include <cstdio>

#include "common/strings.h"
#include "shell/unified_shell.h"

using namespace harmonia;

int
main()
{
    const FpgaDevice &dev =
        DeviceDatabase::instance().byName("DeviceA");
    const ResourceVector &budget = dev.chip().budget;
    Engine engine;
    auto shell = Shell::makeUnified(engine, dev);

    std::puts("=== Figure 16: wrapper and control-kernel overhead "
              "on Device A ===");
    TablePrinter table(
        {"module", "LUT %", "REG %", "BRAM %", "max %"});

    auto add = [&](const std::string &name, const ResourceVector &r) {
        table.addRow(
            {name,
             format("%.3f", r.utilization("lut", budget) * 100),
             format("%.3f", r.utilization("reg", budget) * 100),
             format("%.3f", r.utilization("bram", budget) * 100),
             format("%.3f", r.maxUtilization(budget) * 100)});
    };

    for (const Rbb *rbb : shell->rbbs())
        add(std::string(toString(rbb->kind())) + " wrapper",
            rbb->wrapperResources());
    add("unified ctrl kernel", shell->kernelResources());
    add("all wrappers", shell->wrapperResources());
    table.print();
    std::puts("(paper: wrappers < 0.37%, unified control kernel "
              "< 0.67%)");
    return 0;
}
