/**
 * @file
 * Ablation: the Memory RBB's Ex-functions. Hot cache and address
 * interleaving toggled independently across access patterns,
 * quantifying what each mechanism contributes (§3.3.1).
 */

#include <cstdio>

#include "common/strings.h"
#include "workload/vector_db.h"

using namespace harmonia;

namespace {

VectorDbResult
runPattern(AccessPattern pattern, bool hot_cache, bool interleave,
           std::uint64_t db_vectors)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", 300.0);
    MemoryRbb mem(engine, clk, Vendor::Xilinx, PeripheralKind::Ddr4,
                  2);
    mem.setHotCacheEnabled(hot_cache);
    mem.setInterleaveEnabled(interleave);
    VectorDbConfig cfg;
    cfg.dbVectors = db_vectors;
    cfg.accesses = 3000;
    VectorDbWorkload db(engine, mem, cfg);
    db.populate();
    return db.run(pattern, false);
}

} // namespace

int
main()
{
    std::puts("=== Ablation: Memory RBB Ex-functions (2-channel "
              "DDR4, Mvec/s) ===");

    const struct {
        const char *name;
        bool cache;
        bool interleave;
    } configs[] = {
        {"baseline (no ex-functions)", false, false},
        {"+interleave", false, true},
        {"+hot cache", true, false},
        {"+both (Harmonia default)", true, true},
    };

    for (std::uint64_t db_vectors : {1ULL << 15, 1ULL << 20}) {
        std::printf("\n--- DB = %s ---\n",
                    humanBytes(db_vectors * 4).c_str());
        TablePrinter table({"configuration", "sequential", "fixed",
                            "random"});
        for (const auto &c : configs) {
            const auto seq = runPattern(AccessPattern::Sequential,
                                        c.cache, c.interleave,
                                        db_vectors);
            const auto fix = runPattern(AccessPattern::Fixed, c.cache,
                                        c.interleave, db_vectors);
            const auto rnd = runPattern(AccessPattern::Random,
                                        c.cache, c.interleave,
                                        db_vectors);
            table.addRow(
                {c.name, format("%.1f", seq.vectorsPerSecond / 1e6),
                 format("%.1f", fix.vectorsPerSecond / 1e6),
                 format("%.1f", rnd.vectorsPerSecond / 1e6)});
        }
        table.print();
    }
    std::puts("");
    std::puts("(hot cache rescues re-referenced data; interleaving "
              "spreads streams across channels — together they "
              "justify the Ex-function layer)");
    return 0;
}
