/**
 * @file
 * Figure 17: application throughput and latency with and without
 * Harmonia. "Without" is a custom native shell: the same role logic
 * wired straight to the vendor IPs, with no wrapper or RBB layer.
 * BITW applications sweep packet size; Retrieval sweeps corpus size.
 */

#include <cstdio>
#include <functional>

#include "bench_report.h"
#include "common/strings.h"
#include "roles/host_network.h"
#include "roles/l4lb.h"
#include "roles/retrieval.h"
#include "roles/sec_gateway.h"
#include "workload/flow_gen.h"

using namespace harmonia;

namespace {

struct PerfPoint {
    double gbps = 0;
    double latencyUs = 0;
};

/** A packet decision: returns true to forward (possibly mutating). */
using Decision = std::function<bool(PacketDesc &)>;

/**
 * Native BITW path: raw MAC -> inline role decision -> raw MAC, with
 * a sink MAC measuring arrival on the line side.
 */
PerfPoint
nativeBitw(const Decision &decide, std::uint32_t pkt_bytes,
           unsigned packets)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", MacIp::clockMhzFor(100));
    XilinxCmac in_mac(100, "in");
    XilinxCmac out_mac(100, "out");
    XilinxCmac sink(100, "sink");
    out_mac.connectPeer(&sink);

    std::uint64_t got = 0, lat = 0, bytes = 0;
    FunctionComponent role("native_role", [&] {
        while (in_mac.rxAvailable() && out_mac.txReady()) {
            PacketDesc pkt = in_mac.rxPop();
            if (decide(pkt))
                out_mac.txPush(pkt);
        }
    });
    engine.add(&role, clk);
    engine.add(&in_mac, clk);
    engine.add(&out_mac, clk);
    engine.add(&sink, clk);

    const Tick wire = wireTime(pkt_bytes, 100e9);
    for (unsigned i = 0; i < packets; ++i) {
        PacketDesc pkt;
        pkt.id = i;
        pkt.flowHash = i % 1024;
        pkt.bytes = pkt_bytes;
        pkt.injected = engine.now() + i * wire;
        in_mac.injectRx(pkt, pkt.injected);
    }
    const Tick start = engine.now();
    engine.runUntilDone(
        [&] {
            while (sink.rxAvailable()) {
                const PacketDesc pkt = sink.rxPop();
                lat += engine.now() - pkt.injected;
                bytes += pkt.bytes;
                ++got;
            }
            return got >= packets * 95 / 100;
        },
        2'000'000'000);
    const double s =
        static_cast<double>(engine.now() - start) / kTicksPerSecond;
    if (got == 0)
        return {};
    return {bytes * 8.0 / s / 1e9, lat / 1e6 / got};
}

/** Harmonia BITW path: tailored shell + bound role + sink MAC. */
PerfPoint
harmoniaBitw(Role &role, const RoleRequirements &reqs,
             const char *device_name, std::uint32_t pkt_bytes,
             unsigned packets)
{
    Engine engine;
    auto shell = Shell::makeTailored(
        engine, DeviceDatabase::instance().byName(device_name), reqs);
    role.bind(engine, *shell);

    NetworkRbb &rx_port = shell->network(0);
    NetworkRbb &tx_port = shell->networkCount() > 1
                              ? shell->network(1)
                              : shell->network(0);
    Clock *sink_clk = engine.addClock("sink_clk", 322.265625);
    XilinxCmac sink(100, "sink");
    engine.add(&sink, sink_clk);
    tx_port.mac().connectPeer(&sink);

    const Tick wire = wireTime(pkt_bytes, 100e9);
    for (unsigned i = 0; i < packets; ++i) {
        PacketDesc pkt;
        pkt.id = i;
        pkt.flowHash = i % 1024;
        pkt.bytes = pkt_bytes;
        pkt.injected = engine.now() + i * wire;
        rx_port.mac().injectRx(pkt, pkt.injected);
    }
    std::uint64_t got = 0, lat = 0, bytes = 0;
    const Tick start = engine.now();
    engine.runUntilDone(
        [&] {
            while (sink.rxAvailable()) {
                const PacketDesc pkt = sink.rxPop();
                lat += engine.now() - pkt.injected;
                bytes += pkt.bytes;
                ++got;
            }
            return got >= packets * 95 / 100;
        },
        2'000'000'000);
    const double s =
        static_cast<double>(engine.now() - start) / kTicksPerSecond;
    if (got == 0)
        return {};
    return {bytes * 8.0 / s / 1e9, lat / 1e6 / got};
}

void
bitwTable(const char *title, const Decision &native_decision,
          const std::function<std::unique_ptr<Role>()> &make_role,
          const RoleRequirements &reqs,
          const char *device_name = "DeviceB",
          const char *report_scenario = nullptr)
{
    std::printf("=== Figure 17: %s (BITW) ===\n", title);
    // The absolute added latency is what matters: deployed BITW
    // applications see ~10 us end to end (hosts, switches), so a
    // few tens of ns is the paper's "< 1%".
    TablePrinter table({"pkt size", "native Gbps", "harmonia Gbps",
                        "native lat us", "harmonia lat us",
                        "added ns", "% of 10us e2e"});
    const unsigned packets =
        static_cast<unsigned>(scaledIters(1500, 200));
    for (std::uint32_t size : {64u, 128u, 256u, 512u, 1024u}) {
        const PerfPoint n = nativeBitw(native_decision, size, packets);
        auto role = make_role();
        const PerfPoint h =
            harmoniaBitw(*role, reqs, device_name, size, packets);
        const double added_ns = (h.latencyUs - n.latencyUs) * 1e3;
        table.addRow(
            {std::to_string(size), format("%.1f", n.gbps),
             format("%.1f", h.gbps), format("%.3f", n.latencyUs),
             format("%.3f", h.latencyUs), format("%.0f", added_ns),
             format("%.2f", added_ns / 10'000 * 100)});
        if (report_scenario != nullptr && size == 512)
            BenchReport("fig17_apps", report_scenario)
                .metric("native_gbps", n.gbps)
                .metric("harmonia_gbps", h.gbps)
                .metric("harmonia_lat_us", h.latencyUs)
                .metric("added_lat_ns", added_ns)
                .emit();
    }
    table.print();
    std::puts("");
}

} // namespace

int
main()
{
    // --- Sec-Gateway: policy check on every packet. ---
    {
        SecGateway policy_holder;
        policy_holder.addPolicy({0xff, 0x13, false});
        bitwTable(
            "Sec-Gateway",
            [&](PacketDesc &pkt) {
                return policy_holder.allows(pkt.flowHash);
            },
            [&] {
                auto role = std::make_unique<SecGateway>();
                role->addPolicy({0xff, 0x13, false});
                return role;
            },
            SecGateway::standardRequirements());
    }

    // --- Layer-4 LB: connection table + rendezvous hash. ---
    {
        Layer4Lb native_lb(64);
        bitwTable(
            "Layer-4 LB",
            [&](PacketDesc &pkt) {
                pkt.queue = static_cast<std::uint16_t>(
                    native_lb.processFlowPacket(pkt.flowHash,
                                                FlowPhase::Data));
                return true;
            },
            [] { return std::make_unique<Layer4Lb>(64); },
            Layer4Lb::standardRequirements(), "DeviceB", "l4lb_e2e");
    }

    // --- Host Network: exact-match flow cache, to-wire actions. ---
    {
        HostNetwork native_flows;
        for (std::uint64_t f = 0; f < 1024; ++f)
            native_flows.installFlow(f, {FlowAction::Kind::ToWire, 0});
        const RoleRequirements reqs =
            HostNetwork::standardRequirements();
        bitwTable(
            "Host Network",
            [&](PacketDesc &pkt) {
                return native_flows.hasFlow(pkt.flowHash);
            },
            [] {
                auto role = std::make_unique<HostNetwork>();
                role->setAutoInstall(false);
                for (std::uint64_t f = 0; f < 1024; ++f)
                    role->installFlow(
                        f, {FlowAction::Kind::ToWire, 0});
                return role;
            },
            reqs, "DeviceA");  // host-network needs external memory
    }

    // --- Retrieval: QPS and latency vs corpus size (look-aside). ---
    {
        std::puts("=== Figure 17d: Retrieval (look-aside) ===");
        TablePrinter table({"corpus items", "harmonia QPS",
                            "harmonia lat", "native QPS (est)",
                            "lat delta %"});
        for (std::uint64_t items :
             {1000ULL, 100'000ULL, 10'000'000ULL, 1'000'000'000ULL}) {
            Engine engine;
            auto shell = Shell::makeTailored(
                engine, DeviceDatabase::instance().byName("DeviceA"),
                Retrieval::standardRequirements());
            Retrieval role;
            role.bind(engine, *shell);
            role.setCorpusItems(items);

            // Corpora past 10^7 items are reported analytically: the
            // simulated scan would take minutes of wall clock for the
            // same number.
            Tick latency = 0;
            if (items <= 10'000'000ULL) {
                role.submitQuery(1);
                engine.runUntilDone([&] { return role.hasResult(); },
                                    3'000'000'000'000ULL);
                latency = role.popResult().latency();
            } else {
                latency = role.queryServiceTime();
            }
            const double lat_s =
                static_cast<double>(latency) / kTicksPerSecond;

            // Native: identical scan/compute bound; the wrapper only
            // adds its fixed cycles to the sampled block reads.
            const Tick wrapper_overhead =
                2 * shell->memory().wrapper().addedLatency();
            const double native_lat_s =
                lat_s - static_cast<double>(wrapper_overhead) /
                            kTicksPerSecond;
            table.addRow(
                {std::to_string(items), format("%.1f", 1.0 / lat_s),
                 humanTime(latency),
                 format("%.1f", 1.0 / native_lat_s),
                 format("%.3f",
                        (lat_s - native_lat_s) / native_lat_s * 100)});
        }
        table.print();
    }
    std::puts("");
    std::puts("(paper: Harmonia reaches full bandwidth / desired QPS "
              "with < 1% latency increase)");
    return 0;
}
