/**
 * @file
 * Figure 10: native module performance vs performance through the
 * lightweight interface wrapper, for (a) the MAC in QSFP loopback,
 * (b) the PCIe DMA engine, and (c) the DDR controller. The wrapper
 * must preserve throughput and add only a few fixed cycles.
 */

#include <cstdio>

#include "bench_report.h"
#include "common/strings.h"
#include "shell/host_rbb.h"
#include "shell/memory_rbb.h"
#include "shell/network_rbb.h"
#include "workload/packet_gen.h"

using namespace harmonia;

namespace {

struct PerfPoint {
    double throughput = 0;  // unit depends on the experiment
    double latencyUs = 0;
};

/**
 * Single-outstanding latency probe: send one packet/request, wait for
 * it, repeat. Queueing never builds, so the number is the pure path
 * delay (the quantity Fig 10's latency curves report).
 */
template <typename Push, typename TryPop>
double
probeLatencyUs(Engine &engine, Push &&push, TryPop &&try_pop,
               unsigned rounds)
{
    std::uint64_t lat = 0;
    for (unsigned i = 0; i < rounds; ++i) {
        const Tick sent = engine.now();
        push(i);
        Tick done = 0;
        engine.runUntilDone(
            [&] {
                if (try_pop()) {
                    done = engine.now();
                    return true;
                }
                return false;
            },
            100'000'000);
        lat += done - sent;
    }
    return lat / 1e6 / rounds;
}

/** MAC loopback: native (raw IP) path. */
PerfPoint
macNative(std::uint32_t pkt_bytes, unsigned packets)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", MacIp::clockMhzFor(100));
    XilinxCmac mac(100);
    engine.add(&mac, clk);
    mac.setLoopback(true);

    std::uint64_t sent = 0, got = 0, lat = 0, bytes = 0;
    const Tick start = engine.now();
    while (got < packets) {
        while (sent < packets && mac.txReady()) {
            PacketDesc pkt;
            pkt.bytes = pkt_bytes;
            pkt.injected = engine.now();
            mac.txPush(pkt);
            ++sent;
        }
        engine.step();
        while (mac.rxAvailable()) {
            const PacketDesc pkt = mac.rxPop();
            lat += engine.now() - pkt.injected;
            bytes += pkt.bytes;
            ++got;
        }
    }
    const double s =
        static_cast<double>(engine.now() - start) / kTicksPerSecond;
    (void)lat;
    const double latency = probeLatencyUs(
        engine,
        [&](unsigned) {
            PacketDesc pkt;
            pkt.bytes = pkt_bytes;
            mac.txPush(pkt);
        },
        [&] {
            if (!mac.rxAvailable())
                return false;
            mac.rxPop();
            return true;
        },
        100);
    return {bytes * 8.0 / s / 1e9, latency};
}

/** MAC loopback through the Network RBB (wrapper on the path). */
PerfPoint
macWrapped(std::uint32_t pkt_bytes, unsigned packets)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", MacIp::clockMhzFor(100));
    NetworkRbb rbb(engine, clk, Vendor::Xilinx, 100);
    rbb.setLoopback(true);

    std::uint64_t sent = 0, got = 0, lat = 0, bytes = 0;
    const Tick start = engine.now();
    while (got < packets) {
        while (sent < packets && rbb.txReady()) {
            PacketDesc pkt;
            pkt.bytes = pkt_bytes;
            pkt.injected = engine.now();
            rbb.txPush(pkt);
            ++sent;
        }
        engine.step();
        while (rbb.rxAvailable()) {
            const PacketDesc pkt = rbb.rxPop();
            lat += engine.now() - pkt.injected;
            bytes += pkt.bytes;
            ++got;
        }
    }
    const double s =
        static_cast<double>(engine.now() - start) / kTicksPerSecond;
    (void)lat;
    const double latency = probeLatencyUs(
        engine,
        [&](unsigned) {
            PacketDesc pkt;
            pkt.bytes = pkt_bytes;
            rbb.txPush(pkt);
        },
        [&] {
            if (!rbb.rxAvailable())
                return false;
            rbb.rxPop();
            return true;
        },
        100);
    return {bytes * 8.0 / s / 1e9, latency};
}

/** PCIe DMA: posted reads of a given size, native vs Host RBB. */
PerfPoint
dmaRun(std::uint32_t bytes, unsigned transfers, bool wrapped)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", DmaIp::clockMhzFor(4));

    std::unique_ptr<HostRbb> rbb;
    std::unique_ptr<DmaIp> raw;
    if (wrapped) {
        rbb = std::make_unique<HostRbb>(engine, clk, Vendor::Xilinx,
                                        4, 8, 64);
        rbb->setQueueActive(0, true);
    } else {
        raw = makeDma(Vendor::Xilinx, 4, 8, 64);
        engine.add(raw.get(), clk);
    }

    std::uint64_t sent = 0, got = 0, lat = 0, moved = 0;
    const Tick start = engine.now();
    while (got < transfers) {
        while (sent < transfers) {
            bool ok;
            if (wrapped) {
                ok = rbb->submit(DmaDir::H2C, 0, bytes, sent);
            } else {
                DmaRequest req;
                req.bytes = bytes;
                req.issued = engine.now();
                ok = raw->post(req);
            }
            if (!ok)
                break;
            ++sent;
        }
        engine.step();
        auto drain = [&](auto &src) {
            while (src.hasCompletion()) {
                const DmaCompletion c = src.popCompletion();
                lat += c.latency();
                moved += c.request.bytes;
                ++got;
            }
        };
        if (wrapped)
            drain(*rbb);
        else
            drain(*raw);
    }
    const double s =
        static_cast<double>(engine.now() - start) / kTicksPerSecond;
    (void)lat;
    const double latency = probeLatencyUs(
        engine,
        [&](unsigned i) {
            if (wrapped) {
                rbb->submit(DmaDir::H2C, 0, bytes, 1'000'000 + i);
            } else {
                DmaRequest req;
                req.bytes = bytes;
                req.issued = engine.now();
                raw->post(req);
            }
        },
        [&] {
            if (wrapped) {
                if (!rbb->hasCompletion())
                    return false;
                rbb->popCompletion();
                return true;
            }
            if (!raw->hasCompletion())
                return false;
            raw->popCompletion();
            return true;
        },
        100);
    return {moved / s / 1e9, latency};
}

/** DDR: one access pattern, native vs Memory RBB. */
PerfPoint
ddrRun(bool sequential, bool write, unsigned ops, bool wrapped)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", 300.0);

    std::unique_ptr<MemoryRbb> rbb;
    std::unique_ptr<MemoryIp> raw;
    if (wrapped) {
        rbb = std::make_unique<MemoryRbb>(engine, clk, Vendor::Xilinx,
                                          PeripheralKind::Ddr4, 1);
        rbb->setHotCacheEnabled(false);  // measure the raw pattern
    } else {
        raw = makeMemory(Vendor::Xilinx, PeripheralKind::Ddr4, 1);
        engine.add(raw.get(), clk);
    }

    Rng rng(3);
    std::uint64_t issued = 0, got = 0, lat = 0;
    const Tick start = engine.now();
    while (got < ops) {
        while (issued < ops) {
            const Addr addr =
                sequential ? issued * 64
                           : (rng.next() % (1ULL << 26)) / 64 * 64;
            bool ok;
            if (wrapped) {
                ok = write ? rbb->write(addr, 64, issued)
                           : rbb->read(addr, 64, issued);
            } else {
                MemRequest req;
                req.write = write;
                req.addr = addr;
                req.bytes = 64;
                req.issued = engine.now();
                ok = raw->post(0, req);
            }
            if (!ok)
                break;
            ++issued;
        }
        engine.step();
        auto drain = [&](auto &src) {
            while (src.hasCompletion()) {
                lat += src.popCompletion().latency();
                ++got;
            }
        };
        if (wrapped)
            drain(*rbb);
        else
            drain(*raw);
    }
    const double s =
        static_cast<double>(engine.now() - start) / kTicksPerSecond;
    return {got / s / 1e6, lat / 1e6 / got};  // Mops/s
}

} // namespace

int
main()
{
    std::puts("=== Figure 10a: MAC module, native vs wrapper "
              "(100G loopback) ===");
    {
        TablePrinter table({"pkt size", "native Gbps", "wrapped Gbps",
                            "native lat us", "wrapped lat us"});
        const unsigned packets =
            static_cast<unsigned>(scaledIters(2000, 200));
        for (std::uint32_t size : {64u, 128u, 256u, 512u, 1024u}) {
            const PerfPoint n = macNative(size, packets);
            const PerfPoint w = macWrapped(size, packets);
            table.addRow({std::to_string(size),
                          format("%.1f", n.throughput),
                          format("%.1f", w.throughput),
                          format("%.3f", n.latencyUs),
                          format("%.3f", w.latencyUs)});
            if (size == 512)
                BenchReport("fig10_wrapper", "wrapper_overhead")
                    .metric("native_gbps", n.throughput)
                    .metric("wrapped_gbps", w.throughput)
                    .metric("native_lat_us", n.latencyUs)
                    .metric("wrapped_lat_us", w.latencyUs)
                    .emit();
        }
        table.print();
    }

    std::puts("");
    std::puts("=== Figure 10b: PCIe DMA module, native vs wrapper "
              "(Gen4 x8) ===");
    {
        TablePrinter table({"xfer size", "native GB/s",
                            "wrapped GB/s", "native lat us",
                            "wrapped lat us"});
        const unsigned transfers =
            static_cast<unsigned>(scaledIters(800, 100));
        for (std::uint32_t size :
             {1024u, 2048u, 4096u, 8192u, 16384u}) {
            const PerfPoint n = dmaRun(size, transfers, false);
            const PerfPoint w = dmaRun(size, transfers, true);
            table.addRow({humanBytes(size),
                          format("%.2f", n.throughput),
                          format("%.2f", w.throughput),
                          format("%.3f", n.latencyUs),
                          format("%.3f", w.latencyUs)});
            if (size == 4096)
                BenchReport("fig10_wrapper", "dma_throughput")
                    .metric("native_throughput_gbytes", n.throughput)
                    .metric("wrapped_throughput_gbytes", w.throughput)
                    .metric("wrapped_lat_us", w.latencyUs)
                    .emit();
        }
        table.print();
    }

    std::puts("");
    std::puts("=== Figure 10c: DDR module, native vs wrapper "
              "(64B ops) ===");
    {
        TablePrinter table({"pattern", "native Mops", "wrapped Mops",
                            "native lat us", "wrapped lat us"});
        const struct {
            const char *name;
            bool seq;
            bool write;
        } patterns[] = {
            {"RandRead", false, false},
            {"RandWrite", false, true},
            {"SeqRead", true, false},
            {"SeqWrite", true, true},
        };
        const unsigned ops =
            static_cast<unsigned>(scaledIters(3000, 300));
        for (const auto &p : patterns) {
            const PerfPoint n = ddrRun(p.seq, p.write, ops, false);
            const PerfPoint w = ddrRun(p.seq, p.write, ops, true);
            table.addRow({p.name, format("%.1f", n.throughput),
                          format("%.1f", w.throughput),
                          format("%.3f", n.latencyUs),
                          format("%.3f", w.latencyUs)});
        }
        table.print();
    }
    std::puts("");
    std::puts("(expected shape: wrapped throughput == native; "
              "wrapped latency higher by a few fixed cycles only)");
    return 0;
}
