/**
 * @file
 * Ablation: the Host RBB's active-queue scheduling. The paper's
 * Ex-function keeps active/inactive state per DMA queue and schedules
 * only active queues "to improve the scheduling rate" — this measures
 * that against a naive scan of all 1K queues.
 */

#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "common/strings.h"
#include "rtl/arbiter.h"

using namespace harmonia;

namespace {

/** Wall-clock cost of N grants with K active of 1024 slots. */
template <typename MakeGrant>
double
measure(unsigned grants, MakeGrant &&grant_once)
{
    const auto start = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < grants; ++i)
        grant_once();
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(end - start)
               .count() /
           grants;
}

} // namespace

int
main()
{
    constexpr unsigned kSlots = 1024;
    constexpr unsigned kGrants = 200'000;

    std::puts("=== Ablation: active-list vs naive queue scheduling "
              "(1K queues) ===");
    TablePrinter table({"active queues", "naive scan ns/grant",
                        "active-list ns/grant", "speedup"});

    for (unsigned active : {1u, 8u, 64u, 512u}) {
        std::vector<bool> requesting(kSlots, false);
        for (unsigned i = 0; i < active; ++i)
            requesting[(i * 127) % kSlots] = true;

        RoundRobinArbiter naive(kSlots);
        const double naive_ns = measure(kGrants, [&] {
            (void)naive.grant(
                [&](std::size_t s) { return requesting[s]; });
        });

        ActiveListArbiter fast(kSlots);
        for (unsigned s = 0; s < kSlots; ++s)
            if (requesting[s])
                fast.activate(s);
        const double fast_ns = measure(kGrants, [&] {
            (void)fast.grant([](std::size_t) { return true; });
        });

        table.addRow({std::to_string(active),
                      format("%.1f", naive_ns),
                      format("%.1f", fast_ns),
                      format("%.1fx", naive_ns / fast_ns)});
    }
    table.print();
    std::puts("(the naive scheduler scans all 1K queue states per "
              "grant; the active list touches only live tenants)");
    return 0;
}
