/**
 * @file
 * Bench aggregator and regression gate. Collects the JSON-lines
 * records the bench binaries append to $HARMONIA_BENCH_JSON into one
 * BENCH_harmonia.json document, and — when given a committed baseline
 * — fails (exit 1) on any metric regressing beyond the threshold.
 *
 *   bench_aggregate <records.jsonl> <out.json> [baseline.json [pct]]
 *
 * Metric direction is inferred from its name: "throughput", "gbps",
 * "qps" and "ops" count up; "lat", "ticks", "ns", "us", "ps" count
 * down; anything else is informational and never gates.
 *
 * Two absolute gates ride on top of the relative one:
 * "parallel_speedup_x" must clear a floor (default 0.7x) whenever a
 * run reports it, baseline or not — wall-clock ratios are too noisy
 * for percent-regression gating, but the parallel engine ending up
 * drastically slower than the serial one is always a bug. Override
 * the floor with $HARMONIA_SPEEDUP_FLOOR; 0 disables the gate.
 * Symmetrically, "failover_downtime_cycles" must stay under a ceiling
 * (default 500000 kernel cycles) whenever a run reports it: the
 * failover drill is sim-time deterministic, so blowing the ceiling
 * means the detection-to-promotion path itself got slower. Override
 * with $HARMONIA_FAILOVER_CEILING; 0 disables the gate. And
 * "telemetry_stream_overhead_pct" must stay under its own ceiling
 * (default 60%) whenever a run reports it: the streaming telemetry
 * plane is only justified while it moves well fewer wire words than
 * the snapshot polling it replaced. Override with
 * $HARMONIA_STREAM_OVERHEAD_CEILING; 0 disables the gate. The fleet
 * scheduler adds two more of the same shape:
 * "placement_latency_cycles" under $HARMONIA_PLACEMENT_CEILING
 * (default 60000) and "migration_downtime_cycles" under
 * $HARMONIA_MIGRATION_CEILING (default 120000).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/logging.h"

using namespace harmonia;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool
contains(const std::string &s, const char *needle)
{
    return s.find(needle) != std::string::npos;
}

/** +1 higher is better, -1 lower is better, 0 not gated. */
int
metricDirection(const std::string &name)
{
    // Order matters: "gbps" would otherwise match the "ps" rule.
    if (contains(name, "throughput") || contains(name, "gbps") ||
        contains(name, "gbytes") || contains(name, "qps") ||
        contains(name, "ops"))
        return 1;
    if (contains(name, "lat") || contains(name, "ticks") ||
        contains(name, "_ns") || contains(name, "_us") ||
        contains(name, "_ps") || contains(name, "downtime") ||
        contains(name, "cycles"))
        return -1;
    return 0;
}

std::string
scenarioKey(const JsonValue &rec)
{
    return rec.get("bench").asString() + "/" +
           rec.get("scenario").asString();
}

const JsonValue *
findScenario(const JsonValue &doc, const std::string &key)
{
    const JsonValue &arr = doc.get("scenarios");
    for (std::size_t i = 0; i < arr.size(); ++i)
        if (scenarioKey(arr.at(i)) == key)
            return &arr.at(i);
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s <records.jsonl> <out.json> "
                     "[baseline.json [threshold_pct]]\n",
                     argv[0]);
        return 2;
    }
    const std::string records_path = argv[1];
    const std::string out_path = argv[2];
    const std::string baseline_path = argc > 3 ? argv[3] : "";
    const double threshold =
        (argc > 4 ? std::strtod(argv[4], nullptr) : 15.0) / 100.0;

    // --- Collect records (last record wins per scenario key). ---
    std::vector<JsonValue> scenarios;
    std::istringstream lines(readFile(records_path));
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        std::string err;
        JsonValue rec = JsonValue::parse(line, &err);
        if (!err.empty() || !rec.isObject()) {
            warn("skipping malformed record: %s", err.c_str());
            continue;
        }
        const std::string key = scenarioKey(rec);
        bool replaced = false;
        for (JsonValue &existing : scenarios)
            if (scenarioKey(existing) == key) {
                existing = std::move(rec);
                replaced = true;
                break;
            }
        if (!replaced)
            scenarios.push_back(std::move(rec));
    }
    if (scenarios.empty())
        fatal("no bench records in '%s'", records_path.c_str());

    JsonValue doc = JsonValue::object();
    doc.set("suite", JsonValue("harmonia"));
    JsonValue arr = JsonValue::array();
    for (JsonValue &s : scenarios)
        arr.push(std::move(s));
    doc.set("scenarios", std::move(arr));

    std::ofstream out(out_path);
    if (!out)
        fatal("cannot write '%s'", out_path.c_str());
    out << doc.dump(2);
    out.close();
    std::printf("wrote %zu scenario(s) to %s\n", scenarios.size(),
                out_path.c_str());

    // --- Absolute floor on the parallel engine's speedup. ---
    const char *floor_env = std::getenv("HARMONIA_SPEEDUP_FLOOR");
    const double speedup_floor =
        floor_env != nullptr ? std::strtod(floor_env, nullptr) : 0.7;
    int floor_failures = 0;
    const JsonValue &all = doc.get("scenarios");
    for (std::size_t i = 0; speedup_floor > 0.0 && i < all.size();
         ++i) {
        const JsonValue &metrics = all.at(i).get("metrics");
        if (!metrics.has("parallel_speedup_x"))
            continue;
        const double x = metrics.get("parallel_speedup_x").asDouble();
        const bool ok = x >= speedup_floor;
        std::printf("%s %s/parallel_speedup_x: %.2fx (floor %.2fx)\n",
                    ok ? "  ok " : "GATE:",
                    scenarioKey(all.at(i)).c_str(), x, speedup_floor);
        if (!ok)
            ++floor_failures;
    }
    if (floor_failures != 0) {
        std::printf("%d scenario(s) below the speedup floor\n",
                    floor_failures);
        return 1;
    }

    // --- Absolute ceiling on failover downtime. ---
    const char *ceil_env = std::getenv("HARMONIA_FAILOVER_CEILING");
    const double downtime_ceiling =
        ceil_env != nullptr ? std::strtod(ceil_env, nullptr)
                            : 500000.0;
    int ceiling_failures = 0;
    for (std::size_t i = 0; downtime_ceiling > 0.0 && i < all.size();
         ++i) {
        const JsonValue &metrics = all.at(i).get("metrics");
        if (!metrics.has("failover_downtime_cycles"))
            continue;
        const double c =
            metrics.get("failover_downtime_cycles").asDouble();
        const bool ok = c <= downtime_ceiling;
        std::printf("%s %s/failover_downtime_cycles: %.0f "
                    "(ceiling %.0f)\n",
                    ok ? "  ok " : "GATE:",
                    scenarioKey(all.at(i)).c_str(), c,
                    downtime_ceiling);
        if (!ok)
            ++ceiling_failures;
    }
    if (ceiling_failures != 0) {
        std::printf("%d scenario(s) above the downtime ceiling\n",
                    ceiling_failures);
        return 1;
    }

    // --- Absolute ceiling on streaming-telemetry overhead. ---
    const char *stream_env =
        std::getenv("HARMONIA_STREAM_OVERHEAD_CEILING");
    const double stream_ceiling =
        stream_env != nullptr ? std::strtod(stream_env, nullptr)
                              : 60.0;
    int stream_failures = 0;
    for (std::size_t i = 0; stream_ceiling > 0.0 && i < all.size();
         ++i) {
        const JsonValue &metrics = all.at(i).get("metrics");
        if (!metrics.has("telemetry_stream_overhead_pct"))
            continue;
        const double pct =
            metrics.get("telemetry_stream_overhead_pct").asDouble();
        const bool ok = pct <= stream_ceiling;
        std::printf("%s %s/telemetry_stream_overhead_pct: %.1f%% "
                    "(ceiling %.1f%%)\n",
                    ok ? "  ok " : "GATE:",
                    scenarioKey(all.at(i)).c_str(), pct,
                    stream_ceiling);
        if (!ok)
            ++stream_failures;
    }
    if (stream_failures != 0) {
        std::printf("%d scenario(s) above the stream-overhead "
                    "ceiling\n",
                    stream_failures);
        return 1;
    }

    // --- Absolute ceilings on the fleet scheduler numbers. Both are
    // sim-time deterministic, so the defaults sit a small factor over
    // the measured values: blowing one means the placement path or
    // the migration state machine itself got slower, not noise. ---
    const auto absoluteCeiling = [&all](const char *env_name,
                                        double fallback,
                                        const char *metric) {
        const char *env = std::getenv(env_name);
        const double ceiling =
            env != nullptr ? std::strtod(env, nullptr) : fallback;
        int failures = 0;
        for (std::size_t i = 0; ceiling > 0.0 && i < all.size();
             ++i) {
            const JsonValue &metrics = all.at(i).get("metrics");
            if (!metrics.has(metric))
                continue;
            const double c = metrics.get(metric).asDouble();
            const bool ok = c <= ceiling;
            std::printf("%s %s/%s: %.0f (ceiling %.0f)\n",
                        ok ? "  ok " : "GATE:",
                        scenarioKey(all.at(i)).c_str(), metric, c,
                        ceiling);
            if (!ok)
                ++failures;
        }
        return failures;
    };
    const int fleet_failures =
        absoluteCeiling("HARMONIA_PLACEMENT_CEILING", 60000.0,
                        "placement_latency_cycles") +
        absoluteCeiling("HARMONIA_MIGRATION_CEILING", 120000.0,
                        "migration_downtime_cycles");
    if (fleet_failures != 0) {
        std::printf("%d scenario(s) above a fleet ceiling\n",
                    fleet_failures);
        return 1;
    }

    if (baseline_path.empty())
        return 0;

    // --- Regression gate against the committed baseline. ---
    std::string err;
    const JsonValue baseline =
        JsonValue::parse(readFile(baseline_path), &err);
    if (!err.empty())
        fatal("baseline '%s': %s", baseline_path.c_str(),
              err.c_str());

    int regressions = 0;
    const JsonValue &base_arr = baseline.get("scenarios");
    for (std::size_t i = 0; i < base_arr.size(); ++i) {
        const JsonValue &base = base_arr.at(i);
        const std::string key = scenarioKey(base);
        const JsonValue *cur = findScenario(doc, key);
        if (cur == nullptr) {
            std::printf("GATE: scenario '%s' missing from this run\n",
                        key.c_str());
            ++regressions;
            continue;
        }
        const JsonValue &base_metrics = base.get("metrics");
        for (const std::string &name : base_metrics.keys()) {
            const int dir = metricDirection(name);
            if (dir == 0 || !cur->get("metrics").has(name))
                continue;
            const double was = base_metrics.get(name).asDouble();
            const double now =
                cur->get("metrics").get(name).asDouble();
            if (was == 0.0)
                continue;
            const double delta = (now - was) / was;
            const bool regressed = dir > 0 ? delta < -threshold
                                           : delta > threshold;
            std::printf("%s %s/%s: %g -> %g (%+.1f%%)\n",
                        regressed ? "GATE:" : "  ok ", key.c_str(),
                        name.c_str(), was, now, delta * 100.0);
            if (regressed)
                ++regressions;
        }
    }
    if (regressions != 0) {
        std::printf("%d metric(s) regressed beyond %.0f%%\n",
                    regressions, threshold * 100.0);
        return 1;
    }
    std::puts("regression gate passed");
    return 0;
}
